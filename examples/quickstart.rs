//! Quick start: create a TiDB-like HTAP engine, load the banking benchmark and
//! run a short mixed OLTP + OLAP + hybrid workload.
//!
//! ```text
//! cargo run -p olxpbench --release --example quickstart
//! ```

use olxpbench::prelude::*;
use std::time::Duration;

fn main() {
    // 1. An HTAP database configured as the dual-engine (TiDB-like) archetype:
    //    SSD-speed row store for transactions, asynchronously replicated
    //    columnar replicas for analytics, snapshot isolation.
    let db = HybridDatabase::new(EngineConfig::dual_engine()).expect("valid config");

    // 2. The banking domain-specific benchmark (SmallBank-derived).
    let workload = Fibenchmark::new();

    // 3. Configure the run: open-loop agents for all three workload classes.
    let config = BenchConfig {
        label: "quickstart".into(),
        oltp: AgentConfig::new(4, 400.0),
        olap: AgentConfig::new(1, 4.0),
        hybrid: AgentConfig::new(2, 20.0),
        warmup: Duration::from_millis(300),
        duration: Duration::from_secs(2),
        scale_factor: 1,
        ..BenchConfig::default()
    };

    let driver = BenchmarkDriver::new(config);
    driver.prepare(&db, &workload).expect("schema + load");
    println!(
        "loaded {} rows across {} tables on a {}-node {} cluster",
        db.total_live_rows(),
        db.catalog().len(),
        db.config().nodes,
        db.config().architecture.display_name(),
    );

    let result = driver.run(&db, &workload).expect("benchmark run");

    println!("\n=== quickstart results ({}) ===", result.workload);
    if let Some(oltp) = result.oltp {
        println!("online transactions : {oltp}");
    }
    if let Some(olap) = result.olap {
        println!("analytical queries  : {olap}");
    }
    if let Some(hybrid) = result.hybrid {
        println!("hybrid transactions : {hybrid}");
    }
    println!(
        "commits={} aborts={} lock-overhead={:.4} replication-lag={} records",
        result.commits, result.aborts, result.lock_overhead, result.replication_lag
    );
    println!(
        "columnar chunks: scanned={} pruned-by-zonemap={} pruned-by-filter={}",
        result.chunks_scanned, result.chunks_pruned_zonemap, result.chunks_pruned_filter
    );
    println!(
        "columnar storage: resident={} bytes compression-ratio={:.2}x \
         chunks-compacted={} rows-pruned-encoded={}",
        result.col_bytes_resident,
        result.col_compression_ratio,
        result.chunks_compacted,
        result.rows_pruned_encoded
    );
}

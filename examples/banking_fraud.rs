//! Banking scenario: real-time account analytics next to a payment workload.
//!
//! The fibenchmark models the paper's financial domain.  This example drives
//! the six SmallBank-style online transactions while a single analytical agent
//! keeps asking account-level questions (wealth distribution, overdrawn
//! accounts) — the sort of real-time fraud/risk monitoring the paper motivates
//! — and then issues one ad-hoc analytical query through the session API to
//! show the query-building interface.
//!
//! ```text
//! cargo run -p olxpbench --release --example banking_fraud
//! ```

use olxpbench::prelude::*;
use std::time::Duration;

fn main() {
    let db = HybridDatabase::new(EngineConfig::dual_engine()).expect("valid config");
    let workload = Fibenchmark::new();

    let config = BenchConfig {
        label: "banking".into(),
        oltp: AgentConfig::new(4, 600.0),
        olap: AgentConfig::new(1, 6.0),
        hybrid: AgentConfig::new(2, 30.0),
        warmup: Duration::from_millis(300),
        duration: Duration::from_secs(2),
        scale_factor: 2,
        ..BenchConfig::default()
    };
    let driver = BenchmarkDriver::new(config);
    driver.prepare(&db, &workload).expect("schema + load");
    let result = driver.run(&db, &workload).expect("benchmark run");

    println!("=== fibenchmark under mixed load ===");
    if let Some(oltp) = result.oltp {
        println!("payments / balance checks : {oltp}");
    }
    if let Some(olap) = result.olap {
        println!("account analytics         : {olap}");
    }
    if let Some(hybrid) = result.hybrid {
        println!("hybrid risk checks        : {hybrid}");
    }

    // Ad-hoc real-time analysis through the public query API: how much money
    // sits in checking accounts right now, and how many accounts are
    // overdrawn?
    let session = db.session();
    let schema = db.catalog().table("CHECKING").expect("table exists");
    let bal = schema.column_index("bal").expect("column exists");
    let custid = schema.column_index("custid").expect("column exists");

    let position = session
        .analytical_query(
            &QueryBuilder::scan("CHECKING")
                .aggregate(
                    vec![],
                    vec![
                        AggSpec::new(AggFunc::Sum, bal),
                        AggSpec::new(AggFunc::Avg, bal),
                        AggSpec::new(AggFunc::Count, custid),
                    ],
                )
                .build(),
        )
        .expect("analytical query");
    let overdrawn = session
        .analytical_query(
            &QueryBuilder::scan_where("CHECKING", col(bal).lt(lit(0)))
                .aggregate(vec![], vec![AggSpec::new(AggFunc::Count, custid)])
                .build(),
        )
        .expect("analytical query");

    let row = &position.rows[0];
    println!(
        "\nreal-time bank position: total checking = {:.2}, average = {:.2}, accounts = {}",
        row[0].as_f64().unwrap_or(0.0),
        row[1].as_f64().unwrap_or(0.0),
        row[2]
    );
    println!(
        "overdrawn checking accounts right now: {}",
        overdrawn.rows[0][0]
    );
    println!(
        "replication lag when the report ran: {} records",
        db.replication_lag()
    );
}

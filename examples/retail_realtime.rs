//! Retail scenario: the motivating example of the paper.
//!
//! A customer is about to create a new order.  Before ordering, the
//! application runs a *real-time query* — "find the lowest price of the item"
//! — inside the same transaction (a hybrid transaction).  This example runs
//! both variants against the general benchmark (subenchmark) and shows the
//! latency and throughput cost of consulting real-time analysis, i.e. a
//! miniature of the paper's Figure 1.
//!
//! ```text
//! cargo run -p olxpbench --release --example retail_realtime
//! ```

use olxpbench::prelude::*;
use std::time::Duration;

fn main() {
    let db = HybridDatabase::new(EngineConfig::dual_engine()).expect("valid config");
    let workload = Subenchmark::new();

    let base = BenchConfig {
        label: "retail".into(),
        warmup: Duration::from_millis(300),
        duration: Duration::from_millis(1500),
        scale_factor: 1,
        ..BenchConfig::default()
    };
    BenchmarkDriver::new(base.clone())
        .prepare(&db, &workload)
        .expect("schema + load");

    // Variant A: the plain NewOrder transaction (TPC-C behaviour).
    let plain = BenchmarkDriver::new(BenchConfig {
        label: "NewOrder only".into(),
        oltp: AgentConfig::new(4, 120.0),
        olap: AgentConfig::disabled(),
        hybrid: AgentConfig::disabled(),
        weight_overrides: vec![
            ("NewOrder".into(), 1),
            ("Payment".into(), 0),
            ("OrderStatus".into(), 0),
            ("Delivery".into(), 0),
            ("StockLevel".into(), 0),
        ],
        ..base.clone()
    })
    .run(&db, &workload)
    .expect("plain run");

    // Variant B: the hybrid transaction X1 — the same NewOrder preceded by the
    // real-time lowest-price query.
    let hybrid = BenchmarkDriver::new(BenchConfig {
        label: "NewOrder + real-time lowest price".into(),
        oltp: AgentConfig::disabled(),
        olap: AgentConfig::disabled(),
        hybrid: AgentConfig::new(4, 120.0),
        weight_overrides: vec![
            ("X1-NewOrderBestPrice".into(), 1),
            ("X2-PaymentSpendingCheck".into(), 0),
            ("X3-OrderStatusDistrictTrend".into(), 0),
            ("X4-StockLevelGlobalView".into(), 0),
            ("X5-BrowseBestSellers".into(), 0),
        ],
        ..base
    })
    .run(&db, &workload)
    .expect("hybrid run");

    let plain_summary = plain.oltp.expect("oltp agents enabled");
    let hybrid_summary = hybrid.hybrid.expect("hybrid agents enabled");

    println!("=== ordering without real-time analysis ===");
    println!("{plain_summary}");
    println!("\n=== ordering while consulting the real-time lowest price ===");
    println!("{hybrid_summary}");
    println!(
        "\nreal-time analysis costs {:.1}x latency and {:.1}x throughput on this engine \
         (the paper measured 5.9x / 5.9x on TiDB)",
        hybrid_summary.mean_ms / plain_summary.mean_ms.max(1e-9),
        plain_summary.throughput / hybrid_summary.throughput.max(1e-9),
    );
}

//! Telecom scenario: the composite-primary-key bottleneck and the fuzzy
//! subscriber search.
//!
//! The tabenchmark gives SUBSCRIBER the composite primary key `(s_id, sf_type)`
//! and deliberately leaves `sub_nbr` un-indexed.  This example measures the
//! difference between a key-prefix lookup (fast) and the `sub_nbr` lookup that
//! degenerates into a scan (the paper's slow query), and then runs the fuzzy
//! subscriber search hybrid transaction.
//!
//! ```text
//! cargo run -p olxpbench --release --example telecom_hlr
//! ```

use olxpbench::prelude::*;
use std::time::Instant;

fn main() {
    let db = HybridDatabase::new(EngineConfig::dual_engine()).expect("valid config");
    let workload = Tabenchmark::new();
    workload.create_schema(&db).expect("schema");
    workload.load(&db, 2, 7).expect("load");
    db.finish_load().expect("replication");

    let session = db.session();

    // Fast path: lookup by the composite-key prefix (s_id).
    let started = Instant::now();
    let mut txn = session.begin(WorkClass::Oltp);
    let by_key = session
        .select_eq(&mut txn, "SUBSCRIBER", &["s_id"], &[Value::Int(1_234)])
        .expect("indexed lookup");
    session.commit(txn).expect("commit");
    let indexed = started.elapsed();

    // Slow path: lookup by sub_nbr, which no index covers.
    let started = Instant::now();
    let mut txn = session.begin(WorkClass::Oltp);
    let by_nbr = session
        .select_eq(
            &mut txn,
            "SUBSCRIBER",
            &["sub_nbr"],
            &[Value::Str(format!("{:015}", 1_234))],
        )
        .expect("scan lookup");
    session.commit(txn).expect("commit");
    let scanned = started.elapsed();

    println!(
        "lookup by (s_id) prefix  : {:?} -> {} rows",
        indexed,
        by_key.len()
    );
    println!(
        "lookup by sub_nbr (scan) : {:?} -> {} rows",
        scanned,
        by_nbr.len()
    );
    println!(
        "the un-indexed composite-key lookup is {:.0}x slower — the paper's DeleteCallForwarding slow query",
        scanned.as_secs_f64() / indexed.as_secs_f64().max(1e-9)
    );

    // The fuzzy search hybrid transaction (X5): find subscribers whose number
    // matches a sub-string, then fetch one of them.
    let fuzzy = workload
        .hybrid_transactions()
        .into_iter()
        .find(|h| h.name().contains("Fuzzy"))
        .expect("fuzzy search transaction exists");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
    let started = Instant::now();
    fuzzy.execute(&session, &mut rng).expect("fuzzy search");
    println!(
        "fuzzy subscriber search (hybrid transaction X5) took {:?}",
        started.elapsed()
    );

    // A real-time HLR load report through the analytical path.
    let schema = db.catalog().table("SUBSCRIBER").expect("table");
    let vlr = schema.column_index("vlr_location").expect("column");
    let s_id = schema.column_index("s_id").expect("column");
    let report = session
        .analytical_query(
            &QueryBuilder::scan("SUBSCRIBER")
                .aggregate(vec![vlr], vec![AggSpec::new(AggFunc::Count, s_id)])
                .sort(vec![SortKey::desc(1)])
                .limit(5)
                .build(),
        )
        .expect("report");
    println!("\nbusiest VLR locations right now:");
    for row in &report.rows {
        println!("  location {:>6} -> {} subscribers", row[0], row[1]);
    }
}

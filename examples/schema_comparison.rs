//! Schema-model comparison: semantically consistent schema vs stitch schema.
//!
//! Prints the semantic-consistency report of every suite (the OLxPBench
//! benchmarks pass, the CH-benCHmark baseline fails) and then measures how
//! much an analytical agent disturbs the online transactions under each schema
//! model — a compact version of the paper's Figures 3/4 argument.
//!
//! ```text
//! cargo run -p olxpbench --release --example schema_comparison
//! ```

use olxpbench::prelude::*;
use std::time::Duration;

fn interference_for(workload: &dyn Workload) -> (f64, f64) {
    let db = HybridDatabase::new(EngineConfig::dual_engine()).expect("valid config");
    workload.create_schema(&db).expect("schema");
    workload.load(&db, 1, 21).expect("load");
    db.finish_load().expect("replication");

    let base = BenchConfig {
        label: workload.name().to_string(),
        oltp: AgentConfig::new(4, 80.0),
        olap: AgentConfig::disabled(),
        hybrid: AgentConfig::disabled(),
        warmup: Duration::from_millis(200),
        duration: Duration::from_millis(1200),
        scale_factor: 1,
        ..BenchConfig::default()
    };
    let alone = BenchmarkDriver::new(base.clone())
        .run(&db, workload)
        .expect("baseline run");
    let contended = BenchmarkDriver::new(BenchConfig {
        olap: AgentConfig::new(2, 24.0),
        ..base
    })
    .run(&db, workload)
    .expect("contended run");
    (
        alone.oltp_mean_ms(),
        contended.oltp_mean_ms() / alone.oltp_mean_ms().max(1e-9),
    )
}

fn main() {
    println!("=== semantic-consistency check ===");
    let mut suites: Vec<std::sync::Arc<dyn Workload>> = olxp_suites();
    suites.push(std::sync::Arc::new(ChBenchmark::new()));
    for workload in &suites {
        let report = check_semantic_consistency(workload.as_ref());
        println!(
            "{:<13} consistent={:<5} OLAP-only tables={:?} unanalyzed OLTP tables={:?}",
            report.workload,
            report.is_semantically_consistent(),
            report.olap_only_tables,
            report.unanalyzed_oltp_tables
        );
    }

    println!("\n=== interference under one analytical agent (dual engine) ===");
    for name in ["subenchmark", "chbenchmark"] {
        let workload = workload_by_name(name).expect("known workload");
        let (baseline_ms, amplification) = interference_for(workload.as_ref());
        println!(
            "{name:<13} baseline OLTP latency {baseline_ms:.2} ms, \
             under OLAP pressure {amplification:.2}x"
        );
    }
    println!(
        "\nthe semantically consistent schema exposes the interference the stitch schema hides \
         (paper: >2x vs <1.2x at one OLAP thread)"
    );
}

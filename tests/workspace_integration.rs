//! Cross-crate integration tests: the framework, the engine archetypes and the
//! workload suites working together end-to-end.

use olxpbench::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn fast_engine(architecture: EngineArchitecture) -> Arc<HybridDatabase> {
    let config = match architecture {
        EngineArchitecture::SingleEngine => EngineConfig::single_engine(),
        EngineArchitecture::DualEngine => EngineConfig::dual_engine(),
        EngineArchitecture::SharedNothing => EngineConfig::shared_nothing(),
    }
    // Keep the cost model's ratios but compress real time so tests stay fast.
    .with_time_scale(0.05);
    HybridDatabase::new(config).expect("valid config")
}

fn short_config(label: &str) -> BenchConfig {
    BenchConfig {
        label: label.to_string(),
        warmup: Duration::from_millis(50),
        duration: Duration::from_millis(400),
        scale_factor: 1,
        ..BenchConfig::default()
    }
}

#[test]
fn every_suite_runs_all_three_agent_classes_on_the_dual_engine() {
    for name in ["subenchmark", "fibenchmark", "tabenchmark"] {
        let workload = workload_by_name(name).unwrap();
        let db = fast_engine(EngineArchitecture::DualEngine);
        let config = BenchConfig {
            oltp: AgentConfig::new(2, 120.0),
            olap: AgentConfig::new(1, 6.0),
            hybrid: AgentConfig::new(1, 10.0),
            ..short_config(name)
        };
        let driver = BenchmarkDriver::new(config);
        driver.prepare(&db, workload.as_ref()).unwrap();
        let result = driver.run(&db, workload.as_ref()).unwrap();

        let oltp = result.oltp.expect("oltp agents enabled");
        let olap = result.olap.expect("olap agents enabled");
        let hybrid = result.hybrid.expect("hybrid agents enabled");
        assert!(oltp.count > 0, "{name}: no online transactions completed");
        assert!(olap.count > 0, "{name}: no analytical queries completed");
        assert!(hybrid.count > 0, "{name}: no hybrid transactions completed");
        assert!(result.commits > 0, "{name}: nothing committed");
        assert!(
            oltp.errors + olap.errors + hybrid.errors
                <= (oltp.count + olap.count + hybrid.count) / 10,
            "{name}: too many request failures"
        );
        // Percentile ordering sanity.
        assert!(oltp.median_ms <= oltp.p95_ms + 1e-9);
        assert!(oltp.p95_ms <= oltp.max_ms + 1e-9);
    }
}

#[test]
fn single_engine_also_supports_every_suite() {
    for name in ["subenchmark", "fibenchmark", "tabenchmark", "chbenchmark"] {
        let workload = workload_by_name(name).unwrap();
        let db = fast_engine(EngineArchitecture::SingleEngine);
        let has_hybrid = !workload.hybrid_transactions().is_empty();
        let config = BenchConfig {
            oltp: AgentConfig::new(2, 150.0),
            olap: AgentConfig::new(1, 6.0),
            hybrid: if has_hybrid {
                AgentConfig::new(1, 8.0)
            } else {
                AgentConfig::disabled()
            },
            ..short_config(name)
        };
        let driver = BenchmarkDriver::new(config);
        driver.prepare(&db, workload.as_ref()).unwrap();
        let result = driver.run(&db, workload.as_ref()).unwrap();
        assert!(
            result.oltp.unwrap().count > 0,
            "{name}: no OLTP completions"
        );
        assert!(
            result.olap.unwrap().count > 0,
            "{name}: no OLAP completions"
        );
        assert_eq!(result.hybrid.is_some(), has_hybrid);
    }
}

#[test]
fn semantic_consistency_splits_olxp_suites_from_the_stitch_baseline() {
    for workload in olxp_suites() {
        let report = check_semantic_consistency(workload.as_ref());
        assert!(
            report.is_semantically_consistent(),
            "{} must be semantically consistent",
            workload.name()
        );
    }
    let ch = ChBenchmark::new();
    let report = check_semantic_consistency(&ch);
    assert!(!report.is_semantically_consistent());
    assert_eq!(report.olap_only_tables.len(), 3);
}

#[test]
fn replication_keeps_columnar_replicas_in_sync_after_a_run() {
    let workload = Fibenchmark::new();
    let db = fast_engine(EngineArchitecture::DualEngine);
    let config = BenchConfig {
        oltp: AgentConfig::new(2, 300.0),
        ..short_config("replication")
    };
    let driver = BenchmarkDriver::new(config);
    driver.prepare(&db, &workload).unwrap();
    driver.run(&db, &workload).unwrap();

    // Drain whatever the opportunistic replication steps have not applied yet,
    // then verify row counts match between the row store and the replicas.
    db.finish_load().unwrap();
    assert_eq!(db.replication_lag(), 0);
    for table in ["ACCOUNT", "SAVINGS", "CHECKING"] {
        let row_count = db.table_live_row_count(table).unwrap();
        let col_count = db.col_table(table).unwrap().live_row_count();
        assert_eq!(row_count, col_count, "replica of {table} diverged");
    }
}

#[test]
fn table_features_match_the_paper() {
    let features: Vec<WorkloadFeatures> = olxp_suites().iter().map(|w| w.features()).collect();
    assert_eq!(features[0].tables(), 9);
    assert_eq!(features[0].columns, 92);
    assert_eq!(features[1].tables(), 3);
    assert_eq!(features[1].columns, 6);
    assert_eq!(features[2].tables(), 4);
    assert_eq!(features[2].columns, 51);
    let comparison = BenchmarkComparison::paper_table1(&features);
    assert_eq!(comparison.rows.len(), 6);
    assert!(comparison.rows.last().unwrap().has_hybrid_transaction);
}

#[test]
fn isolation_levels_follow_the_architecture() {
    let dual = fast_engine(EngineArchitecture::DualEngine);
    let single = fast_engine(EngineArchitecture::SingleEngine);
    assert_eq!(
        dual.config().default_isolation(),
        IsolationLevel::RepeatableRead
    );
    assert_eq!(
        single.config().default_isolation(),
        IsolationLevel::ReadCommitted
    );

    // Snapshot isolation on the dual engine: a transaction does not observe a
    // concurrent commit that happened after its snapshot.
    let workload = Fibenchmark::new();
    workload.create_schema(&dual).unwrap();
    workload.load(&dual, 1, 1).unwrap();
    dual.finish_load().unwrap();
    let session = dual.session();

    let mut reader = session.begin(WorkClass::Oltp);
    let before = session
        .read(&mut reader, "CHECKING", &Key::int(1))
        .unwrap()
        .unwrap();

    let mut writer = session.begin(WorkClass::Oltp);
    let mut row = session
        .read(&mut writer, "CHECKING", &Key::int(1))
        .unwrap()
        .unwrap();
    row.set(1, Value::Decimal(999_999));
    session
        .update(&mut writer, "CHECKING", &Key::int(1), row)
        .unwrap();
    session.commit(writer).unwrap();

    let after = session
        .read(&mut reader, "CHECKING", &Key::int(1))
        .unwrap()
        .unwrap();
    assert_eq!(before, after, "repeatable read must pin the snapshot");
    session.abort(reader);
}

#[test]
fn closed_loop_mode_also_produces_results() {
    let workload = Fibenchmark::new();
    let db = fast_engine(EngineArchitecture::DualEngine);
    let config = BenchConfig {
        mode: LoopMode::Closed,
        oltp: AgentConfig::new(2, 50.0),
        ..short_config("closed-loop")
    };
    let driver = BenchmarkDriver::new(config);
    driver.prepare(&db, &workload).unwrap();
    let result = driver.run(&db, &workload).unwrap();
    assert!(result.oltp.unwrap().count > 0);
}

#[test]
fn weight_overrides_restrict_the_transaction_mix() {
    let workload = Subenchmark::new();
    let db = fast_engine(EngineArchitecture::DualEngine);
    let config = BenchConfig {
        oltp: AgentConfig::new(2, 100.0),
        weight_overrides: vec![
            ("NewOrder".into(), 0),
            ("Payment".into(), 0),
            ("OrderStatus".into(), 1),
            ("Delivery".into(), 0),
            ("StockLevel".into(), 0),
        ],
        ..short_config("read-only-mix")
    };
    let driver = BenchmarkDriver::new(config);
    driver.prepare(&db, &workload).unwrap();
    let orders_before = db.table_key_count("ORDERS");
    let result = driver.run(&db, &workload).unwrap();
    assert!(result.oltp.unwrap().count > 0);
    assert_eq!(
        db.table_key_count("ORDERS"),
        orders_before,
        "OrderStatus-only mix must not create orders"
    );
}

//! Shape tests: scaled-down versions of the paper's headline claims.
//!
//! These do not try to match the paper's absolute numbers (the substrate is a
//! calibrated model, not the authors' 4-node testbed); they assert the
//! *directions* the paper reports — who wins, and which effect is larger.

use olxpbench::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Run a measurement-plus-assertion closure, retrying on failure.
///
/// Latencies here are wall-clock: on a small CI host (this suite routinely
/// runs on a single-core container where one scheduler timeslice is ~10ms,
/// the same order as the modelled latencies) an individual measurement can
/// be noise-dominated. The paper's claims are directional, so each shape is
/// given up to five independent measurements; a direction that holds in
/// expectation passes with overwhelming probability while a genuinely wrong
/// direction still fails every attempt.
fn assert_shape(measure_and_assert: impl Fn() + std::panic::RefUnwindSafe) {
    const ATTEMPTS: usize = 5;
    for attempt in 1..ATTEMPTS {
        if std::panic::catch_unwind(&measure_and_assert).is_ok() {
            return;
        }
        eprintln!("shape assertion failed on attempt {attempt}/{ATTEMPTS}; re-measuring");
    }
    // Final attempt runs unguarded so a real failure keeps its panic message.
    measure_and_assert();
}

fn engine(architecture: EngineArchitecture) -> Arc<HybridDatabase> {
    let config = match architecture {
        EngineArchitecture::SingleEngine => EngineConfig::single_engine(),
        EngineArchitecture::DualEngine => EngineConfig::dual_engine(),
        EngineArchitecture::SharedNothing => EngineConfig::shared_nothing(),
    }
    .with_time_scale(0.2);
    HybridDatabase::new(config).expect("valid config")
}

fn prepare(db: &Arc<HybridDatabase>, workload: &dyn Workload) {
    workload.create_schema(db).unwrap();
    workload.load(db, 1, 42).unwrap();
    db.finish_load().unwrap();
}

fn base_config(label: &str) -> BenchConfig {
    BenchConfig {
        label: label.into(),
        warmup: Duration::from_millis(80),
        duration: Duration::from_millis(600),
        scale_factor: 1,
        ..BenchConfig::default()
    }
}

/// Figure 1 / Figure 5 shape: a hybrid transaction (real-time query inside the
/// online transaction) is substantially slower than the plain online
/// transaction on the dual engine.
#[test]
fn hybrid_transactions_cost_more_than_online_transactions() {
    assert_shape(|| {
        let workload = Subenchmark::new();
        let db = engine(EngineArchitecture::DualEngine);
        prepare(&db, &workload);

        let plain = BenchmarkDriver::new(BenchConfig {
            oltp: AgentConfig::new(2, 40.0),
            weight_overrides: vec![
                ("NewOrder".into(), 1),
                ("Payment".into(), 0),
                ("OrderStatus".into(), 0),
                ("Delivery".into(), 0),
                ("StockLevel".into(), 0),
            ],
            ..base_config("plain")
        })
        .run(&db, &workload)
        .unwrap();

        let hybrid = BenchmarkDriver::new(BenchConfig {
            oltp: AgentConfig::disabled(),
            hybrid: AgentConfig::new(2, 40.0),
            weight_overrides: vec![
                ("X1-NewOrderBestPrice".into(), 1),
                ("X2-PaymentSpendingCheck".into(), 0),
                ("X3-OrderStatusDistrictTrend".into(), 0),
                ("X4-StockLevelGlobalView".into(), 0),
                ("X5-BrowseBestSellers".into(), 0),
            ],
            ..base_config("hybrid")
        })
        .run(&db, &workload)
        .unwrap();

        let plain_ms = plain.oltp.unwrap().mean_ms;
        let hybrid_ms = hybrid.hybrid.unwrap().mean_ms;
        assert!(
            hybrid_ms > plain_ms * 1.5,
            "hybrid transaction mean {hybrid_ms:.2}ms should be well above the online-only {plain_ms:.2}ms"
        );
    });
}

/// Figure 3 shape: OLAP pressure hurts the semantically consistent schema far
/// more than the stitch schema.
///
/// This comparison runs at the full time scale with a single agent thread per
/// class, so the measured interference comes from the model (buffer churn and
/// worker occupancy caused by the heavy consistent-schema scans) rather than
/// from host scheduling noise.
#[test]
fn consistent_schema_shows_more_interference_than_stitch_schema() {
    assert_shape(|| {
        let mut amplification = Vec::new();
        for name in ["subenchmark", "chbenchmark"] {
            let workload = workload_by_name(name).unwrap();
            let db = HybridDatabase::new(EngineConfig::dual_engine()).unwrap();
            prepare(&db, workload.as_ref());
            let read_mix = vec![
                ("NewOrder".into(), 0),
                ("Payment".into(), 0),
                ("OrderStatus".into(), 1),
                ("Delivery".into(), 0),
                ("StockLevel".into(), 1),
            ];
            let config = BenchConfig {
                warmup: Duration::from_millis(150),
                duration: Duration::from_millis(900),
                ..base_config(name)
            };
            let alone = BenchmarkDriver::new(BenchConfig {
                oltp: AgentConfig::new(1, 30.0),
                weight_overrides: read_mix.clone(),
                ..config.clone()
            })
            .run(&db, workload.as_ref())
            .unwrap();
            let pressured = BenchmarkDriver::new(BenchConfig {
                oltp: AgentConfig::new(1, 30.0),
                olap: AgentConfig::new(1, 20.0),
                weight_overrides: read_mix,
                ..config
            })
            .run(&db, workload.as_ref())
            .unwrap();
            amplification.push(pressured.oltp_mean_ms() / alone.oltp_mean_ms().max(1e-9));
        }
        assert!(
            amplification[0] > amplification[1],
            "consistent-schema amplification {:.2}x must exceed stitch-schema amplification {:.2}x",
            amplification[0],
            amplification[1]
        );
    });
}

/// §VI-D shape, part 1: the in-memory single engine sustains a higher OLTP
/// peak than the SSD-modelled dual engine.
#[test]
fn single_engine_wins_oltp_peak_dual_engine_wins_hybrid_on_subenchmark() {
    assert_shape(|| {
        let workload = Subenchmark::new();
        let mut oltp_peaks = Vec::new();
        let mut hybrid_means = Vec::new();
        for arch in [
            EngineArchitecture::SingleEngine,
            EngineArchitecture::DualEngine,
        ] {
            let db = engine(arch);
            prepare(&db, &workload);
            let oltp = BenchmarkDriver::new(BenchConfig {
                oltp: AgentConfig::new(4, 100_000.0),
                ..base_config("peak")
            })
            .run(&db, &workload)
            .unwrap();
            oltp_peaks.push(oltp.oltp_throughput());

            let hybrid = BenchmarkDriver::new(BenchConfig {
                oltp: AgentConfig::disabled(),
                hybrid: AgentConfig::new(2, 20.0),
                ..base_config("hybrid")
            })
            .run(&db, &workload)
            .unwrap();
            hybrid_means.push(hybrid.hybrid.unwrap().mean_ms);
        }
        assert!(
            oltp_peaks[0] > oltp_peaks[1],
            "single-engine OLTP peak {:.0} should exceed dual-engine peak {:.0}",
            oltp_peaks[0],
            oltp_peaks[1]
        );
        assert!(
            hybrid_means[0] > hybrid_means[1],
            "single-engine hybrid latency {:.1}ms should exceed dual-engine {:.1}ms (vertical partitioning penalty)",
            hybrid_means[0],
            hybrid_means[1]
        );
    });
}

/// §VI-D shape, part 2 (tabenchmark reversal): for the composite-key telecom
/// workload the in-memory engine handles hybrid transactions better, because
/// the dual engine pays SSD random reads for the index-full-scan lookups.
#[test]
fn tabenchmark_hybrid_workload_favours_the_single_engine() {
    assert_shape(|| {
        let workload = Tabenchmark::new();
        let mut hybrid_means = Vec::new();
        for arch in [
            EngineArchitecture::SingleEngine,
            EngineArchitecture::DualEngine,
        ] {
            let db = engine(arch);
            prepare(&db, &workload);
            let result = BenchmarkDriver::new(BenchConfig {
                oltp: AgentConfig::disabled(),
                hybrid: AgentConfig::new(2, 10.0),
                ..base_config("ta-hybrid")
            })
            .run(&db, &workload)
            .unwrap();
            hybrid_means.push(result.hybrid.unwrap().mean_ms);
        }
        assert!(
            hybrid_means[0] < hybrid_means[1],
            "single-engine tabenchmark hybrid latency {:.1}ms should be below dual-engine {:.1}ms",
            hybrid_means[0],
            hybrid_means[1]
        );
    });
}

/// Figure 6 shape: the banking benchmark has the lowest baseline latency and
/// the telecom benchmark the highest (slow composite-key query), with the
/// general benchmark in between.
#[test]
fn domain_specific_baselines_order_matches_the_paper() {
    assert_shape(|| {
        let mut means = Vec::new();
        for name in ["subenchmark", "fibenchmark", "tabenchmark"] {
            let workload = workload_by_name(name).unwrap();
            let db = engine(EngineArchitecture::DualEngine);
            prepare(&db, workload.as_ref());
            let result = BenchmarkDriver::new(BenchConfig {
                oltp: AgentConfig::new(2, 40.0),
                ..base_config(name)
            })
            .run(&db, workload.as_ref())
            .unwrap();
            means.push((name, result.oltp_mean_ms()));
        }
        let su = means[0].1;
        let fi = means[1].1;
        let ta = means[2].1;
        assert!(
            fi < su,
            "fibenchmark ({fi:.2}ms) should be faster than subenchmark ({su:.2}ms)"
        );
        assert!(
            fi < ta,
            "fibenchmark ({fi:.2}ms) should be faster than tabenchmark ({ta:.2}ms)"
        );
    });
}

/// Scalability shape (Figure 10): latency does not improve as the cluster
/// grows with proportional data and rates — coordination overhead dominates.
#[test]
fn latency_does_not_improve_with_cluster_size() {
    assert_shape(|| {
        let workload = Subenchmark::new();
        let mut means = Vec::new();
        for nodes in [4usize, 8] {
            let config = EngineConfig::dual_engine()
                .with_nodes(nodes)
                .with_time_scale(0.2);
            let db = HybridDatabase::new(config).unwrap();
            prepare(&db, &workload);
            let result = BenchmarkDriver::new(BenchConfig {
                oltp: AgentConfig::new(4, 20.0 * nodes as f64),
                ..base_config("scale")
            })
            .run(&db, &workload)
            .unwrap();
            means.push(result.oltp_mean_ms());
        }
        assert!(
            means[1] >= means[0] * 0.8,
            "16-node-style scaling should not make latency dramatically better: 4n={:.2}ms 8n={:.2}ms",
            means[0],
            means[1]
        );
    });
}

/// Chunk-pruning shape (the `prefilter` experiment): a highly selective
/// equality scan over an append-ordered column gets far cheaper once zone
/// maps can skip non-matching chunks, while returning exactly the same rows.
///
/// The scan is pure in-process CPU work (no modelled latencies, no agent
/// threads), so even single-core hosts measure it stably; the directional
/// 2x bar is far below the order-of-magnitude speedup the experiment shows.
#[test]
fn chunk_pruning_speeds_up_selective_scans() {
    use olxpbench::query::{col, execute_with, lit, ColumnSource, ExecOptions, QueryBuilder};
    use olxpbench::storage::{
        ColumnDef, ColumnTable, DataType, Key, PruningMode, Row, TableSchema,
    };
    use std::collections::HashMap;
    use std::time::Instant;

    assert_shape(|| {
        const ROWS: i64 = 65_536;
        const GROUPS: i64 = 1_000; // ~0.1% selectivity per group
        let schema = Arc::new(
            TableSchema::new(
                "PRUNE",
                vec![
                    ColumnDef::new("id", DataType::Int, false),
                    ColumnDef::new("grp", DataType::Int, false),
                ],
                vec!["id"],
            )
            .unwrap(),
        );
        let table = Arc::new(ColumnTable::with_chunk_size(schema, 512));
        for r in 0..ROWS {
            // Monotone in r: each group occupies one contiguous run of rows.
            let row = Row::new(vec![Value::Int(r), Value::Int(r * GROUPS / ROWS)]);
            table
                .apply_insert(&Key::int(r), &row, 1, r as u64 + 1)
                .unwrap();
        }
        let mut tables = HashMap::new();
        tables.insert("PRUNE".to_string(), Arc::clone(&table));
        let source = ColumnSource::new(&tables);
        let plan =
            QueryBuilder::scan_where("PRUNE", col(1).eq(lit(Value::Int(GROUPS / 2)))).build();

        let best_of = |mode: PruningMode| {
            let opts = ExecOptions::batched(1024).with_pruning(mode);
            let mut best = f64::INFINITY;
            let mut out = execute_with(&plan, &source, opts).unwrap();
            for _ in 0..3 {
                let start = Instant::now();
                out = execute_with(&plan, &source, opts).unwrap();
                best = best.min(start.elapsed().as_secs_f64());
            }
            (best, out)
        };
        let (off_s, off_out) = best_of(PruningMode::Off);
        let (on_s, on_out) = best_of(PruningMode::Both);

        assert_eq!(on_out.rows, off_out.rows, "pruning never changes results");
        assert!(
            on_out.stats.chunks_pruned_zonemap > 100,
            "zone maps should skip almost all of the 128 chunks per scan (pruned {})",
            on_out.stats.chunks_pruned_zonemap
        );
        assert!(
            off_s > on_s * 2.0,
            "pruned selective scan should be well over 2x faster (off {:.0}us vs on {:.0}us)",
            off_s * 1e6,
            on_s * 1e6
        );
    });
}

/// Sharding shape: with per-shard WAL streams, peak single-row OLTP
/// throughput grows with the shard count.  One shard funnels every commit
/// through a single log-force queue; four shards run four queues in
/// parallel, so the same offered load commits substantially faster.
#[test]
fn sharded_wal_streams_scale_oltp_throughput() {
    assert_shape(|| {
        let peak = |shards: usize| {
            let dir = std::env::temp_dir()
                .join(format!("olxp-shape-shards-{}-{shards}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            // Durable engine with a quiet (never-fsync) WAL: commits pay the
            // modelled per-stream log force.  Run at the calibrated time
            // scale (1.0) with a deliberately slow 400µs force so the single
            // stream is device-bound (~2.5k commits/s ceiling) — a busy CI
            // host can drag the CPU-bound four-shard number down, but it
            // cannot speed the one-shard queue up past its ceiling.
            let mut config = EngineConfig::dual_engine()
                .with_nodes(1)
                .with_shards(shards)
                .with_durability(
                    DurabilityConfig::at(dir.display().to_string()).with_sync(SyncPolicy::Never),
                );
            config.cost.ssd_write_extra_ns = 400_000;
            let db = HybridDatabase::open(config).unwrap();
            let workload = Fibenchmark::new();
            prepare(&db, &workload);
            let result = BenchmarkDriver::new(BenchConfig {
                oltp: AgentConfig::new(16, 200_000.0),
                olap: AgentConfig::disabled(),
                hybrid: AgentConfig::disabled(),
                // Single-row transactions only, so every commit is
                // single-shard and the cross-shard 2PC path stays out of
                // the measurement.
                weight_overrides: vec![
                    ("Balance".to_string(), 0),
                    ("DepositChecking".to_string(), 1),
                    ("TransactSavings".to_string(), 1),
                    ("Amalgamate".to_string(), 0),
                    ("WriteCheck".to_string(), 0),
                    ("SendPayment".to_string(), 0),
                ],
                ..base_config("shard-scaling")
            })
            .run(&db, &workload)
            .unwrap();
            db.shutdown_applier();
            let _ = std::fs::remove_dir_all(&dir);
            result.oltp_throughput()
        };
        let one = peak(1);
        let four = peak(4);
        assert!(
            four > one * 1.5,
            "four shards should out-commit one shard (got {one:.0} vs {four:.0} tps)"
        );
    });
}

//! Subenchmark analytical queries (Q1–Q9) and hybrid transactions (X1–X5).
//!
//! The analytical queries "perform multi-join, aggregation, grouping, and
//! sorting operations on a semantically consistent schema" (§IV-B1) — note
//! that, unlike CH-benCHmark, they analyse HISTORY, WAREHOUSE and DISTRICT.
//! The hybrid transactions embed the real-time queries distilled from a
//! production e-commerce service: most prominently X1, which finds the lowest
//! price of the item *before* creating the new order.

use super::oltp::{
    as_int, new_order_statements, order_status_statements, payment_statements,
    stock_level_statements, SubenchmarkState, RETRIES,
};
use super::schema::{col, CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE, ITEM_COUNT};
use crate::common::{self, PlannedQuery};
use olxp_engine::{EngineResult, Session, WorkClass};
use olxp_query::{col as qcol, lit, AggFunc, AggSpec, JoinKind, QueryBuilder, SortKey};
use olxp_storage::{Key, Value};
use olxpbench_core::{AnalyticalQuery, HybridTransaction};
use rand::rngs::StdRng;
use std::sync::Arc;

/// The nine subenchmark analytical queries.
pub fn analytical_queries() -> Vec<Arc<dyn AnalyticalQuery>> {
    vec![
        Arc::new(PlannedQuery::new(
            "Q1-OrdersAnalyticalReport",
            vec!["ORDER_LINE"],
            |_rng| {
                // Quantity/amount magnitude summary per line number, ascending.
                QueryBuilder::scan("ORDER_LINE")
                    .aggregate(
                        vec![col::ol::NUMBER],
                        vec![
                            AggSpec::new(AggFunc::Sum, col::ol::QUANTITY),
                            AggSpec::new(AggFunc::Sum, col::ol::AMOUNT),
                            AggSpec::new(AggFunc::Avg, col::ol::QUANTITY),
                            AggSpec::new(AggFunc::Avg, col::ol::AMOUNT),
                            AggSpec::new(AggFunc::Count, col::ol::O_ID),
                        ],
                    )
                    .sort(vec![SortKey::asc(0)])
                    .build()
            },
        )),
        Arc::new(PlannedQuery::new(
            "Q2-CustomerPaymentHistory",
            vec!["HISTORY", "CUSTOMER"],
            |_rng| {
                QueryBuilder::scan("HISTORY")
                    .join(
                        QueryBuilder::scan("CUSTOMER"),
                        vec![col::h::C_W_ID, col::h::C_D_ID, col::h::C_ID],
                        vec![col::c::W_ID, col::c::D_ID, col::c::ID],
                        JoinKind::Inner,
                    )
                    .aggregate(
                        vec![col::h::C_W_ID],
                        vec![
                            AggSpec::new(AggFunc::Sum, col::h::AMOUNT),
                            AggSpec::new(AggFunc::Avg, col::h::AMOUNT),
                            AggSpec::new(AggFunc::Count, col::h::ID),
                        ],
                    )
                    .sort(vec![SortKey::asc(0)])
                    .build()
            },
        )),
        Arc::new(PlannedQuery::new(
            "Q3-WarehouseRevenue",
            vec!["WAREHOUSE", "DISTRICT"],
            |_rng| {
                let warehouse_width = 9;
                QueryBuilder::scan("WAREHOUSE")
                    .join(
                        QueryBuilder::scan("DISTRICT"),
                        vec![col::w::ID],
                        vec![col::d::W_ID],
                        JoinKind::Inner,
                    )
                    .aggregate(
                        vec![col::w::ID],
                        vec![
                            AggSpec::new(AggFunc::Sum, warehouse_width + col::d::YTD),
                            AggSpec::new(AggFunc::Max, warehouse_width + col::d::YTD),
                        ],
                    )
                    .sort(vec![SortKey::asc(0)])
                    .build()
            },
        )),
        Arc::new(PlannedQuery::new(
            "Q4-OrdersPerCustomer",
            vec!["ORDERS"],
            |_rng| {
                QueryBuilder::scan("ORDERS")
                    .aggregate(
                        vec![col::o::C_ID],
                        vec![AggSpec::new(AggFunc::Count, col::o::ID)],
                    )
                    .sort(vec![SortKey::desc(1)])
                    .limit(10)
                    .build()
            },
        )),
        Arc::new(PlannedQuery::new(
            "Q5-LowStockByWarehouse",
            vec!["STOCK"],
            |rng| {
                let threshold = common::uniform(rng, 20, 40);
                QueryBuilder::scan_where("STOCK", qcol(col::s::QUANTITY).lt(lit(threshold)))
                    .aggregate(
                        vec![col::s::W_ID],
                        vec![
                            AggSpec::new(AggFunc::Count, col::s::I_ID),
                            AggSpec::new(AggFunc::Avg, col::s::QUANTITY),
                        ],
                    )
                    .sort(vec![SortKey::asc(0)])
                    .build()
            },
        )),
        Arc::new(PlannedQuery::new(
            "Q6-ItemPopularity",
            vec!["ORDER_LINE", "ITEM"],
            |_rng| {
                let ol_width = 10;
                QueryBuilder::scan("ORDER_LINE")
                    .join(
                        QueryBuilder::scan("ITEM"),
                        vec![col::ol::I_ID],
                        vec![col::i::ID],
                        JoinKind::Inner,
                    )
                    .aggregate(
                        vec![ol_width + col::i::ID],
                        vec![
                            AggSpec::new(AggFunc::Sum, col::ol::QUANTITY),
                            AggSpec::new(AggFunc::Sum, col::ol::AMOUNT),
                        ],
                    )
                    .sort(vec![SortKey::desc(1)])
                    .limit(10)
                    .build()
            },
        )),
        Arc::new(PlannedQuery::new(
            "Q7-DistrictBacklog",
            vec!["NEW_ORDER"],
            |_rng| {
                QueryBuilder::scan("NEW_ORDER")
                    .aggregate(
                        vec![col::no::W_ID, col::no::D_ID],
                        vec![AggSpec::new(AggFunc::Count, col::no::O_ID)],
                    )
                    .sort(vec![SortKey::asc(0), SortKey::asc(1)])
                    .build()
            },
        )),
        Arc::new(PlannedQuery::new(
            "Q8-CustomerBalanceDistribution",
            vec!["CUSTOMER"],
            |_rng| {
                QueryBuilder::scan("CUSTOMER")
                    .aggregate(
                        vec![col::c::W_ID],
                        vec![
                            AggSpec::new(AggFunc::Avg, col::c::BALANCE),
                            AggSpec::new(AggFunc::Min, col::c::BALANCE),
                            AggSpec::new(AggFunc::Max, col::c::BALANCE),
                        ],
                    )
                    .sort(vec![SortKey::asc(0)])
                    .build()
            },
        )),
        Arc::new(PlannedQuery::new(
            "Q9-DeliveriesByCarrier",
            vec!["ORDERS"],
            |_rng| {
                QueryBuilder::scan_where("ORDERS", qcol(col::o::CARRIER_ID).is_null().not())
                    .aggregate(
                        vec![col::o::CARRIER_ID],
                        vec![
                            AggSpec::new(AggFunc::Count, col::o::ID),
                            AggSpec::new(AggFunc::Avg, col::o::OL_CNT),
                        ],
                    )
                    .sort(vec![SortKey::asc(0)])
                    .build()
            },
        )),
    ]
}

// ---------------------------------------------------------------------------
// Hybrid transactions
// ---------------------------------------------------------------------------

/// X1 — create a new order, but first consult the real-time lowest price of
/// the item's category ("a query to get the lowest price rather than the
/// random price of the item", §IV-B1).  Write transaction.
pub struct NewOrderBestPrice {
    state: Arc<SubenchmarkState>,
}

/// X2 — make a payment after checking the customer's real-time average
/// payment amount from HISTORY.  Write transaction.
pub struct PaymentSpendingCheck {
    state: Arc<SubenchmarkState>,
}

/// X3 — order status consultation preceded by the district's real-time
/// average order-line amount.  Read-only.
pub struct OrderStatusDistrictTrend {
    state: Arc<SubenchmarkState>,
}

/// X4 — stock-level check preceded by the real-time average stock quantity
/// across the cluster.  Read-only.
pub struct StockLevelGlobalView {
    state: Arc<SubenchmarkState>,
}

/// X5 — browse the real-time best-selling items and read their catalogue
/// entries.  Read-only.
pub struct BrowseBestSellers {
    state: Arc<SubenchmarkState>,
}

impl NewOrderBestPrice {
    /// Create the template.
    pub fn new(state: Arc<SubenchmarkState>) -> Self {
        Self { state }
    }
}
impl PaymentSpendingCheck {
    /// Create the template.
    pub fn new(state: Arc<SubenchmarkState>) -> Self {
        Self { state }
    }
}
impl OrderStatusDistrictTrend {
    /// Create the template.
    pub fn new(state: Arc<SubenchmarkState>) -> Self {
        Self { state }
    }
}
impl StockLevelGlobalView {
    /// Create the template.
    pub fn new(state: Arc<SubenchmarkState>) -> Self {
        Self { state }
    }
}
impl BrowseBestSellers {
    /// Create the template.
    pub fn new(state: Arc<SubenchmarkState>) -> Self {
        Self { state }
    }
}

impl HybridTransaction for NewOrderBestPrice {
    fn name(&self) -> &str {
        "X1-NewOrderBestPrice"
    }

    fn is_read_only(&self) -> bool {
        false
    }

    fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
        let w_id = self.state.rand_warehouse(rng);
        let d_id = common::uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        let c_id = common::nurand(rng, 1023, 1, CUSTOMERS_PER_DISTRICT);
        let ol_cnt = common::uniform(rng, 5, 15);
        let category = common::uniform(rng, 1, 100);
        let items: Vec<(i64, i64)> = (0..ol_cnt)
            .map(|_| {
                (
                    common::nurand(rng, 8191, 1, ITEM_COUNT),
                    common::uniform(rng, 1, 10),
                )
            })
            .collect();
        session.run_transaction(WorkClass::Hybrid, RETRIES, |s, txn| {
            // Real-time query: the lowest price in the item's category.
            let plan = QueryBuilder::scan_where("ITEM", qcol(col::i::IM_ID).eq(lit(category)))
                .aggregate(vec![], vec![AggSpec::new(AggFunc::Min, col::i::PRICE)])
                .build();
            let _lowest = s.query_in_txn(txn, &plan)?;
            // ...then the online transaction.
            new_order_statements(s, txn, w_id, d_id, c_id, &items)
        })
    }
}

impl HybridTransaction for PaymentSpendingCheck {
    fn name(&self) -> &str {
        "X2-PaymentSpendingCheck"
    }

    fn is_read_only(&self) -> bool {
        false
    }

    fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
        let w_id = self.state.rand_warehouse(rng);
        let d_id = common::uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        let c_id = common::nurand(rng, 1023, 1, CUSTOMERS_PER_DISTRICT);
        let amount = common::rand_amount_cents(rng, 1.0, 5_000.0);
        let h_id = self.state.next_history();
        session.run_transaction(WorkClass::Hybrid, RETRIES, |s, txn| {
            // Real-time query: the customer's historical average payment.
            let plan = QueryBuilder::scan_where(
                "HISTORY",
                qcol(col::h::C_W_ID)
                    .eq(lit(w_id))
                    .and(qcol(col::h::C_D_ID).eq(lit(d_id)))
                    .and(qcol(col::h::C_ID).eq(lit(c_id))),
            )
            .aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Avg, col::h::AMOUNT),
                    AggSpec::new(AggFunc::Count, col::h::ID),
                ],
            )
            .build();
            let _spending = s.query_in_txn(txn, &plan)?;
            payment_statements(s, txn, w_id, d_id, c_id, 0, "", amount, h_id)
        })
    }
}

impl HybridTransaction for OrderStatusDistrictTrend {
    fn name(&self) -> &str {
        "X3-OrderStatusDistrictTrend"
    }

    fn is_read_only(&self) -> bool {
        true
    }

    fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
        let w_id = self.state.rand_warehouse(rng);
        let d_id = common::uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        let c_id = common::nurand(rng, 1023, 1, CUSTOMERS_PER_DISTRICT);
        session.run_transaction(WorkClass::Hybrid, RETRIES, |s, txn| {
            let plan = QueryBuilder::scan_where(
                "ORDER_LINE",
                qcol(col::ol::W_ID)
                    .eq(lit(w_id))
                    .and(qcol(col::ol::D_ID).eq(lit(d_id))),
            )
            .aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Avg, col::ol::AMOUNT),
                    AggSpec::new(AggFunc::Max, col::ol::AMOUNT),
                ],
            )
            .build();
            let _trend = s.query_in_txn(txn, &plan)?;
            order_status_statements(s, txn, w_id, d_id, c_id, 0, "")
        })
    }
}

impl HybridTransaction for StockLevelGlobalView {
    fn name(&self) -> &str {
        "X4-StockLevelGlobalView"
    }

    fn is_read_only(&self) -> bool {
        true
    }

    fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
        let w_id = self.state.rand_warehouse(rng);
        let d_id = common::uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        let threshold = common::uniform(rng, 10, 20);
        session.run_transaction(WorkClass::Hybrid, RETRIES, |s, txn| {
            let plan = QueryBuilder::scan("STOCK")
                .aggregate(
                    vec![],
                    vec![
                        AggSpec::new(AggFunc::Avg, col::s::QUANTITY),
                        AggSpec::new(AggFunc::Min, col::s::QUANTITY),
                    ],
                )
                .build();
            let _global = s.query_in_txn(txn, &plan)?;
            stock_level_statements(s, txn, w_id, d_id, threshold)
        })
    }
}

impl HybridTransaction for BrowseBestSellers {
    fn name(&self) -> &str {
        "X5-BrowseBestSellers"
    }

    fn is_read_only(&self) -> bool {
        true
    }

    fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
        let _ = self.state.warehouse_count();
        let top_n = common::uniform(rng, 3, 8) as usize;
        session.run_transaction(WorkClass::Hybrid, RETRIES, |s, txn| {
            let plan = QueryBuilder::scan("ORDER_LINE")
                .aggregate(
                    vec![col::ol::I_ID],
                    vec![AggSpec::new(AggFunc::Sum, col::ol::QUANTITY)],
                )
                .sort(vec![SortKey::desc(1)])
                .limit(top_n)
                .build();
            let best_sellers = s.query_in_txn(txn, &plan)?;
            for row in &best_sellers.rows {
                let i_id = as_int(&row[0]);
                let _item = s.read(txn, "ITEM", &Key::int(i_id))?;
            }
            let _ = Value::Int(0);
            Ok(())
        })
    }
}

/// The five subenchmark hybrid transactions.
pub fn hybrid_transactions(state: &Arc<SubenchmarkState>) -> Vec<Arc<dyn HybridTransaction>> {
    vec![
        Arc::new(NewOrderBestPrice::new(Arc::clone(state))),
        Arc::new(PaymentSpendingCheck::new(Arc::clone(state))),
        Arc::new(OrderStatusDistrictTrend::new(Arc::clone(state))),
        Arc::new(StockLevelGlobalView::new(Arc::clone(state))),
        Arc::new(BrowseBestSellers::new(Arc::clone(state))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nine_queries_with_consistent_tables() {
        let queries = analytical_queries();
        assert_eq!(queries.len(), 9);
        let mut rng = StdRng::seed_from_u64(5);
        for q in &queries {
            let plan = q.plan(&mut rng);
            let declared = q.tables();
            for table in plan.referenced_tables() {
                assert!(
                    declared.contains(&table),
                    "query {} references undeclared table {table}",
                    q.name()
                );
            }
        }
    }

    #[test]
    fn hybrid_mix_is_sixty_percent_read_only() {
        let state = SubenchmarkState::new();
        let hybrids = hybrid_transactions(&state);
        assert_eq!(hybrids.len(), 5);
        let read_only = hybrids.iter().filter(|h| h.is_read_only()).count();
        assert_eq!(
            read_only, 3,
            "3 of 5 hybrid transactions are read-only (60%)"
        );
    }
}

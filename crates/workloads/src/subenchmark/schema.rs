//! Subenchmark schema and data loader.
//!
//! The subenchmark keeps the nine TPC-C tables (92 columns in total) and the
//! third normal form of the original benchmark; analytical queries operate on
//! the *same* tables the online transactions write (semantically consistent
//! schema).  Three secondary indexes support the customer-by-last-name,
//! orders-by-customer and item-by-name lookups.

use crate::common;
use olxp_engine::{EngineResult, HybridDatabase};
use olxp_storage::{ColumnDef, DataType, Row, TableSchema, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Number of items in the ITEM table (scaled down from TPC-C's 100 000).
pub const ITEM_COUNT: i64 = 10_000;
/// Districts per warehouse.
pub const DISTRICTS_PER_WAREHOUSE: i64 = 10;
/// Customers per district (scaled down from TPC-C's 3 000).
pub const CUSTOMERS_PER_DISTRICT: i64 = 60;
/// Initial orders per district.
pub const ORDERS_PER_DISTRICT: i64 = 150;
/// The most recent orders of a district that start in NEW_ORDER.
pub const NEW_ORDERS_PER_DISTRICT: i64 = 30;

/// Column positions used by the transactions and queries.
pub mod col {
    /// WAREHOUSE columns.
    pub mod w {
        pub const ID: usize = 0;
        pub const NAME: usize = 1;
        pub const TAX: usize = 7;
        pub const YTD: usize = 8;
    }
    /// DISTRICT columns.
    pub mod d {
        pub const ID: usize = 0;
        pub const W_ID: usize = 1;
        pub const TAX: usize = 8;
        pub const YTD: usize = 9;
        pub const NEXT_O_ID: usize = 10;
    }
    /// CUSTOMER columns.
    pub mod c {
        pub const ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const W_ID: usize = 2;
        pub const FIRST: usize = 3;
        pub const LAST: usize = 5;
        pub const CREDIT: usize = 13;
        pub const DISCOUNT: usize = 15;
        pub const BALANCE: usize = 16;
        pub const YTD_PAYMENT: usize = 17;
        pub const PAYMENT_CNT: usize = 18;
        pub const DELIVERY_CNT: usize = 19;
    }
    /// HISTORY columns.
    pub mod h {
        pub const ID: usize = 0;
        pub const C_ID: usize = 1;
        pub const C_D_ID: usize = 2;
        pub const C_W_ID: usize = 3;
        pub const D_ID: usize = 4;
        pub const W_ID: usize = 5;
        pub const DATE: usize = 6;
        pub const AMOUNT: usize = 7;
    }
    /// NEW_ORDER columns.
    pub mod no {
        pub const O_ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const W_ID: usize = 2;
    }
    /// ORDERS columns.
    pub mod o {
        pub const ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const W_ID: usize = 2;
        pub const C_ID: usize = 3;
        pub const ENTRY_D: usize = 4;
        pub const CARRIER_ID: usize = 5;
        pub const OL_CNT: usize = 6;
        pub const ALL_LOCAL: usize = 7;
    }
    /// ORDER_LINE columns.
    pub mod ol {
        pub const O_ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const W_ID: usize = 2;
        pub const NUMBER: usize = 3;
        pub const I_ID: usize = 4;
        pub const SUPPLY_W_ID: usize = 5;
        pub const DELIVERY_D: usize = 6;
        pub const QUANTITY: usize = 7;
        pub const AMOUNT: usize = 8;
    }
    /// ITEM columns.
    pub mod i {
        pub const ID: usize = 0;
        pub const IM_ID: usize = 1;
        pub const NAME: usize = 2;
        pub const PRICE: usize = 3;
    }
    /// STOCK columns.
    pub mod s {
        pub const I_ID: usize = 0;
        pub const W_ID: usize = 1;
        pub const QUANTITY: usize = 2;
        pub const YTD: usize = 13;
        pub const ORDER_CNT: usize = 14;
        pub const REMOTE_CNT: usize = 15;
    }
}

fn int(name: &str) -> ColumnDef {
    ColumnDef::new(name, DataType::Int, false)
}
fn int_null(name: &str) -> ColumnDef {
    ColumnDef::new(name, DataType::Int, true)
}
fn s(name: &str) -> ColumnDef {
    ColumnDef::new(name, DataType::Str, false)
}
fn dec(name: &str) -> ColumnDef {
    ColumnDef::new(name, DataType::Decimal, false)
}
fn ts(name: &str) -> ColumnDef {
    ColumnDef::new(name, DataType::Timestamp, false)
}
fn ts_null(name: &str) -> ColumnDef {
    ColumnDef::new(name, DataType::Timestamp, true)
}

/// The nine subenchmark table schemas in creation order.
pub fn schemas() -> Vec<TableSchema> {
    let warehouse = TableSchema::new(
        "WAREHOUSE",
        vec![
            int("w_id"),
            s("w_name"),
            s("w_street_1"),
            s("w_street_2"),
            s("w_city"),
            s("w_state"),
            s("w_zip"),
            dec("w_tax"),
            dec("w_ytd"),
        ],
        vec!["w_id"],
    )
    .expect("static schema");

    let district = TableSchema::new(
        "DISTRICT",
        vec![
            int("d_id"),
            int("d_w_id"),
            s("d_name"),
            s("d_street_1"),
            s("d_street_2"),
            s("d_city"),
            s("d_state"),
            s("d_zip"),
            dec("d_tax"),
            dec("d_ytd"),
            int("d_next_o_id"),
        ],
        vec!["d_w_id", "d_id"],
    )
    .expect("static schema")
    .with_foreign_key(vec!["d_w_id"], "WAREHOUSE", vec!["w_id"])
    .expect("static schema");

    let customer = TableSchema::new(
        "CUSTOMER",
        vec![
            int("c_id"),
            int("c_d_id"),
            int("c_w_id"),
            s("c_first"),
            s("c_middle"),
            s("c_last"),
            s("c_street_1"),
            s("c_street_2"),
            s("c_city"),
            s("c_state"),
            s("c_zip"),
            s("c_phone"),
            ts("c_since"),
            s("c_credit"),
            dec("c_credit_lim"),
            dec("c_discount"),
            dec("c_balance"),
            dec("c_ytd_payment"),
            int("c_payment_cnt"),
            int("c_delivery_cnt"),
            s("c_data"),
        ],
        vec!["c_w_id", "c_d_id", "c_id"],
    )
    .expect("static schema")
    .with_index(
        "idx_customer_name",
        vec!["c_w_id", "c_d_id", "c_last"],
        false,
    )
    .expect("static schema")
    .with_foreign_key(vec!["c_w_id", "c_d_id"], "DISTRICT", vec!["d_w_id", "d_id"])
    .expect("static schema");

    let history = TableSchema::new(
        "HISTORY",
        vec![
            int("h_id"),
            int("h_c_id"),
            int("h_c_d_id"),
            int("h_c_w_id"),
            int("h_d_id"),
            int("h_w_id"),
            ts("h_date"),
            dec("h_amount"),
        ],
        vec!["h_id"],
    )
    .expect("static schema")
    .with_foreign_key(
        vec!["h_c_w_id", "h_c_d_id", "h_c_id"],
        "CUSTOMER",
        vec!["c_w_id", "c_d_id", "c_id"],
    )
    .expect("static schema");

    let new_order = TableSchema::new(
        "NEW_ORDER",
        vec![int("no_o_id"), int("no_d_id"), int("no_w_id")],
        vec!["no_w_id", "no_d_id", "no_o_id"],
    )
    .expect("static schema");

    let orders = TableSchema::new(
        "ORDERS",
        vec![
            int("o_id"),
            int("o_d_id"),
            int("o_w_id"),
            int("o_c_id"),
            ts("o_entry_d"),
            int_null("o_carrier_id"),
            int("o_ol_cnt"),
            int("o_all_local"),
        ],
        vec!["o_w_id", "o_d_id", "o_id"],
    )
    .expect("static schema")
    .with_index(
        "idx_orders_customer",
        vec!["o_w_id", "o_d_id", "o_c_id"],
        false,
    )
    .expect("static schema")
    .with_foreign_key(
        vec!["o_w_id", "o_d_id", "o_c_id"],
        "CUSTOMER",
        vec!["c_w_id", "c_d_id", "c_id"],
    )
    .expect("static schema");

    let order_line = TableSchema::new(
        "ORDER_LINE",
        vec![
            int("ol_o_id"),
            int("ol_d_id"),
            int("ol_w_id"),
            int("ol_number"),
            int("ol_i_id"),
            int("ol_supply_w_id"),
            ts_null("ol_delivery_d"),
            int("ol_quantity"),
            dec("ol_amount"),
            s("ol_dist_info"),
        ],
        vec!["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
    )
    .expect("static schema")
    .with_foreign_key(
        vec!["ol_w_id", "ol_d_id", "ol_o_id"],
        "ORDERS",
        vec!["o_w_id", "o_d_id", "o_id"],
    )
    .expect("static schema");

    let item = TableSchema::new(
        "ITEM",
        vec![
            int("i_id"),
            int("i_im_id"),
            s("i_name"),
            dec("i_price"),
            s("i_data"),
        ],
        vec!["i_id"],
    )
    .expect("static schema")
    .with_index("idx_item_name", vec!["i_name"], false)
    .expect("static schema");

    let stock = TableSchema::new(
        "STOCK",
        vec![
            int("s_i_id"),
            int("s_w_id"),
            int("s_quantity"),
            s("s_dist_01"),
            s("s_dist_02"),
            s("s_dist_03"),
            s("s_dist_04"),
            s("s_dist_05"),
            s("s_dist_06"),
            s("s_dist_07"),
            s("s_dist_08"),
            s("s_dist_09"),
            s("s_dist_10"),
            dec("s_ytd"),
            int("s_order_cnt"),
            int("s_remote_cnt"),
            s("s_data"),
        ],
        vec!["s_w_id", "s_i_id"],
    )
    .expect("static schema")
    .with_foreign_key(vec!["s_i_id"], "ITEM", vec!["i_id"])
    .expect("static schema");

    vec![
        warehouse, district, customer, history, new_order, orders, order_line, item, stock,
    ]
}

/// Create the subenchmark tables.
pub fn create_schema(db: &Arc<HybridDatabase>) -> EngineResult<()> {
    for schema in schemas() {
        db.create_table(schema)?;
    }
    Ok(())
}

/// Populate the subenchmark tables with `warehouses` warehouses.
pub fn load(db: &Arc<HybridDatabase>, warehouses: u32, seed: u64) -> EngineResult<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let warehouses = i64::from(warehouses.max(1));

    // ITEM is shared across warehouses.
    for i_id in 1..=ITEM_COUNT {
        db.load_row(
            "ITEM",
            Row::new(vec![
                Value::Int(i_id),
                Value::Int(common::uniform(&mut rng, 1, 100)),
                Value::Str(format!("item-{:04}", i_id % 500)),
                Value::Decimal(common::rand_amount_cents(&mut rng, 1.0, 100.0)),
                Value::Str(common::rand_string(&mut rng, 16, 32)),
            ]),
        )?;
    }

    let mut history_id = 0i64;
    for w_id in 1..=warehouses {
        db.load_row(
            "WAREHOUSE",
            Row::new(vec![
                Value::Int(w_id),
                Value::Str(format!("warehouse-{w_id}")),
                Value::Str(common::rand_string(&mut rng, 8, 16)),
                Value::Str(common::rand_string(&mut rng, 8, 16)),
                Value::Str(common::rand_string(&mut rng, 6, 12)),
                Value::Str("CA".into()),
                Value::Str(common::rand_numeric_string(&mut rng, 9)),
                Value::Decimal(common::uniform(&mut rng, 0, 20)),
                Value::Decimal(30_000_000),
            ]),
        )?;
        // STOCK mirrors ITEM per warehouse.
        for i_id in 1..=ITEM_COUNT {
            let mut values = vec![
                Value::Int(i_id),
                Value::Int(w_id),
                Value::Int(common::uniform(&mut rng, 10, 100)),
            ];
            for _ in 0..10 {
                values.push(Value::Str(common::rand_string(&mut rng, 12, 24)));
            }
            values.push(Value::Decimal(0));
            values.push(Value::Int(0));
            values.push(Value::Int(0));
            values.push(Value::Str(common::rand_string(&mut rng, 16, 32)));
            db.load_row("STOCK", Row::new(values))?;
        }
        for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
            db.load_row(
                "DISTRICT",
                Row::new(vec![
                    Value::Int(d_id),
                    Value::Int(w_id),
                    Value::Str(format!("district-{w_id}-{d_id}")),
                    Value::Str(common::rand_string(&mut rng, 8, 16)),
                    Value::Str(common::rand_string(&mut rng, 8, 16)),
                    Value::Str(common::rand_string(&mut rng, 6, 12)),
                    Value::Str("CA".into()),
                    Value::Str(common::rand_numeric_string(&mut rng, 9)),
                    Value::Decimal(common::uniform(&mut rng, 0, 20)),
                    Value::Decimal(3_000_000),
                    Value::Int(ORDERS_PER_DISTRICT + 1),
                ]),
            )?;
            for c_id in 1..=CUSTOMERS_PER_DISTRICT {
                history_id += 1;
                db.load_row(
                    "CUSTOMER",
                    Row::new(vec![
                        Value::Int(c_id),
                        Value::Int(d_id),
                        Value::Int(w_id),
                        Value::Str(common::rand_string(&mut rng, 6, 12)),
                        Value::Str("OE".into()),
                        Value::Str(common::last_name(if c_id <= 10 {
                            c_id - 1
                        } else {
                            common::uniform(&mut rng, 0, 999)
                        })),
                        Value::Str(common::rand_string(&mut rng, 8, 16)),
                        Value::Str(common::rand_string(&mut rng, 8, 16)),
                        Value::Str(common::rand_string(&mut rng, 6, 12)),
                        Value::Str("CA".into()),
                        Value::Str(common::rand_numeric_string(&mut rng, 9)),
                        Value::Str(common::rand_numeric_string(&mut rng, 16)),
                        Value::Timestamp(common::synthetic_timestamp(c_id)),
                        Value::Str(if common::uniform(&mut rng, 0, 9) == 0 {
                            "BC".into()
                        } else {
                            "GC".into()
                        }),
                        Value::Decimal(5_000_000),
                        Value::Decimal(common::uniform(&mut rng, 0, 50)),
                        Value::Decimal(-1_000),
                        Value::Decimal(1_000),
                        Value::Int(1),
                        Value::Int(0),
                        Value::Str(common::rand_string(&mut rng, 32, 64)),
                    ]),
                )?;
                db.load_row(
                    "HISTORY",
                    Row::new(vec![
                        Value::Int(history_id),
                        Value::Int(c_id),
                        Value::Int(d_id),
                        Value::Int(w_id),
                        Value::Int(d_id),
                        Value::Int(w_id),
                        Value::Timestamp(common::synthetic_timestamp(history_id)),
                        Value::Decimal(1_000),
                    ]),
                )?;
            }
            for o_id in 1..=ORDERS_PER_DISTRICT {
                let c_id = common::uniform(&mut rng, 1, CUSTOMERS_PER_DISTRICT);
                let ol_cnt = common::uniform(&mut rng, 5, 15);
                let delivered = o_id <= ORDERS_PER_DISTRICT - NEW_ORDERS_PER_DISTRICT;
                db.load_row(
                    "ORDERS",
                    Row::new(vec![
                        Value::Int(o_id),
                        Value::Int(d_id),
                        Value::Int(w_id),
                        Value::Int(c_id),
                        Value::Timestamp(common::synthetic_timestamp(o_id)),
                        if delivered {
                            Value::Int(common::uniform(&mut rng, 1, 10))
                        } else {
                            Value::Null
                        },
                        Value::Int(ol_cnt),
                        Value::Int(1),
                    ]),
                )?;
                if !delivered {
                    db.load_row(
                        "NEW_ORDER",
                        Row::new(vec![Value::Int(o_id), Value::Int(d_id), Value::Int(w_id)]),
                    )?;
                }
                for ol_number in 1..=ol_cnt {
                    db.load_row(
                        "ORDER_LINE",
                        Row::new(vec![
                            Value::Int(o_id),
                            Value::Int(d_id),
                            Value::Int(w_id),
                            Value::Int(ol_number),
                            Value::Int(common::uniform(&mut rng, 1, ITEM_COUNT)),
                            Value::Int(w_id),
                            if delivered {
                                Value::Timestamp(common::synthetic_timestamp(o_id))
                            } else {
                                Value::Null
                            },
                            Value::Int(common::uniform(&mut rng, 1, 10)),
                            Value::Decimal(common::rand_amount_cents(&mut rng, 0.01, 99.99)),
                            Value::Str(common::rand_string(&mut rng, 12, 24)),
                        ]),
                    )?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_engine::EngineConfig;

    #[test]
    fn schema_matches_table2_counts() {
        let schemas = schemas();
        assert_eq!(schemas.len(), 9);
        let columns: usize = schemas.iter().map(|s| s.column_count()).sum();
        assert_eq!(columns, 92, "Table II: subenchmark has 92 columns");
        let indexes: usize = schemas.iter().map(|s| s.indexes().len()).sum();
        assert_eq!(indexes, 3, "Table II: subenchmark has 3 indexes");
    }

    #[test]
    fn load_populates_expected_row_counts() {
        let db = HybridDatabase::new(EngineConfig::single_engine().with_time_scale(0.0)).unwrap();
        create_schema(&db).unwrap();
        load(&db, 1, 1).unwrap();
        db.finish_load().unwrap();
        assert_eq!(db.table_key_count("ITEM"), ITEM_COUNT as usize);
        assert_eq!(db.table_key_count("WAREHOUSE"), 1);
        assert_eq!(db.table_key_count("DISTRICT"), 10);
        assert_eq!(
            db.table_key_count("CUSTOMER"),
            (DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT) as usize
        );
        assert_eq!(
            db.table_key_count("ORDERS"),
            (DISTRICTS_PER_WAREHOUSE * ORDERS_PER_DISTRICT) as usize
        );
        assert_eq!(
            db.table_key_count("NEW_ORDER"),
            (DISTRICTS_PER_WAREHOUSE * NEW_ORDERS_PER_DISTRICT) as usize
        );
        assert!(
            db.table_key_count("ORDER_LINE")
                >= (DISTRICTS_PER_WAREHOUSE * ORDERS_PER_DISTRICT * 5) as usize
        );
        // Columnar replicas converged.
        assert_eq!(
            db.col_table("ITEM").unwrap().live_row_count(),
            ITEM_COUNT as usize
        );
    }
}

//! Subenchmark online transactions — the five TPC-C transactions.

use super::schema::{col, CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE, ITEM_COUNT};
use crate::common;
use olxp_engine::{EngineError, EngineResult, Session, TxnHandle, WorkClass};
use olxp_storage::{Key, Row, StorageError, Value};
use olxpbench_core::OnlineTransaction;
use rand::rngs::StdRng;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Number of retry attempts for retryable conflicts.
pub(crate) const RETRIES: usize = 5;

/// Fetch a row or fail with `KeyNotFound` — loaders guarantee these rows
/// exist, so absence indicates a workload bug.
pub(crate) fn require(row: Option<Row>, table: &str, key: &Key) -> EngineResult<Row> {
    row.ok_or_else(|| {
        EngineError::Storage(StorageError::KeyNotFound {
            table: table.to_string(),
            key: key.to_string(),
        })
    })
}

pub(crate) fn as_int(value: &Value) -> i64 {
    value.as_int().unwrap_or(0)
}

pub(crate) fn as_cents(value: &Value) -> i64 {
    match value {
        Value::Decimal(v) => *v,
        other => other.as_int().unwrap_or(0) * 100,
    }
}

/// Shared run-time parameters of the subenchmark transactions.
#[derive(Debug)]
pub struct SubenchmarkState {
    /// Number of warehouses loaded (set by the loader).
    pub warehouses: AtomicI64,
    /// Next surrogate HISTORY primary key.
    pub next_history_id: AtomicI64,
}

impl SubenchmarkState {
    /// Create state for a default two-warehouse run.
    pub fn new() -> Arc<SubenchmarkState> {
        Arc::new(SubenchmarkState {
            warehouses: AtomicI64::new(2),
            next_history_id: AtomicI64::new(10_000_000),
        })
    }

    pub(crate) fn warehouse_count(&self) -> i64 {
        self.warehouses.load(Ordering::Relaxed).max(1)
    }

    pub(crate) fn rand_warehouse(&self, rng: &mut StdRng) -> i64 {
        common::uniform(rng, 1, self.warehouse_count())
    }

    pub(crate) fn next_history(&self) -> i64 {
        self.next_history_id.fetch_add(1, Ordering::Relaxed)
    }
}

/// Look up a customer either by primary key (60 %) or by last name (40 %),
/// mirroring TPC-C's Payment/Order-Status customer selection.
pub(crate) fn select_customer(
    session: &Session,
    txn: &mut TxnHandle,
    rng_choice: i64,
    w_id: i64,
    d_id: i64,
    c_id: i64,
    last_name: &str,
) -> EngineResult<Row> {
    if rng_choice < 60 {
        let key = Key::ints(&[w_id, d_id, c_id]);
        require(session.read(txn, "CUSTOMER", &key)?, "CUSTOMER", &key)
    } else {
        let mut rows = session.select_eq(
            txn,
            "CUSTOMER",
            &["c_w_id", "c_d_id", "c_last"],
            &[
                Value::Int(w_id),
                Value::Int(d_id),
                Value::Str(last_name.to_string()),
            ],
        )?;
        if rows.is_empty() {
            // Fall back to the primary-key customer (the generated last names
            // cover only part of the name space).
            let key = Key::ints(&[w_id, d_id, c_id]);
            return require(session.read(txn, "CUSTOMER", &key)?, "CUSTOMER", &key);
        }
        rows.sort_by(|a, b| a[col::c::FIRST].cmp(&b[col::c::FIRST]));
        Ok(rows.swap_remove(rows.len() / 2))
    }
}

// ---------------------------------------------------------------------------
// NewOrder
// ---------------------------------------------------------------------------

/// The TPC-C NewOrder transaction.
pub struct NewOrder {
    state: Arc<SubenchmarkState>,
}

impl NewOrder {
    /// Create the template.
    pub fn new(state: Arc<SubenchmarkState>) -> NewOrder {
        NewOrder { state }
    }
}

impl OnlineTransaction for NewOrder {
    fn name(&self) -> &str {
        "NewOrder"
    }

    fn is_read_only(&self) -> bool {
        false
    }

    fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
        let w_id = self.state.rand_warehouse(rng);
        let d_id = common::uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        let c_id = common::nurand(rng, 1023, 1, CUSTOMERS_PER_DISTRICT);
        let ol_cnt = common::uniform(rng, 5, 15);
        let items: Vec<(i64, i64)> = (0..ol_cnt)
            .map(|_| {
                (
                    common::nurand(rng, 8191, 1, ITEM_COUNT),
                    common::uniform(rng, 1, 10),
                )
            })
            .collect();
        new_order_body(session, &self.state, w_id, d_id, c_id, &items)
    }
}

/// The body of NewOrder, shared with the hybrid transaction X1.
pub(crate) fn new_order_body(
    session: &Session,
    _state: &SubenchmarkState,
    w_id: i64,
    d_id: i64,
    c_id: i64,
    items: &[(i64, i64)],
) -> EngineResult<()> {
    session.run_transaction(WorkClass::Oltp, RETRIES, |s, txn| {
        new_order_statements(s, txn, w_id, d_id, c_id, items)
    })
}

/// The NewOrder statement sequence, reusable inside hybrid transactions.
pub(crate) fn new_order_statements(
    s: &Session,
    txn: &mut TxnHandle,
    w_id: i64,
    d_id: i64,
    c_id: i64,
    items: &[(i64, i64)],
) -> EngineResult<()> {
    let w_key = Key::int(w_id);
    let warehouse = require(s.read(txn, "WAREHOUSE", &w_key)?, "WAREHOUSE", &w_key)?;
    let _w_tax = as_cents(&warehouse[col::w::TAX]);

    let d_key = Key::ints(&[w_id, d_id]);
    let mut district = require(s.read(txn, "DISTRICT", &d_key)?, "DISTRICT", &d_key)?;
    let o_id = as_int(&district[col::d::NEXT_O_ID]);
    district.set(col::d::NEXT_O_ID, Value::Int(o_id + 1));
    s.update(txn, "DISTRICT", &d_key, district)?;

    let c_key = Key::ints(&[w_id, d_id, c_id]);
    let _customer = require(s.read(txn, "CUSTOMER", &c_key)?, "CUSTOMER", &c_key)?;

    s.insert(
        txn,
        "ORDERS",
        Row::new(vec![
            Value::Int(o_id),
            Value::Int(d_id),
            Value::Int(w_id),
            Value::Int(c_id),
            Value::Timestamp(common::synthetic_timestamp(o_id)),
            Value::Null,
            Value::Int(items.len() as i64),
            Value::Int(1),
        ]),
    )?;
    s.insert(
        txn,
        "NEW_ORDER",
        Row::new(vec![Value::Int(o_id), Value::Int(d_id), Value::Int(w_id)]),
    )?;

    for (number, (i_id, quantity)) in items.iter().enumerate() {
        let i_key = Key::int(*i_id);
        let item = require(s.read(txn, "ITEM", &i_key)?, "ITEM", &i_key)?;
        let price = as_cents(&item[col::i::PRICE]);

        let s_key = Key::ints(&[w_id, *i_id]);
        let mut stock = require(s.read(txn, "STOCK", &s_key)?, "STOCK", &s_key)?;
        let on_hand = as_int(&stock[col::s::QUANTITY]);
        let new_quantity = if on_hand >= quantity + 10 {
            on_hand - quantity
        } else {
            on_hand - quantity + 91
        };
        stock.set(col::s::QUANTITY, Value::Int(new_quantity));
        stock.set(
            col::s::YTD,
            Value::Decimal(as_cents(&stock[col::s::YTD]) + quantity * 100),
        );
        stock.set(
            col::s::ORDER_CNT,
            Value::Int(as_int(&stock[col::s::ORDER_CNT]) + 1),
        );
        s.update(txn, "STOCK", &s_key, stock)?;

        s.insert(
            txn,
            "ORDER_LINE",
            Row::new(vec![
                Value::Int(o_id),
                Value::Int(d_id),
                Value::Int(w_id),
                Value::Int(number as i64 + 1),
                Value::Int(*i_id),
                Value::Int(w_id),
                Value::Null,
                Value::Int(*quantity),
                Value::Decimal(price * quantity),
                Value::Str(format!("dist-{d_id:02}")),
            ]),
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Payment
// ---------------------------------------------------------------------------

/// The TPC-C Payment transaction.
pub struct Payment {
    state: Arc<SubenchmarkState>,
}

impl Payment {
    /// Create the template.
    pub fn new(state: Arc<SubenchmarkState>) -> Payment {
        Payment { state }
    }
}

impl OnlineTransaction for Payment {
    fn name(&self) -> &str {
        "Payment"
    }

    fn is_read_only(&self) -> bool {
        false
    }

    fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
        let w_id = self.state.rand_warehouse(rng);
        let d_id = common::uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        let c_id = common::nurand(rng, 1023, 1, CUSTOMERS_PER_DISTRICT);
        let by_name_choice = common::uniform(rng, 0, 99);
        let last_name = common::rand_last_name(rng);
        let amount = common::rand_amount_cents(rng, 1.0, 5_000.0);
        let h_id = self.state.next_history();
        payment_statements_txn(
            session,
            w_id,
            d_id,
            c_id,
            by_name_choice,
            &last_name,
            amount,
            h_id,
        )
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn payment_statements_txn(
    session: &Session,
    w_id: i64,
    d_id: i64,
    c_id: i64,
    by_name_choice: i64,
    last_name: &str,
    amount: i64,
    h_id: i64,
) -> EngineResult<()> {
    session.run_transaction(WorkClass::Oltp, RETRIES, |s, txn| {
        payment_statements(
            s,
            txn,
            w_id,
            d_id,
            c_id,
            by_name_choice,
            last_name,
            amount,
            h_id,
        )
    })
}

/// The Payment statement sequence, reusable inside hybrid transactions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn payment_statements(
    s: &Session,
    txn: &mut TxnHandle,
    w_id: i64,
    d_id: i64,
    c_id: i64,
    by_name_choice: i64,
    last_name: &str,
    amount: i64,
    h_id: i64,
) -> EngineResult<()> {
    let w_key = Key::int(w_id);
    let mut warehouse = require(s.read(txn, "WAREHOUSE", &w_key)?, "WAREHOUSE", &w_key)?;
    warehouse.set(
        col::w::YTD,
        Value::Decimal(as_cents(&warehouse[col::w::YTD]) + amount),
    );
    s.update(txn, "WAREHOUSE", &w_key, warehouse)?;

    let d_key = Key::ints(&[w_id, d_id]);
    let mut district = require(s.read(txn, "DISTRICT", &d_key)?, "DISTRICT", &d_key)?;
    district.set(
        col::d::YTD,
        Value::Decimal(as_cents(&district[col::d::YTD]) + amount),
    );
    s.update(txn, "DISTRICT", &d_key, district)?;

    let mut customer = select_customer(s, txn, by_name_choice, w_id, d_id, c_id, last_name)?;
    let customer_id = as_int(&customer[col::c::ID]);
    let c_key = Key::ints(&[w_id, d_id, customer_id]);
    customer.set(
        col::c::BALANCE,
        Value::Decimal(as_cents(&customer[col::c::BALANCE]) - amount),
    );
    customer.set(
        col::c::YTD_PAYMENT,
        Value::Decimal(as_cents(&customer[col::c::YTD_PAYMENT]) + amount),
    );
    customer.set(
        col::c::PAYMENT_CNT,
        Value::Int(as_int(&customer[col::c::PAYMENT_CNT]) + 1),
    );
    s.update(txn, "CUSTOMER", &c_key, customer)?;

    s.insert(
        txn,
        "HISTORY",
        Row::new(vec![
            Value::Int(h_id),
            Value::Int(customer_id),
            Value::Int(d_id),
            Value::Int(w_id),
            Value::Int(d_id),
            Value::Int(w_id),
            Value::Timestamp(common::synthetic_timestamp(h_id)),
            Value::Decimal(amount),
        ]),
    )?;
    Ok(())
}

// ---------------------------------------------------------------------------
// OrderStatus
// ---------------------------------------------------------------------------

/// The TPC-C Order-Status transaction (read only).
pub struct OrderStatus {
    state: Arc<SubenchmarkState>,
}

impl OrderStatus {
    /// Create the template.
    pub fn new(state: Arc<SubenchmarkState>) -> OrderStatus {
        OrderStatus { state }
    }
}

impl OnlineTransaction for OrderStatus {
    fn name(&self) -> &str {
        "OrderStatus"
    }

    fn is_read_only(&self) -> bool {
        true
    }

    fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
        let w_id = self.state.rand_warehouse(rng);
        let d_id = common::uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        let c_id = common::nurand(rng, 1023, 1, CUSTOMERS_PER_DISTRICT);
        let by_name_choice = common::uniform(rng, 0, 99);
        let last_name = common::rand_last_name(rng);
        session.run_transaction(WorkClass::Oltp, RETRIES, |s, txn| {
            order_status_statements(s, txn, w_id, d_id, c_id, by_name_choice, &last_name)
        })
    }
}

/// The Order-Status statement sequence, reusable inside hybrid transactions.
pub(crate) fn order_status_statements(
    s: &Session,
    txn: &mut TxnHandle,
    w_id: i64,
    d_id: i64,
    c_id: i64,
    by_name_choice: i64,
    last_name: &str,
) -> EngineResult<()> {
    let customer = select_customer(s, txn, by_name_choice, w_id, d_id, c_id, last_name)?;
    let customer_id = as_int(&customer[col::c::ID]);
    let orders = s.select_eq(
        txn,
        "ORDERS",
        &["o_w_id", "o_d_id", "o_c_id"],
        &[Value::Int(w_id), Value::Int(d_id), Value::Int(customer_id)],
    )?;
    if let Some(latest) = orders.iter().max_by_key(|o| as_int(&o[col::o::ID])) {
        let o_id = as_int(&latest[col::o::ID]);
        let _lines = s.scan_prefix(txn, "ORDER_LINE", &Key::ints(&[w_id, d_id, o_id]))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Delivery
// ---------------------------------------------------------------------------

/// The TPC-C Delivery transaction.
pub struct Delivery {
    state: Arc<SubenchmarkState>,
}

impl Delivery {
    /// Create the template.
    pub fn new(state: Arc<SubenchmarkState>) -> Delivery {
        Delivery { state }
    }
}

impl OnlineTransaction for Delivery {
    fn name(&self) -> &str {
        "Delivery"
    }

    fn is_read_only(&self) -> bool {
        false
    }

    fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
        let w_id = self.state.rand_warehouse(rng);
        let carrier = common::uniform(rng, 1, 10);
        session.run_transaction(WorkClass::Oltp, RETRIES, |s, txn| {
            for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
                let pending = s.scan_prefix(txn, "NEW_ORDER", &Key::ints(&[w_id, d_id]))?;
                let Some(oldest) = pending.iter().min_by_key(|r| as_int(&r[col::no::O_ID])) else {
                    continue;
                };
                let o_id = as_int(&oldest[col::no::O_ID]);
                let no_key = Key::ints(&[w_id, d_id, o_id]);
                s.delete(txn, "NEW_ORDER", &no_key)?;

                let o_key = Key::ints(&[w_id, d_id, o_id]);
                let mut order = require(s.read(txn, "ORDERS", &o_key)?, "ORDERS", &o_key)?;
                let c_id = as_int(&order[col::o::C_ID]);
                order.set(col::o::CARRIER_ID, Value::Int(carrier));
                s.update(txn, "ORDERS", &o_key, order)?;

                let lines = s.scan_prefix(txn, "ORDER_LINE", &Key::ints(&[w_id, d_id, o_id]))?;
                let mut total = 0i64;
                for mut line in lines {
                    total += as_cents(&line[col::ol::AMOUNT]);
                    let line_key = Key::ints(&[w_id, d_id, o_id, as_int(&line[col::ol::NUMBER])]);
                    line.set(
                        col::ol::DELIVERY_D,
                        Value::Timestamp(common::synthetic_timestamp(o_id)),
                    );
                    s.update(txn, "ORDER_LINE", &line_key, line)?;
                }

                let c_key = Key::ints(&[w_id, d_id, c_id]);
                let mut customer = require(s.read(txn, "CUSTOMER", &c_key)?, "CUSTOMER", &c_key)?;
                customer.set(
                    col::c::BALANCE,
                    Value::Decimal(as_cents(&customer[col::c::BALANCE]) + total),
                );
                customer.set(
                    col::c::DELIVERY_CNT,
                    Value::Int(as_int(&customer[col::c::DELIVERY_CNT]) + 1),
                );
                s.update(txn, "CUSTOMER", &c_key, customer)?;
            }
            Ok(())
        })
    }
}

// ---------------------------------------------------------------------------
// StockLevel
// ---------------------------------------------------------------------------

/// The TPC-C Stock-Level transaction (read only).
pub struct StockLevel {
    state: Arc<SubenchmarkState>,
}

impl StockLevel {
    /// Create the template.
    pub fn new(state: Arc<SubenchmarkState>) -> StockLevel {
        StockLevel { state }
    }
}

impl OnlineTransaction for StockLevel {
    fn name(&self) -> &str {
        "StockLevel"
    }

    fn is_read_only(&self) -> bool {
        true
    }

    fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
        let w_id = self.state.rand_warehouse(rng);
        let d_id = common::uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        let threshold = common::uniform(rng, 10, 20);
        session.run_transaction(WorkClass::Oltp, RETRIES, |s, txn| {
            stock_level_statements(s, txn, w_id, d_id, threshold)
        })
    }
}

/// The Stock-Level statement sequence, reusable inside hybrid transactions.
pub(crate) fn stock_level_statements(
    s: &Session,
    txn: &mut TxnHandle,
    w_id: i64,
    d_id: i64,
    threshold: i64,
) -> EngineResult<()> {
    let d_key = Key::ints(&[w_id, d_id]);
    let district = require(s.read(txn, "DISTRICT", &d_key)?, "DISTRICT", &d_key)?;
    let next_o_id = as_int(&district[col::d::NEXT_O_ID]);

    let lines = s.scan_prefix(txn, "ORDER_LINE", &Key::ints(&[w_id, d_id]))?;
    let mut item_ids: Vec<i64> = lines
        .iter()
        .filter(|l| as_int(&l[col::ol::O_ID]) >= next_o_id - 20)
        .map(|l| as_int(&l[col::ol::I_ID]))
        .collect();
    item_ids.sort_unstable();
    item_ids.dedup();

    let mut low_stock = 0;
    for i_id in item_ids.into_iter().take(20) {
        let s_key = Key::ints(&[w_id, i_id]);
        let stock = require(s.read(txn, "STOCK", &s_key)?, "STOCK", &s_key)?;
        if as_int(&stock[col::s::QUANTITY]) < threshold {
            low_stock += 1;
        }
    }
    let _ = low_stock;
    Ok(())
}

//! The subenchmark: OLxPBench's general (retail) benchmark, inspired by TPC-C.

pub mod analytics;
pub mod oltp;
pub mod schema;

use crate::common;
use oltp::SubenchmarkState;
use olxp_engine::{EngineResult, HybridDatabase};
use olxpbench_core::{
    AnalyticalQuery, HybridTransaction, OnlineTransaction, TransactionMix, Workload,
    WorkloadFeatures, WorkloadKind,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The subenchmark workload.
///
/// "The subenchmark is inspired by TPC-C, which is not bound to a specific
/// scenario, and the community considers a general benchmark for OLTP system
/// evaluation." (§IV-B1)  It keeps the five TPC-C online transactions
/// (write-heavy, 8 % read-only), adds nine analytical queries over the same
/// semantically consistent schema and five hybrid transactions (60 % read-only)
/// whose real-time queries model e-commerce user behaviour.
pub struct Subenchmark {
    state: Arc<SubenchmarkState>,
}

impl Subenchmark {
    /// Create the workload.
    pub fn new() -> Subenchmark {
        Subenchmark {
            state: SubenchmarkState::new(),
        }
    }

    /// Shared run-time state (warehouse count, surrogate key counters).
    pub fn state(&self) -> &Arc<SubenchmarkState> {
        &self.state
    }
}

impl Default for Subenchmark {
    fn default() -> Self {
        Subenchmark::new()
    }
}

impl Workload for Subenchmark {
    fn name(&self) -> &str {
        "subenchmark"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::General
    }

    fn create_schema(&self, db: &Arc<HybridDatabase>) -> EngineResult<()> {
        schema::create_schema(db)
    }

    fn load(&self, db: &Arc<HybridDatabase>, scale_factor: u32, seed: u64) -> EngineResult<()> {
        self.state
            .warehouses
            .store(i64::from(scale_factor.max(1)), Ordering::Relaxed);
        schema::load(db, scale_factor, seed)
    }

    fn online_transactions(&self) -> Vec<Arc<dyn OnlineTransaction>> {
        vec![
            Arc::new(oltp::NewOrder::new(Arc::clone(&self.state))),
            Arc::new(oltp::Payment::new(Arc::clone(&self.state))),
            Arc::new(oltp::OrderStatus::new(Arc::clone(&self.state))),
            Arc::new(oltp::Delivery::new(Arc::clone(&self.state))),
            Arc::new(oltp::StockLevel::new(Arc::clone(&self.state))),
        ]
    }

    fn analytical_queries(&self) -> Vec<Arc<dyn AnalyticalQuery>> {
        analytics::analytical_queries()
    }

    fn hybrid_transactions(&self) -> Vec<Arc<dyn HybridTransaction>> {
        analytics::hybrid_transactions(&self.state)
    }

    fn default_online_mix(&self) -> TransactionMix {
        // The TPC-C mix: 8 % of transactions (OrderStatus + StockLevel) are
        // read-only.
        TransactionMix::new(vec![
            ("NewOrder", 45),
            ("Payment", 43),
            ("OrderStatus", 4),
            ("Delivery", 4),
            ("StockLevel", 4),
        ])
    }

    fn default_hybrid_mix(&self) -> TransactionMix {
        TransactionMix::new(vec![
            ("X1-NewOrderBestPrice", 20),
            ("X2-PaymentSpendingCheck", 20),
            ("X3-OrderStatusDistrictTrend", 20),
            ("X4-StockLevelGlobalView", 20),
            ("X5-BrowseBestSellers", 20),
        ])
    }

    fn features(&self) -> WorkloadFeatures {
        let schemas = schema::schemas();
        WorkloadFeatures {
            name: self.name().to_string(),
            table_names: schemas.iter().map(|s| s.name().to_string()).collect(),
            columns: schemas.iter().map(|s| s.column_count()).sum(),
            indexes: schemas.iter().map(|s| s.indexes().len()).sum(),
            oltp_transactions: 5,
            read_only_oltp_percent: 8.0,
            analytical_queries: 9,
            hybrid_transactions: 5,
            read_only_hybrid_percent: 60.0,
            has_online_transaction: true,
            has_analytical_query: true,
            has_hybrid_transaction: true,
            has_real_time_query: true,
            semantically_consistent_schema: true,
            general_benchmark: true,
            domain_specific_benchmark: false,
        }
    }
}

/// Re-export the schema constants for experiments.
pub use schema::{
    CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE, ITEM_COUNT, ORDERS_PER_DISTRICT,
};

/// Convenience: a loaded subenchmark database for tests and examples.
pub fn prepare_database(
    db: &Arc<HybridDatabase>,
    workload: &Subenchmark,
    scale: u32,
    seed: u64,
) -> EngineResult<()> {
    workload.create_schema(db)?;
    workload.load(db, scale, seed)?;
    db.finish_load()?;
    let _ = common::synthetic_timestamp(0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_engine::EngineConfig;
    use olxpbench_core::check_semantic_consistency;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loaded_db() -> (Arc<HybridDatabase>, Subenchmark) {
        let db = HybridDatabase::new(EngineConfig::single_engine().with_time_scale(0.0)).unwrap();
        let workload = Subenchmark::new();
        prepare_database(&db, &workload, 1, 7).unwrap();
        (db, workload)
    }

    #[test]
    fn features_match_table2() {
        let features = Subenchmark::new().features();
        assert_eq!(features.tables(), 9);
        assert_eq!(features.columns, 92);
        assert_eq!(features.indexes, 3);
        assert_eq!(features.oltp_transactions, 5);
        assert_eq!(features.analytical_queries, 9);
        assert_eq!(features.hybrid_transactions, 5);
        assert!((features.read_only_oltp_percent - 8.0).abs() < f64::EPSILON);
        assert!((features.read_only_hybrid_percent - 60.0).abs() < f64::EPSILON);
    }

    #[test]
    fn schema_is_semantically_consistent() {
        let workload = Subenchmark::new();
        let report = check_semantic_consistency(&workload);
        assert!(report.is_semantically_consistent());
        // The analytical side covers HISTORY, WAREHOUSE and DISTRICT — the
        // tables CH-benCHmark's stitch schema never analyses.
        assert!(report.olap_tables.contains(&"HISTORY".to_string()));
        assert!(report.olap_tables.contains(&"WAREHOUSE".to_string()));
        assert!(report.olap_tables.contains(&"DISTRICT".to_string()));
    }

    #[test]
    fn every_online_transaction_executes() {
        let (db, workload) = loaded_db();
        let session = db.session();
        let mut rng = StdRng::seed_from_u64(11);
        for txn in workload.online_transactions() {
            for _ in 0..3 {
                txn.execute(&session, &mut rng)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", txn.name()));
            }
        }
        assert!(db.metrics_snapshot().commits >= 15);
    }

    #[test]
    fn every_analytical_query_executes() {
        let (db, workload) = loaded_db();
        let session = db.session();
        let mut rng = StdRng::seed_from_u64(13);
        for query in workload.analytical_queries() {
            query
                .execute(&session, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", query.name()));
        }
        let metrics = db.metrics_snapshot();
        assert!(metrics.statements[1] >= 9);
    }

    #[test]
    fn every_hybrid_transaction_executes() {
        let (db, workload) = loaded_db();
        let session = db.session();
        let mut rng = StdRng::seed_from_u64(17);
        for hybrid in workload.hybrid_transactions() {
            hybrid
                .execute(&session, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", hybrid.name()));
        }
        let metrics = db.metrics_snapshot();
        assert!(metrics.busy_nanos[2] > 0, "hybrid work recorded");
    }

    #[test]
    fn new_order_advances_district_counter() {
        let (db, workload) = loaded_db();
        let session = db.session();
        let mut rng = StdRng::seed_from_u64(19);
        let orders_before = db.table_key_count("ORDERS");
        let new_order = &workload.online_transactions()[0];
        new_order.execute(&session, &mut rng).unwrap();
        assert_eq!(db.table_key_count("ORDERS"), orders_before + 1);
    }
}

//! The fibenchmark: OLxPBench's banking domain-specific benchmark, inspired by
//! SmallBank.
//!
//! Three tables (ACCOUNT, SAVINGS, CHECKING), the six SmallBank online
//! transactions (15 % read-only in the default mix), four analytical queries
//! performing real-time customer-account analytics and six hybrid
//! transactions (20 % read-only) whose real-time queries perform financial
//! analysis of the customer's accounts — e.g. the Checking Balance transaction
//! that "checks whether the cheque balance is sufficient and aggregates the
//! value of the minimum savings" (§IV-B2).

use crate::common::{self, PlannedQuery};
use olxp_engine::{EngineError, EngineResult, HybridDatabase, Session, TxnHandle, WorkClass};
use olxp_query::{col as qcol, lit, AggFunc, AggSpec, JoinKind, QueryBuilder, SortKey};
use olxp_storage::{ColumnDef, DataType, Key, Row, StorageError, TableSchema, Value};
use olxpbench_core::{
    AnalyticalQuery, HybridTransaction, OnlineTransaction, TransactionMix, Workload,
    WorkloadFeatures, WorkloadKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Accounts per scale-factor unit.
pub const ACCOUNTS_PER_SCALE: i64 = 1_000;
/// Retry attempts for retryable conflicts.
const RETRIES: usize = 5;

/// Column positions.
pub mod col {
    /// ACCOUNT columns.
    pub mod acct {
        pub const CUSTID: usize = 0;
        pub const NAME: usize = 1;
    }
    /// SAVINGS columns.
    pub mod sav {
        pub const CUSTID: usize = 0;
        pub const BAL: usize = 1;
    }
    /// CHECKING columns.
    pub mod chk {
        pub const CUSTID: usize = 0;
        pub const BAL: usize = 1;
    }
}

/// Run-time state shared by the fibenchmark transactions.
#[derive(Debug)]
pub struct FibenchmarkState {
    /// Number of accounts loaded.
    pub accounts: AtomicI64,
}

impl FibenchmarkState {
    fn new() -> Arc<FibenchmarkState> {
        Arc::new(FibenchmarkState {
            accounts: AtomicI64::new(ACCOUNTS_PER_SCALE),
        })
    }

    fn account_count(&self) -> i64 {
        self.accounts.load(Ordering::Relaxed).max(2)
    }

    fn rand_account(&self, rng: &mut StdRng) -> i64 {
        common::uniform(rng, 1, self.account_count())
    }

    fn rand_account_pair(&self, rng: &mut StdRng) -> (i64, i64) {
        let a = self.rand_account(rng);
        let mut b = self.rand_account(rng);
        if b == a {
            b = if a == self.account_count() { 1 } else { a + 1 };
        }
        (a, b)
    }
}

/// The three fibenchmark table schemas.
pub fn schemas() -> Vec<TableSchema> {
    let account = TableSchema::new(
        "ACCOUNT",
        vec![
            ColumnDef::new("custid", DataType::Int, false),
            ColumnDef::new("name", DataType::Str, false),
        ],
        vec!["custid"],
    )
    .expect("static schema")
    .with_index("idx_account_name", vec!["name"], true)
    .expect("static schema")
    .with_index("idx_account_custid_name", vec!["custid", "name"], false)
    .expect("static schema");

    let savings = TableSchema::new(
        "SAVINGS",
        vec![
            ColumnDef::new("custid", DataType::Int, false),
            ColumnDef::new("bal", DataType::Decimal, false),
        ],
        vec!["custid"],
    )
    .expect("static schema")
    .with_index("idx_savings_bal", vec!["bal"], false)
    .expect("static schema")
    .with_foreign_key(vec!["custid"], "ACCOUNT", vec!["custid"])
    .expect("static schema");

    let checking = TableSchema::new(
        "CHECKING",
        vec![
            ColumnDef::new("custid", DataType::Int, false),
            ColumnDef::new("bal", DataType::Decimal, false),
        ],
        vec!["custid"],
    )
    .expect("static schema")
    .with_index("idx_checking_bal", vec!["bal"], false)
    .expect("static schema")
    .with_foreign_key(vec!["custid"], "ACCOUNT", vec!["custid"])
    .expect("static schema");

    vec![account, savings, checking]
}

fn require(row: Option<Row>, table: &str, key: &Key) -> EngineResult<Row> {
    row.ok_or_else(|| {
        EngineError::Storage(StorageError::KeyNotFound {
            table: table.to_string(),
            key: key.to_string(),
        })
    })
}

fn cents(value: &Value) -> i64 {
    match value {
        Value::Decimal(v) => *v,
        other => other.as_int().unwrap_or(0) * 100,
    }
}

fn read_balance(s: &Session, txn: &mut TxnHandle, table: &str, custid: i64) -> EngineResult<Row> {
    let key = Key::int(custid);
    require(s.read(txn, table, &key)?, table, &key)
}

fn adjust_balance(
    s: &Session,
    txn: &mut TxnHandle,
    table: &str,
    custid: i64,
    delta: i64,
) -> EngineResult<i64> {
    let key = Key::int(custid);
    let mut row = require(s.read(txn, table, &key)?, table, &key)?;
    let new_balance = cents(&row[1]) + delta;
    row.set(1, Value::Decimal(new_balance));
    s.update(txn, table, &key, row)?;
    Ok(new_balance)
}

// ---------------------------------------------------------------------------
// Online transactions
// ---------------------------------------------------------------------------

macro_rules! online_txn {
    ($name:ident, $label:literal, $read_only:expr, |$state:ident, $s:ident, $txn:ident, $rng:ident| $body:block) => {
        /// SmallBank-derived online transaction.
        pub struct $name {
            state: Arc<FibenchmarkState>,
        }

        impl $name {
            /// Create the template.
            pub fn new(state: Arc<FibenchmarkState>) -> Self {
                Self { state }
            }
        }

        impl OnlineTransaction for $name {
            fn name(&self) -> &str {
                $label
            }

            fn is_read_only(&self) -> bool {
                $read_only
            }

            fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
                let $state = &self.state;
                let $rng = rng;
                session.run_transaction(WorkClass::Oltp, RETRIES, |$s, $txn| $body)
            }
        }
    };
}

online_txn!(Balance, "Balance", true, |state, s, txn, rng| {
    let custid = state.rand_account(rng);
    let account = read_balance(s, txn, "ACCOUNT", custid)?;
    let savings = read_balance(s, txn, "SAVINGS", custid)?;
    let checking = read_balance(s, txn, "CHECKING", custid)?;
    let _total = cents(&savings[col::sav::BAL]) + cents(&checking[col::chk::BAL]);
    let _ = account;
    Ok(())
});

online_txn!(
    DepositChecking,
    "DepositChecking",
    false,
    |state, s, txn, rng| {
        let custid = state.rand_account(rng);
        let amount = common::rand_amount_cents(rng, 1.0, 100.0);
        let _ = read_balance(s, txn, "ACCOUNT", custid)?;
        adjust_balance(s, txn, "CHECKING", custid, amount)?;
        Ok(())
    }
);

online_txn!(
    TransactSavings,
    "TransactSavings",
    false,
    |state, s, txn, rng| {
        let custid = state.rand_account(rng);
        let amount =
            common::rand_amount_cents(rng, 1.0, 100.0) - common::rand_amount_cents(rng, 0.0, 50.0);
        let _ = read_balance(s, txn, "ACCOUNT", custid)?;
        adjust_balance(s, txn, "SAVINGS", custid, amount)?;
        Ok(())
    }
);

online_txn!(Amalgamate, "Amalgamate", false, |state, s, txn, rng| {
    let (from, to) = state.rand_account_pair(rng);
    let savings = cents(&read_balance(s, txn, "SAVINGS", from)?[col::sav::BAL]);
    let checking = cents(&read_balance(s, txn, "CHECKING", from)?[col::chk::BAL]);
    adjust_balance(s, txn, "SAVINGS", from, -savings)?;
    adjust_balance(s, txn, "CHECKING", from, -checking)?;
    adjust_balance(s, txn, "CHECKING", to, savings + checking)?;
    Ok(())
});

online_txn!(WriteCheck, "WriteCheck", false, |state, s, txn, rng| {
    let custid = state.rand_account(rng);
    let amount = common::rand_amount_cents(rng, 1.0, 500.0);
    let savings = cents(&read_balance(s, txn, "SAVINGS", custid)?[col::sav::BAL]);
    let checking = cents(&read_balance(s, txn, "CHECKING", custid)?[col::chk::BAL]);
    let penalty = if savings + checking < amount { 100 } else { 0 };
    adjust_balance(s, txn, "CHECKING", custid, -(amount + penalty))?;
    Ok(())
});

online_txn!(SendPayment, "SendPayment", false, |state, s, txn, rng| {
    let (from, to) = state.rand_account_pair(rng);
    let amount = common::rand_amount_cents(rng, 1.0, 100.0);
    adjust_balance(s, txn, "CHECKING", from, -amount)?;
    adjust_balance(s, txn, "CHECKING", to, amount)?;
    Ok(())
});

// ---------------------------------------------------------------------------
// Hybrid transactions
// ---------------------------------------------------------------------------

macro_rules! hybrid_txn {
    ($name:ident, $label:literal, $read_only:expr, |$state:ident, $s:ident, $txn:ident, $rng:ident| $body:block) => {
        /// Fibenchmark hybrid transaction.
        pub struct $name {
            state: Arc<FibenchmarkState>,
        }

        impl $name {
            /// Create the template.
            pub fn new(state: Arc<FibenchmarkState>) -> Self {
                Self { state }
            }
        }

        impl HybridTransaction for $name {
            fn name(&self) -> &str {
                $label
            }

            fn is_read_only(&self) -> bool {
                $read_only
            }

            fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
                let $state = &self.state;
                let $rng = rng;
                session.run_transaction(WorkClass::Hybrid, RETRIES, |$s, $txn| $body)
            }
        }
    };
}

hybrid_txn!(
    PaymentWithBalanceTrend,
    "X1-PaymentWithBalanceTrend",
    false,
    |state, s, txn, rng| {
        // Real-time query: average and minimum checking balance across the bank.
        let plan = QueryBuilder::scan("CHECKING")
            .aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Avg, col::chk::BAL),
                    AggSpec::new(AggFunc::Min, col::chk::BAL),
                ],
            )
            .build();
        let _trend = s.query_in_txn(txn, &plan)?;
        let (from, to) = state.rand_account_pair(rng);
        let amount = common::rand_amount_cents(rng, 1.0, 100.0);
        adjust_balance(s, txn, "CHECKING", from, -amount)?;
        adjust_balance(s, txn, "CHECKING", to, amount)?;
        Ok(())
    }
);

hybrid_txn!(
    DepositWithFraudScreen,
    "X2-DepositWithFraudScreen",
    false,
    |state, s, txn, rng| {
        let custid = state.rand_account(rng);
        // Real-time query: the customer's maximum balance across both accounts.
        let plan = QueryBuilder::scan_where("SAVINGS", qcol(col::sav::CUSTID).eq(lit(custid)))
            .join(
                QueryBuilder::scan_where("CHECKING", qcol(col::chk::CUSTID).eq(lit(custid))),
                vec![col::sav::CUSTID],
                vec![col::chk::CUSTID],
                JoinKind::Inner,
            )
            .aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Max, col::sav::BAL),
                    AggSpec::new(AggFunc::Max, 2 + col::chk::BAL),
                ],
            )
            .build();
        let _screen = s.query_in_txn(txn, &plan)?;
        let amount = common::rand_amount_cents(rng, 1.0, 100.0);
        adjust_balance(s, txn, "CHECKING", custid, amount)?;
        Ok(())
    }
);

hybrid_txn!(
    AmalgamateWithExposure,
    "X3-AmalgamateWithExposure",
    false,
    |state, s, txn, rng| {
        // Real-time query: total funds currently held in savings.
        let plan = QueryBuilder::scan("SAVINGS")
            .aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Sum, col::sav::BAL),
                    AggSpec::new(AggFunc::Count, col::sav::CUSTID),
                ],
            )
            .build();
        let _exposure = s.query_in_txn(txn, &plan)?;
        let (from, to) = state.rand_account_pair(rng);
        let savings = cents(&read_balance(s, txn, "SAVINGS", from)?[col::sav::BAL]);
        adjust_balance(s, txn, "SAVINGS", from, -savings)?;
        adjust_balance(s, txn, "CHECKING", to, savings)?;
        Ok(())
    }
);

hybrid_txn!(
    CheckingBalanceMinSavings,
    "X4-CheckingBalanceMinSavings",
    false,
    |state, s, txn, rng| {
        // The paper's X6: "checks whether the cheque balance is sufficient and
        // aggregates the value of the minimum savings".
        let plan = QueryBuilder::scan("SAVINGS")
            .aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Min, col::sav::BAL),
                    AggSpec::new(AggFunc::Avg, col::sav::BAL),
                ],
            )
            .build();
        let _min_savings = s.query_in_txn(txn, &plan)?;
        let custid = state.rand_account(rng);
        let amount = common::rand_amount_cents(rng, 1.0, 500.0);
        let checking = cents(&read_balance(s, txn, "CHECKING", custid)?[col::chk::BAL]);
        let penalty = if checking < amount { 100 } else { 0 };
        adjust_balance(s, txn, "CHECKING", custid, -(amount + penalty))?;
        Ok(())
    }
);

hybrid_txn!(
    SavingsRateAdjustment,
    "X5-SavingsRateAdjustment",
    false,
    |state, s, txn, rng| {
        // Real-time query: distribution of savings balances (volatility of
        // extreme values, §IV-B2).
        let plan = QueryBuilder::scan("SAVINGS")
            .aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Max, col::sav::BAL),
                    AggSpec::new(AggFunc::Min, col::sav::BAL),
                    AggSpec::new(AggFunc::Avg, col::sav::BAL),
                ],
            )
            .build();
        let _volatility = s.query_in_txn(txn, &plan)?;
        let custid = state.rand_account(rng);
        let amount = common::rand_amount_cents(rng, 0.0, 25.0);
        adjust_balance(s, txn, "SAVINGS", custid, amount)?;
        Ok(())
    }
);

hybrid_txn!(
    BalanceWithBankPosition,
    "X6-BalanceWithBankPosition",
    true,
    |state, s, txn, rng| {
        // Real-time query: the bank-wide checking position.
        let plan = QueryBuilder::scan("CHECKING")
            .aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Sum, col::chk::BAL),
                    AggSpec::new(AggFunc::Avg, col::chk::BAL),
                ],
            )
            .build();
        let _position = s.query_in_txn(txn, &plan)?;
        let custid = state.rand_account(rng);
        let _savings = read_balance(s, txn, "SAVINGS", custid)?;
        let _checking = read_balance(s, txn, "CHECKING", custid)?;
        Ok(())
    }
);

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// The fibenchmark workload.
pub struct Fibenchmark {
    state: Arc<FibenchmarkState>,
}

impl Fibenchmark {
    /// Create the workload.
    pub fn new() -> Fibenchmark {
        Fibenchmark {
            state: FibenchmarkState::new(),
        }
    }
}

impl Default for Fibenchmark {
    fn default() -> Self {
        Fibenchmark::new()
    }
}

impl Workload for Fibenchmark {
    fn name(&self) -> &str {
        "fibenchmark"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::DomainSpecific
    }

    fn create_schema(&self, db: &Arc<HybridDatabase>) -> EngineResult<()> {
        for schema in schemas() {
            db.create_table(schema)?;
        }
        Ok(())
    }

    fn load(&self, db: &Arc<HybridDatabase>, scale_factor: u32, seed: u64) -> EngineResult<()> {
        let accounts = i64::from(scale_factor.max(1)) * ACCOUNTS_PER_SCALE;
        self.state.accounts.store(accounts, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(seed);
        for custid in 1..=accounts {
            db.load_row(
                "ACCOUNT",
                Row::new(vec![
                    Value::Int(custid),
                    Value::Str(format!("customer-{custid:08}")),
                ]),
            )?;
            db.load_row(
                "SAVINGS",
                Row::new(vec![
                    Value::Int(custid),
                    Value::Decimal(common::rand_amount_cents(&mut rng, 100.0, 10_000.0)),
                ]),
            )?;
            db.load_row(
                "CHECKING",
                Row::new(vec![
                    Value::Int(custid),
                    Value::Decimal(common::rand_amount_cents(&mut rng, 10.0, 5_000.0)),
                ]),
            )?;
        }
        Ok(())
    }

    fn online_transactions(&self) -> Vec<Arc<dyn OnlineTransaction>> {
        vec![
            Arc::new(Balance::new(Arc::clone(&self.state))),
            Arc::new(DepositChecking::new(Arc::clone(&self.state))),
            Arc::new(TransactSavings::new(Arc::clone(&self.state))),
            Arc::new(Amalgamate::new(Arc::clone(&self.state))),
            Arc::new(WriteCheck::new(Arc::clone(&self.state))),
            Arc::new(SendPayment::new(Arc::clone(&self.state))),
        ]
    }

    fn analytical_queries(&self) -> Vec<Arc<dyn AnalyticalQuery>> {
        vec![
            Arc::new(PlannedQuery::new(
                "Q1-AccountNameQuery",
                vec!["ACCOUNT", "CHECKING"],
                |_rng| {
                    // "lists the name in the combining row from ACCOUNT and
                    // CHECKING tables" (§IV-B2).
                    QueryBuilder::scan("ACCOUNT")
                        .join(
                            QueryBuilder::scan("CHECKING"),
                            vec![col::acct::CUSTID],
                            vec![col::chk::CUSTID],
                            JoinKind::Inner,
                        )
                        .sort(vec![SortKey::desc(2 + col::chk::BAL)])
                        .limit(100)
                        .project(vec![qcol(col::acct::NAME), qcol(2 + col::chk::BAL)])
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "Q2-WealthDistribution",
                vec!["SAVINGS", "CHECKING"],
                |_rng| {
                    QueryBuilder::scan("SAVINGS")
                        .join(
                            QueryBuilder::scan("CHECKING"),
                            vec![col::sav::CUSTID],
                            vec![col::chk::CUSTID],
                            JoinKind::Inner,
                        )
                        .project(vec![
                            qcol(col::sav::CUSTID),
                            qcol(col::sav::BAL).add(qcol(2 + col::chk::BAL)),
                        ])
                        .aggregate(
                            vec![],
                            vec![
                                AggSpec::new(AggFunc::Avg, 1),
                                AggSpec::new(AggFunc::Max, 1),
                                AggSpec::new(AggFunc::Min, 1),
                                AggSpec::new(AggFunc::Count, 0),
                            ],
                        )
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "Q3-TopSavers",
                vec!["SAVINGS", "ACCOUNT"],
                |_rng| {
                    QueryBuilder::scan("SAVINGS")
                        .join(
                            QueryBuilder::scan("ACCOUNT"),
                            vec![col::sav::CUSTID],
                            vec![col::acct::CUSTID],
                            JoinKind::Inner,
                        )
                        .sort(vec![SortKey::desc(col::sav::BAL)])
                        .limit(10)
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "Q4-OverdrawnAccounts",
                vec!["CHECKING", "ACCOUNT"],
                |rng| {
                    let threshold = common::uniform(rng, 0, 100);
                    QueryBuilder::scan_where("CHECKING", qcol(col::chk::BAL).lt(lit(threshold)))
                        .join(
                            QueryBuilder::scan("ACCOUNT"),
                            vec![col::chk::CUSTID],
                            vec![col::acct::CUSTID],
                            JoinKind::Inner,
                        )
                        .aggregate(
                            vec![],
                            vec![
                                AggSpec::new(AggFunc::Count, col::chk::CUSTID),
                                AggSpec::new(AggFunc::Avg, col::chk::BAL),
                            ],
                        )
                        .build()
                },
            )),
        ]
    }

    fn hybrid_transactions(&self) -> Vec<Arc<dyn HybridTransaction>> {
        vec![
            Arc::new(PaymentWithBalanceTrend::new(Arc::clone(&self.state))),
            Arc::new(DepositWithFraudScreen::new(Arc::clone(&self.state))),
            Arc::new(AmalgamateWithExposure::new(Arc::clone(&self.state))),
            Arc::new(CheckingBalanceMinSavings::new(Arc::clone(&self.state))),
            Arc::new(SavingsRateAdjustment::new(Arc::clone(&self.state))),
            Arc::new(BalanceWithBankPosition::new(Arc::clone(&self.state))),
        ]
    }

    fn default_online_mix(&self) -> TransactionMix {
        // 15 % read-only (Balance).
        TransactionMix::new(vec![
            ("Balance", 15),
            ("DepositChecking", 15),
            ("TransactSavings", 15),
            ("Amalgamate", 15),
            ("WriteCheck", 25),
            ("SendPayment", 15),
        ])
    }

    fn default_hybrid_mix(&self) -> TransactionMix {
        // 20 % read-only (X6).
        TransactionMix::new(vec![
            ("X1-PaymentWithBalanceTrend", 16),
            ("X2-DepositWithFraudScreen", 16),
            ("X3-AmalgamateWithExposure", 16),
            ("X4-CheckingBalanceMinSavings", 16),
            ("X5-SavingsRateAdjustment", 16),
            ("X6-BalanceWithBankPosition", 20),
        ])
    }

    fn features(&self) -> WorkloadFeatures {
        let schemas = schemas();
        WorkloadFeatures {
            name: self.name().to_string(),
            table_names: schemas.iter().map(|s| s.name().to_string()).collect(),
            columns: schemas.iter().map(|s| s.column_count()).sum(),
            indexes: schemas.iter().map(|s| s.indexes().len()).sum(),
            oltp_transactions: 6,
            read_only_oltp_percent: 15.0,
            analytical_queries: 4,
            hybrid_transactions: 6,
            read_only_hybrid_percent: 20.0,
            has_online_transaction: true,
            has_analytical_query: true,
            has_hybrid_transaction: true,
            has_real_time_query: true,
            semantically_consistent_schema: true,
            general_benchmark: false,
            domain_specific_benchmark: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_engine::EngineConfig;
    use olxpbench_core::check_semantic_consistency;

    fn loaded_db() -> (Arc<HybridDatabase>, Fibenchmark) {
        let db = HybridDatabase::new(EngineConfig::single_engine().with_time_scale(0.0)).unwrap();
        let workload = Fibenchmark::new();
        workload.create_schema(&db).unwrap();
        workload.load(&db, 1, 3).unwrap();
        db.finish_load().unwrap();
        (db, workload)
    }

    #[test]
    fn features_match_table2() {
        let features = Fibenchmark::new().features();
        assert_eq!(features.tables(), 3);
        assert_eq!(features.columns, 6);
        assert_eq!(features.indexes, 4);
        assert_eq!(features.oltp_transactions, 6);
        assert_eq!(features.analytical_queries, 4);
        assert_eq!(features.hybrid_transactions, 6);
    }

    #[test]
    fn schema_is_semantically_consistent() {
        let report = check_semantic_consistency(&Fibenchmark::new());
        assert!(report.is_semantically_consistent());
    }

    #[test]
    fn read_only_shares_match_paper() {
        let w = Fibenchmark::new();
        let online_mix = w.default_online_mix();
        let online_ro: u32 = w
            .online_transactions()
            .iter()
            .filter(|t| t.is_read_only())
            .map(|t| online_mix.weight_of(t.name()))
            .sum();
        assert_eq!(online_ro * 100 / online_mix.total_weight(), 15);

        let hybrid_mix = w.default_hybrid_mix();
        let hybrid_ro: u32 = w
            .hybrid_transactions()
            .iter()
            .filter(|t| t.is_read_only())
            .map(|t| hybrid_mix.weight_of(t.name()))
            .sum();
        assert_eq!(hybrid_ro * 100 / hybrid_mix.total_weight(), 20);
    }

    #[test]
    fn all_transactions_and_queries_execute() {
        let (db, workload) = loaded_db();
        let session = db.session();
        let mut rng = StdRng::seed_from_u64(23);
        for txn in workload.online_transactions() {
            txn.execute(&session, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", txn.name()));
        }
        for query in workload.analytical_queries() {
            query
                .execute(&session, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", query.name()));
        }
        for hybrid in workload.hybrid_transactions() {
            hybrid
                .execute(&session, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", hybrid.name()));
        }
        assert!(db.metrics_snapshot().commits >= 12);
    }

    #[test]
    fn amalgamate_preserves_total_funds() {
        let (db, workload) = loaded_db();
        let session = db.session();
        let mut rng = StdRng::seed_from_u64(29);
        let total_before = bank_total(&db);
        let amalgamate = &workload.online_transactions()[3];
        assert_eq!(amalgamate.name(), "Amalgamate");
        amalgamate.execute(&session, &mut rng).unwrap();
        let total_after = bank_total(&db);
        assert_eq!(total_before, total_after);
    }

    fn bank_total(db: &Arc<HybridDatabase>) -> i64 {
        let ts = db.txn_manager().oracle().read_ts();
        let mut total = 0i64;
        for table in ["SAVINGS", "CHECKING"] {
            db.scan_table(table, ts, |_, row| total += cents(&row[1]))
                .unwrap();
        }
        total
    }
}

//! # olxpbench-workloads
//!
//! The OLxPBench workload suites (paper §IV):
//!
//! * [`subenchmark`] — the **general** benchmark, inspired by TPC-C retail
//!   activity: 9 tables, the five TPC-C online transactions, nine analytical
//!   queries and five hybrid transactions whose real-time queries model
//!   e-commerce user behaviour (e.g. "find the lowest price of the item before
//!   ordering it");
//! * [`fibenchmark`] — the **banking** domain-specific benchmark, inspired by
//!   SmallBank: 3 tables, the six SmallBank online transactions, four
//!   analytical queries and six hybrid transactions performing real-time
//!   financial analysis of customer accounts;
//! * [`tabenchmark`] — the **telecom** domain-specific benchmark, inspired by
//!   TATP: 4 tables (with the composite `(s_id, sf_type)` SUBSCRIBER primary
//!   key the paper adds), seven online transactions, five analytical queries
//!   and six hybrid transactions including the fuzzy subscriber search;
//! * [`chbenchmark`] — a CH-benCHmark-style **stitch schema** baseline used by
//!   the schema-model comparison (Figures 3 and 4): TPC-C transactions plus
//!   analytical queries over the TPC-H dimension tables (SUPPLIER, NATION,
//!   REGION) that online transactions never update.
//!
//! Every suite implements [`olxpbench_core::Workload`], so the benchmark
//! driver and the experiment harness treat them uniformly.

pub mod chbenchmark;
pub mod common;
pub mod fibenchmark;
pub mod subenchmark;
pub mod tabenchmark;

pub use chbenchmark::ChBenchmark;
pub use fibenchmark::Fibenchmark;
pub use subenchmark::Subenchmark;
pub use tabenchmark::Tabenchmark;

use olxpbench_core::Workload;
use std::sync::Arc;

/// All OLxPBench suites (excluding the CH-benCHmark baseline), in the order
/// the paper presents them.
pub fn olxp_suites() -> Vec<Arc<dyn Workload>> {
    vec![
        Arc::new(Subenchmark::new()),
        Arc::new(Fibenchmark::new()),
        Arc::new(Tabenchmark::new()),
    ]
}

/// Look up a workload by name (`subenchmark`, `fibenchmark`, `tabenchmark`,
/// `chbenchmark`).
pub fn workload_by_name(name: &str) -> Option<Arc<dyn Workload>> {
    match name.to_ascii_lowercase().as_str() {
        "subenchmark" | "su" => Some(Arc::new(Subenchmark::new())),
        "fibenchmark" | "fi" => Some(Arc::new(Fibenchmark::new())),
        "tabenchmark" | "ta" => Some(Arc::new(Tabenchmark::new())),
        "chbenchmark" | "ch" | "ch-benchmark" => Some(Arc::new(ChBenchmark::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_registered() {
        assert_eq!(olxp_suites().len(), 3);
        assert!(workload_by_name("subenchmark").is_some());
        assert!(workload_by_name("FI").is_some());
        assert!(workload_by_name("ch").is_some());
        assert!(workload_by_name("unknown").is_none());
    }
}

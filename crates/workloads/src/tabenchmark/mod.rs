//! The tabenchmark: OLxPBench's telecom domain-specific benchmark, inspired by
//! TATP.
//!
//! Four tables modelling a Home Location Register (HLR) with — following the
//! paper — a **composite primary key** `(s_id, sf_type)` on SUBSCRIBER, "because
//! the composite primary key is standard in the real business scenario"
//! (§IV-B3).  The subscriber-number column is deliberately *not* indexed, so
//! the TATP statements that look a subscriber up by `sub_nbr` degenerate into
//! full scans — the slow query behind the paper's finding that "both MemSQL
//! and TiDB handle the query using the composite keys awkwardly" (§VI-D).
//! Seven online transactions (80 % read-only), five analytical queries and six
//! hybrid transactions (40 % read-only) including the fuzzy subscriber search.

use crate::common::{self, PlannedQuery};
use olxp_engine::{EngineError, EngineResult, HybridDatabase, Session, TxnHandle, WorkClass};
use olxp_query::{col as qcol, lit, AggFunc, AggSpec, QueryBuilder, SortKey};
use olxp_storage::{ColumnDef, DataType, Key, Row, StorageError, TableSchema, Value};
use olxpbench_core::{
    AnalyticalQuery, HybridTransaction, OnlineTransaction, TransactionMix, Workload,
    WorkloadFeatures, WorkloadKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Subscribers per scale-factor unit.
pub const SUBSCRIBERS_PER_SCALE: i64 = 1_000;
/// Retry attempts for retryable conflicts.
const RETRIES: usize = 5;

/// Column positions used by transactions and queries.
pub mod col {
    /// SUBSCRIBER columns (34 columns in total).
    pub mod sub {
        pub const S_ID: usize = 0;
        pub const SF_TYPE: usize = 1;
        pub const SUB_NBR: usize = 2;
        pub const BIT_1: usize = 3;
        pub const MSC_LOCATION: usize = 32;
        pub const VLR_LOCATION: usize = 33;
    }
    /// ACCESS_INFO columns.
    pub mod ai {
        pub const S_ID: usize = 0;
        pub const AI_TYPE: usize = 1;
        pub const DATA1: usize = 2;
        pub const DATA2: usize = 3;
    }
    /// SPECIAL_FACILITY columns.
    pub mod sf {
        pub const S_ID: usize = 0;
        pub const SF_TYPE: usize = 1;
        pub const IS_ACTIVE: usize = 2;
        pub const DATA_A: usize = 4;
    }
    /// CALL_FORWARDING columns.
    pub mod cf {
        pub const S_ID: usize = 0;
        pub const SF_TYPE: usize = 1;
        pub const START_TIME: usize = 2;
        pub const END_TIME: usize = 3;
        pub const NUMBERX: usize = 4;
    }
}

/// The four tabenchmark table schemas (51 columns in total).
pub fn schemas() -> Vec<TableSchema> {
    let mut subscriber_cols = vec![
        ColumnDef::new("s_id", DataType::Int, false),
        ColumnDef::new("sf_type", DataType::Int, false),
        ColumnDef::new("sub_nbr", DataType::Str, false),
    ];
    for i in 1..=10 {
        subscriber_cols.push(ColumnDef::new(format!("bit_{i}"), DataType::Int, false));
    }
    for i in 1..=10 {
        subscriber_cols.push(ColumnDef::new(format!("hex_{i}"), DataType::Int, false));
    }
    for i in 1..=9 {
        subscriber_cols.push(ColumnDef::new(format!("byte2_{i}"), DataType::Int, false));
    }
    subscriber_cols.push(ColumnDef::new("msc_location", DataType::Int, false));
    subscriber_cols.push(ColumnDef::new("vlr_location", DataType::Int, false));
    // The composite primary key the paper introduces; note there is no index
    // on sub_nbr.
    let subscriber = TableSchema::new("SUBSCRIBER", subscriber_cols, vec!["s_id", "sf_type"])
        .expect("static schema")
        .with_index("idx_subscriber_vlr", vec!["vlr_location"], false)
        .expect("static schema")
        .with_index("idx_subscriber_msc", vec!["msc_location"], false)
        .expect("static schema");

    let access_info = TableSchema::new(
        "ACCESS_INFO",
        vec![
            ColumnDef::new("s_id", DataType::Int, false),
            ColumnDef::new("ai_type", DataType::Int, false),
            ColumnDef::new("data1", DataType::Int, false),
            ColumnDef::new("data2", DataType::Int, false),
            ColumnDef::new("data3", DataType::Str, false),
            ColumnDef::new("data4", DataType::Str, false),
        ],
        vec!["s_id", "ai_type"],
    )
    .expect("static schema")
    .with_index("idx_access_info_type", vec!["ai_type"], false)
    .expect("static schema")
    .with_foreign_key(vec!["s_id"], "SUBSCRIBER", vec!["s_id"])
    .expect("static schema");

    let special_facility = TableSchema::new(
        "SPECIAL_FACILITY",
        vec![
            ColumnDef::new("s_id", DataType::Int, false),
            ColumnDef::new("sf_type", DataType::Int, false),
            ColumnDef::new("is_active", DataType::Int, false),
            ColumnDef::new("error_cntrl", DataType::Int, false),
            ColumnDef::new("data_a", DataType::Int, false),
            ColumnDef::new("data_b", DataType::Str, false),
        ],
        vec!["s_id", "sf_type"],
    )
    .expect("static schema")
    .with_index("idx_special_facility_active", vec!["is_active"], false)
    .expect("static schema")
    .with_foreign_key(
        vec!["s_id", "sf_type"],
        "SUBSCRIBER",
        vec!["s_id", "sf_type"],
    )
    .expect("static schema");

    let call_forwarding = TableSchema::new(
        "CALL_FORWARDING",
        vec![
            ColumnDef::new("s_id", DataType::Int, false),
            ColumnDef::new("sf_type", DataType::Int, false),
            ColumnDef::new("start_time", DataType::Int, false),
            ColumnDef::new("end_time", DataType::Int, false),
            ColumnDef::new("numberx", DataType::Str, false),
        ],
        vec!["s_id", "sf_type", "start_time"],
    )
    .expect("static schema")
    .with_index("idx_call_forwarding_start", vec!["start_time"], false)
    .expect("static schema")
    .with_foreign_key(
        vec!["s_id", "sf_type"],
        "SPECIAL_FACILITY",
        vec!["s_id", "sf_type"],
    )
    .expect("static schema");

    vec![subscriber, access_info, special_facility, call_forwarding]
}

/// Run-time state shared by the tabenchmark transactions.
#[derive(Debug)]
pub struct TabenchmarkState {
    /// Number of subscriber ids loaded.
    pub subscribers: AtomicI64,
}

impl TabenchmarkState {
    fn new() -> Arc<TabenchmarkState> {
        Arc::new(TabenchmarkState {
            subscribers: AtomicI64::new(SUBSCRIBERS_PER_SCALE),
        })
    }

    fn subscriber_count(&self) -> i64 {
        self.subscribers.load(Ordering::Relaxed).max(1)
    }

    fn rand_subscriber(&self, rng: &mut StdRng) -> i64 {
        common::nurand(rng, 65535, 1, self.subscriber_count())
    }
}

fn as_int(value: &Value) -> i64 {
    value.as_int().unwrap_or(0)
}

#[allow(dead_code)]
fn require(row: Option<Row>, table: &str, key: &Key) -> EngineResult<Row> {
    row.ok_or_else(|| {
        EngineError::Storage(StorageError::KeyNotFound {
            table: table.to_string(),
            key: key.to_string(),
        })
    })
}

/// The slow lookup of the paper: find a subscriber's rows by `sub_nbr`, which
/// has no index, so the statement degenerates into a scan.
fn lookup_by_sub_nbr(s: &Session, txn: &mut TxnHandle, sub_nbr: &str) -> EngineResult<Vec<Row>> {
    s.select_eq(
        txn,
        "SUBSCRIBER",
        &["sub_nbr"],
        &[Value::Str(sub_nbr.to_string())],
    )
}

// ---------------------------------------------------------------------------
// Online transactions
// ---------------------------------------------------------------------------

macro_rules! online_txn {
    ($name:ident, $label:literal, $read_only:expr, |$state:ident, $s:ident, $txn:ident, $rng:ident| $body:block) => {
        /// TATP-derived online transaction.
        pub struct $name {
            state: Arc<TabenchmarkState>,
        }

        impl $name {
            /// Create the template.
            pub fn new(state: Arc<TabenchmarkState>) -> Self {
                Self { state }
            }
        }

        impl OnlineTransaction for $name {
            fn name(&self) -> &str {
                $label
            }

            fn is_read_only(&self) -> bool {
                $read_only
            }

            fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
                let $state = &self.state;
                let $rng = rng;
                session.run_transaction(WorkClass::Oltp, RETRIES, |$s, $txn| $body)
            }
        }
    };
}

online_txn!(
    GetSubscriberData,
    "GetSubscriberData",
    true,
    |state, s, txn, rng| {
        let s_id = state.rand_subscriber(rng);
        // Prefix lookup on the composite primary key — served by the index.
        let _rows = s.select_eq(txn, "SUBSCRIBER", &["s_id"], &[Value::Int(s_id)])?;
        Ok(())
    }
);

online_txn!(
    GetAccessData,
    "GetAccessData",
    true,
    |state, s, txn, rng| {
        let s_id = state.rand_subscriber(rng);
        let ai_type = common::uniform(rng, 1, 4);
        let _row = s.read(txn, "ACCESS_INFO", &Key::ints(&[s_id, ai_type]))?;
        Ok(())
    }
);

online_txn!(
    GetNewDestination,
    "GetNewDestination",
    true,
    |state, s, txn, rng| {
        let s_id = state.rand_subscriber(rng);
        let sf_type = common::uniform(rng, 1, 4);
        let facility = s.read(txn, "SPECIAL_FACILITY", &Key::ints(&[s_id, sf_type]))?;
        if facility
            .map(|f| as_int(&f[col::sf::IS_ACTIVE]) == 1)
            .unwrap_or(false)
        {
            let _forwards = s.scan_prefix(txn, "CALL_FORWARDING", &Key::ints(&[s_id, sf_type]))?;
        }
        Ok(())
    }
);

online_txn!(
    UpdateSubscriberData,
    "UpdateSubscriberData",
    false,
    |state, s, txn, rng| {
        let s_id = state.rand_subscriber(rng);
        let sf_type = common::uniform(rng, 1, 4);
        let sub_key = Key::ints(&[s_id, 1]);
        if let Some(mut subscriber) = s.read(txn, "SUBSCRIBER", &sub_key)? {
            subscriber.set(col::sub::BIT_1, Value::Int(common::uniform(rng, 0, 1)));
            s.update(txn, "SUBSCRIBER", &sub_key, subscriber)?;
        }
        let sf_key = Key::ints(&[s_id, sf_type]);
        if let Some(mut facility) = s.read(txn, "SPECIAL_FACILITY", &sf_key)? {
            facility.set(col::sf::DATA_A, Value::Int(common::uniform(rng, 0, 255)));
            s.update(txn, "SPECIAL_FACILITY", &sf_key, facility)?;
        }
        Ok(())
    }
);

online_txn!(
    UpdateLocation,
    "UpdateLocation",
    false,
    |state, s, txn, rng| {
        let s_id = state.rand_subscriber(rng);
        let location = common::uniform(rng, 1, 1 << 16);
        // Lookup by sub_nbr — the un-indexed column: full scan (the slow query).
        let rows = lookup_by_sub_nbr(s, txn, &common::sub_nbr(s_id))?;
        for mut row in rows {
            let key = Key::ints(&[
                as_int(&row[col::sub::S_ID]),
                as_int(&row[col::sub::SF_TYPE]),
            ]);
            row.set(col::sub::VLR_LOCATION, Value::Int(location));
            s.update(txn, "SUBSCRIBER", &key, row)?;
        }
        Ok(())
    }
);

online_txn!(
    InsertCallForwarding,
    "InsertCallForwarding",
    false,
    |state, s, txn, rng| {
        let s_id = state.rand_subscriber(rng);
        let start_time = *common::pick(rng, &[0i64, 8, 16]);
        let end_time = start_time + common::uniform(rng, 1, 8);
        // The slow sub_nbr lookup precedes the insert, as in TATP.
        let rows = lookup_by_sub_nbr(s, txn, &common::sub_nbr(s_id))?;
        let Some(subscriber) = rows.first() else {
            return Ok(());
        };
        let sf_type = as_int(&subscriber[col::sub::SF_TYPE]);
        let facilities = s.scan_prefix(txn, "SPECIAL_FACILITY", &Key::int(s_id))?;
        if facilities.is_empty() {
            return Ok(());
        }
        let key = Key::ints(&[s_id, sf_type, start_time]);
        if s.read(txn, "CALL_FORWARDING", &key)?.is_none() {
            s.insert(
                txn,
                "CALL_FORWARDING",
                Row::new(vec![
                    Value::Int(s_id),
                    Value::Int(sf_type),
                    Value::Int(start_time),
                    Value::Int(end_time),
                    Value::Str(common::rand_numeric_string(rng, 15)),
                ]),
            )?;
        }
        Ok(())
    }
);

online_txn!(
    DeleteCallForwarding,
    "DeleteCallForwarding",
    false,
    |state, s, txn, rng| {
        let s_id = state.rand_subscriber(rng);
        let start_time = *common::pick(rng, &[0i64, 8, 16]);
        // "explain SELECT s_id FROM SUBSCRIBER WHERE sub_nbr = ?" — the slow query
        // highlighted in §VI-C1.
        let rows = lookup_by_sub_nbr(s, txn, &common::sub_nbr(s_id))?;
        let Some(subscriber) = rows.first() else {
            return Ok(());
        };
        let sf_type = as_int(&subscriber[col::sub::SF_TYPE]);
        let key = Key::ints(&[s_id, sf_type, start_time]);
        if s.read(txn, "CALL_FORWARDING", &key)?.is_some() {
            s.delete(txn, "CALL_FORWARDING", &key)?;
        }
        Ok(())
    }
);

// ---------------------------------------------------------------------------
// Hybrid transactions
// ---------------------------------------------------------------------------

macro_rules! hybrid_txn {
    ($name:ident, $label:literal, $read_only:expr, |$state:ident, $s:ident, $txn:ident, $rng:ident| $body:block) => {
        /// Tabenchmark hybrid transaction.
        pub struct $name {
            state: Arc<TabenchmarkState>,
        }

        impl $name {
            /// Create the template.
            pub fn new(state: Arc<TabenchmarkState>) -> Self {
                Self { state }
            }
        }

        impl HybridTransaction for $name {
            fn name(&self) -> &str {
                $label
            }

            fn is_read_only(&self) -> bool {
                $read_only
            }

            fn execute(&self, session: &Session, rng: &mut StdRng) -> EngineResult<()> {
                let $state = &self.state;
                let $rng = rng;
                session.run_transaction(WorkClass::Hybrid, RETRIES, |$s, $txn| $body)
            }
        }
    };
}

hybrid_txn!(
    UpdateLocationWithLoad,
    "X1-UpdateLocationWithLoad",
    false,
    |state, s, txn, rng| {
        // Real-time query: how loaded is each VLR location right now?
        let plan = QueryBuilder::scan("SUBSCRIBER")
            .aggregate(
                vec![col::sub::VLR_LOCATION],
                vec![AggSpec::new(AggFunc::Count, col::sub::S_ID)],
            )
            .sort(vec![SortKey::desc(1)])
            .limit(5)
            .build();
        let _load = s.query_in_txn(txn, &plan)?;
        let s_id = state.rand_subscriber(rng);
        let location = common::uniform(rng, 1, 1 << 16);
        // As in TATP's UpdateLocation, the subscriber is addressed by sub_nbr —
        // the un-indexed column — so this is the paper's slow composite-key path.
        let rows = lookup_by_sub_nbr(s, txn, &common::sub_nbr(s_id))?;
        for mut row in rows {
            let key = Key::ints(&[
                as_int(&row[col::sub::S_ID]),
                as_int(&row[col::sub::SF_TYPE]),
            ]);
            row.set(col::sub::VLR_LOCATION, Value::Int(location));
            s.update(txn, "SUBSCRIBER", &key, row)?;
        }
        Ok(())
    }
);

hybrid_txn!(
    InsertForwardingAtPeak,
    "X2-InsertForwardingAtPeak",
    false,
    |state, s, txn, rng| {
        // Real-time query: the Start Time Query (Q3) — the average start time of
        // existing call forwardings, used for load forecasting.
        let plan = QueryBuilder::scan("CALL_FORWARDING")
            .aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Avg, col::cf::START_TIME),
                    AggSpec::new(AggFunc::Count, col::cf::S_ID),
                ],
            )
            .build();
        let _peak = s.query_in_txn(txn, &plan)?;
        let s_id = state.rand_subscriber(rng);
        let start_time = *common::pick(rng, &[0i64, 8, 16]);
        let facilities = s.scan_prefix(txn, "SPECIAL_FACILITY", &Key::int(s_id))?;
        let Some(facility) = facilities.first() else {
            return Ok(());
        };
        let sf_type = as_int(&facility[col::sf::SF_TYPE]);
        let key = Key::ints(&[s_id, sf_type, start_time]);
        if s.read(txn, "CALL_FORWARDING", &key)?.is_none() {
            s.insert(
                txn,
                "CALL_FORWARDING",
                Row::new(vec![
                    Value::Int(s_id),
                    Value::Int(sf_type),
                    Value::Int(start_time),
                    Value::Int(start_time + 8),
                    Value::Str(common::rand_numeric_string(rng, 15)),
                ]),
            )?;
        }
        Ok(())
    }
);

hybrid_txn!(
    DeleteForwardingWithUsage,
    "X3-DeleteForwardingWithUsage",
    false,
    |state, s, txn, rng| {
        let s_id = state.rand_subscriber(rng);
        // Real-time query: the subscriber's current forwarding usage.
        let plan = QueryBuilder::scan_where("CALL_FORWARDING", qcol(col::cf::S_ID).eq(lit(s_id)))
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Count, col::cf::S_ID)])
            .build();
        let _usage = s.query_in_txn(txn, &plan)?;
        // TATP's DeleteCallForwarding resolves the subscriber via sub_nbr first —
        // the slow query of §VI-C1.
        let _subscriber = lookup_by_sub_nbr(s, txn, &common::sub_nbr(s_id))?;
        let start_time = *common::pick(rng, &[0i64, 8, 16]);
        let forwards = s.scan_prefix(txn, "CALL_FORWARDING", &Key::int(s_id))?;
        if let Some(target) = forwards
            .iter()
            .find(|f| as_int(&f[col::cf::START_TIME]) == start_time)
        {
            let key = Key::ints(&[s_id, as_int(&target[col::cf::SF_TYPE]), start_time]);
            s.delete(txn, "CALL_FORWARDING", &key)?;
        }
        Ok(())
    }
);

hybrid_txn!(
    UpdateProfileWithAccessStats,
    "X4-UpdateProfileWithAccessStats",
    false,
    |state, s, txn, rng| {
        // Real-time query: distribution of access types across the HLR.
        let plan = QueryBuilder::scan("ACCESS_INFO")
            .aggregate(
                vec![col::ai::AI_TYPE],
                vec![
                    AggSpec::new(AggFunc::Count, col::ai::S_ID),
                    AggSpec::new(AggFunc::Avg, col::ai::DATA1),
                ],
            )
            .sort(vec![SortKey::asc(0)])
            .build();
        let _stats = s.query_in_txn(txn, &plan)?;
        let s_id = state.rand_subscriber(rng);
        let key = Key::ints(&[s_id, 1]);
        if let Some(mut subscriber) = s.read(txn, "SUBSCRIBER", &key)? {
            subscriber.set(col::sub::BIT_1, Value::Int(common::uniform(rng, 0, 1)));
            s.update(txn, "SUBSCRIBER", &key, subscriber)?;
        }
        Ok(())
    }
);

hybrid_txn!(
    FuzzySubscriberSearch,
    "X5-FuzzySubscriberSearch",
    true,
    |state, s, txn, rng| {
        // The Fuzzy Search Transaction (X6 in the paper): select subscriber ids
        // whose user data matches a fuzzy sub-string criterion.
        let fragment = format!("{:03}", common::uniform(rng, 0, 999));
        let plan = QueryBuilder::scan_where(
            "SUBSCRIBER",
            qcol(col::sub::SUB_NBR).like(format!("%{fragment}%")),
        )
        .project(vec![qcol(col::sub::S_ID), qcol(col::sub::SUB_NBR)])
        .limit(50)
        .build();
        let matches = s.query_in_txn(txn, &plan)?;
        // Follow up with the online lookup for one matching subscriber.
        let s_id = matches
            .rows
            .first()
            .map(|r| as_int(&r[0]))
            .unwrap_or_else(|| state.subscriber_count());
        let _rows = s.select_eq(txn, "SUBSCRIBER", &["s_id"], &[Value::Int(s_id)])?;
        Ok(())
    }
);

hybrid_txn!(
    DestinationWithActiveStats,
    "X6-DestinationWithActiveStats",
    true,
    |state, s, txn, rng| {
        // Real-time query: share of active special facilities.
        let plan = QueryBuilder::scan("SPECIAL_FACILITY")
            .aggregate(
                vec![col::sf::IS_ACTIVE],
                vec![AggSpec::new(AggFunc::Count, col::sf::S_ID)],
            )
            .build();
        let _active = s.query_in_txn(txn, &plan)?;
        let s_id = state.rand_subscriber(rng);
        let sf_type = common::uniform(rng, 1, 4);
        if let Some(facility) = s.read(txn, "SPECIAL_FACILITY", &Key::ints(&[s_id, sf_type]))? {
            if as_int(&facility[col::sf::IS_ACTIVE]) == 1 {
                let _forwards =
                    s.scan_prefix(txn, "CALL_FORWARDING", &Key::ints(&[s_id, sf_type]))?;
            }
        }
        Ok(())
    }
);

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// The tabenchmark workload.
pub struct Tabenchmark {
    state: Arc<TabenchmarkState>,
}

impl Tabenchmark {
    /// Create the workload.
    pub fn new() -> Tabenchmark {
        Tabenchmark {
            state: TabenchmarkState::new(),
        }
    }
}

impl Default for Tabenchmark {
    fn default() -> Self {
        Tabenchmark::new()
    }
}

impl Workload for Tabenchmark {
    fn name(&self) -> &str {
        "tabenchmark"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::DomainSpecific
    }

    fn create_schema(&self, db: &Arc<HybridDatabase>) -> EngineResult<()> {
        for schema in schemas() {
            db.create_table(schema)?;
        }
        Ok(())
    }

    fn load(&self, db: &Arc<HybridDatabase>, scale_factor: u32, seed: u64) -> EngineResult<()> {
        let subscribers = i64::from(scale_factor.max(1)) * SUBSCRIBERS_PER_SCALE;
        self.state.subscribers.store(subscribers, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(seed);
        for s_id in 1..=subscribers {
            let sf_types = common::uniform(&mut rng, 1, 4);
            for sf_type in 1..=sf_types {
                let mut values = vec![
                    Value::Int(s_id),
                    Value::Int(sf_type),
                    Value::Str(common::sub_nbr(s_id)),
                ];
                for _ in 0..10 {
                    values.push(Value::Int(common::uniform(&mut rng, 0, 1)));
                }
                for _ in 0..10 {
                    values.push(Value::Int(common::uniform(&mut rng, 0, 15)));
                }
                for _ in 0..9 {
                    values.push(Value::Int(common::uniform(&mut rng, 0, 255)));
                }
                values.push(Value::Int(common::uniform(&mut rng, 1, 1 << 16)));
                values.push(Value::Int(common::uniform(&mut rng, 1, 1 << 16)));
                db.load_row("SUBSCRIBER", Row::new(values))?;

                db.load_row(
                    "SPECIAL_FACILITY",
                    Row::new(vec![
                        Value::Int(s_id),
                        Value::Int(sf_type),
                        Value::Int(i64::from(common::uniform(&mut rng, 0, 99) < 85)),
                        Value::Int(common::uniform(&mut rng, 0, 255)),
                        Value::Int(common::uniform(&mut rng, 0, 255)),
                        Value::Str(common::rand_string(&mut rng, 5, 5)),
                    ]),
                )?;
                let forwards = common::uniform(&mut rng, 0, 3);
                for f in 0..forwards {
                    let start_time = f * 8;
                    db.load_row(
                        "CALL_FORWARDING",
                        Row::new(vec![
                            Value::Int(s_id),
                            Value::Int(sf_type),
                            Value::Int(start_time),
                            Value::Int(start_time + common::uniform(&mut rng, 1, 8)),
                            Value::Str(common::rand_numeric_string(&mut rng, 15)),
                        ]),
                    )?;
                }
            }
            let ai_types = common::uniform(&mut rng, 1, 4);
            for ai_type in 1..=ai_types {
                db.load_row(
                    "ACCESS_INFO",
                    Row::new(vec![
                        Value::Int(s_id),
                        Value::Int(ai_type),
                        Value::Int(common::uniform(&mut rng, 0, 255)),
                        Value::Int(common::uniform(&mut rng, 0, 255)),
                        Value::Str(common::rand_string(&mut rng, 3, 3)),
                        Value::Str(common::rand_string(&mut rng, 5, 5)),
                    ]),
                )?;
            }
        }
        Ok(())
    }

    fn online_transactions(&self) -> Vec<Arc<dyn OnlineTransaction>> {
        vec![
            Arc::new(GetSubscriberData::new(Arc::clone(&self.state))),
            Arc::new(GetAccessData::new(Arc::clone(&self.state))),
            Arc::new(GetNewDestination::new(Arc::clone(&self.state))),
            Arc::new(UpdateSubscriberData::new(Arc::clone(&self.state))),
            Arc::new(UpdateLocation::new(Arc::clone(&self.state))),
            Arc::new(InsertCallForwarding::new(Arc::clone(&self.state))),
            Arc::new(DeleteCallForwarding::new(Arc::clone(&self.state))),
        ]
    }

    fn analytical_queries(&self) -> Vec<Arc<dyn AnalyticalQuery>> {
        vec![
            Arc::new(PlannedQuery::new(
                "Q1-SubscriberLocationDistribution",
                vec!["SUBSCRIBER"],
                |_rng| {
                    QueryBuilder::scan("SUBSCRIBER")
                        .aggregate(
                            vec![col::sub::VLR_LOCATION],
                            vec![AggSpec::new(AggFunc::Count, col::sub::S_ID)],
                        )
                        .sort(vec![SortKey::desc(1)])
                        .limit(20)
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "Q2-ActiveFacilitiesByType",
                vec!["SPECIAL_FACILITY"],
                |_rng| {
                    QueryBuilder::scan_where(
                        "SPECIAL_FACILITY",
                        qcol(col::sf::IS_ACTIVE).eq(lit(1)),
                    )
                    .aggregate(
                        vec![col::sf::SF_TYPE],
                        vec![
                            AggSpec::new(AggFunc::Count, col::sf::S_ID),
                            AggSpec::new(AggFunc::Avg, col::sf::DATA_A),
                        ],
                    )
                    .sort(vec![SortKey::asc(0)])
                    .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "Q3-StartTimeQuery",
                vec!["CALL_FORWARDING"],
                |_rng| {
                    // "calculates the average of the starting time of the call
                    // forwarding ... essential for load forecasting" (§IV-B3).
                    QueryBuilder::scan("CALL_FORWARDING")
                        .aggregate(
                            vec![],
                            vec![
                                AggSpec::new(AggFunc::Avg, col::cf::START_TIME),
                                AggSpec::new(AggFunc::Min, col::cf::START_TIME),
                                AggSpec::new(AggFunc::Max, col::cf::END_TIME),
                                AggSpec::new(AggFunc::Count, col::cf::S_ID),
                            ],
                        )
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "Q4-ForwardingHeavySubscribers",
                vec!["CALL_FORWARDING"],
                |_rng| {
                    QueryBuilder::scan("CALL_FORWARDING")
                        .aggregate(
                            vec![col::cf::S_ID],
                            vec![AggSpec::new(AggFunc::Count, col::cf::SF_TYPE)],
                        )
                        .sort(vec![SortKey::desc(1)])
                        .limit(10)
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "Q5-AccessTypeProfile",
                vec!["ACCESS_INFO"],
                |_rng| {
                    QueryBuilder::scan("ACCESS_INFO")
                        .aggregate(
                            vec![col::ai::AI_TYPE],
                            vec![
                                AggSpec::new(AggFunc::Count, col::ai::S_ID),
                                AggSpec::new(AggFunc::Avg, col::ai::DATA1),
                                AggSpec::new(AggFunc::Avg, col::ai::DATA2),
                            ],
                        )
                        .sort(vec![SortKey::asc(0)])
                        .build()
                },
            )),
        ]
    }

    fn hybrid_transactions(&self) -> Vec<Arc<dyn HybridTransaction>> {
        vec![
            Arc::new(UpdateLocationWithLoad::new(Arc::clone(&self.state))),
            Arc::new(InsertForwardingAtPeak::new(Arc::clone(&self.state))),
            Arc::new(DeleteForwardingWithUsage::new(Arc::clone(&self.state))),
            Arc::new(UpdateProfileWithAccessStats::new(Arc::clone(&self.state))),
            Arc::new(FuzzySubscriberSearch::new(Arc::clone(&self.state))),
            Arc::new(DestinationWithActiveStats::new(Arc::clone(&self.state))),
        ]
    }

    fn default_online_mix(&self) -> TransactionMix {
        // The TATP mix: 80 % read-only.
        TransactionMix::new(vec![
            ("GetSubscriberData", 35),
            ("GetAccessData", 35),
            ("GetNewDestination", 10),
            ("UpdateSubscriberData", 2),
            ("UpdateLocation", 14),
            ("InsertCallForwarding", 2),
            ("DeleteCallForwarding", 2),
        ])
    }

    fn default_hybrid_mix(&self) -> TransactionMix {
        // 40 % read-only (X5 + X6).
        TransactionMix::new(vec![
            ("X1-UpdateLocationWithLoad", 15),
            ("X2-InsertForwardingAtPeak", 15),
            ("X3-DeleteForwardingWithUsage", 15),
            ("X4-UpdateProfileWithAccessStats", 15),
            ("X5-FuzzySubscriberSearch", 20),
            ("X6-DestinationWithActiveStats", 20),
        ])
    }

    fn features(&self) -> WorkloadFeatures {
        let schemas = schemas();
        WorkloadFeatures {
            name: self.name().to_string(),
            table_names: schemas.iter().map(|s| s.name().to_string()).collect(),
            columns: schemas.iter().map(|s| s.column_count()).sum(),
            indexes: schemas.iter().map(|s| s.indexes().len()).sum(),
            oltp_transactions: 7,
            read_only_oltp_percent: 80.0,
            analytical_queries: 5,
            hybrid_transactions: 6,
            read_only_hybrid_percent: 40.0,
            has_online_transaction: true,
            has_analytical_query: true,
            has_hybrid_transaction: true,
            has_real_time_query: true,
            semantically_consistent_schema: true,
            general_benchmark: false,
            domain_specific_benchmark: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_engine::EngineConfig;
    use olxpbench_core::check_semantic_consistency;

    fn loaded_db() -> (Arc<HybridDatabase>, Tabenchmark) {
        let db = HybridDatabase::new(EngineConfig::single_engine().with_time_scale(0.0)).unwrap();
        let workload = Tabenchmark::new();
        workload.create_schema(&db).unwrap();
        workload.load(&db, 1, 5).unwrap();
        db.finish_load().unwrap();
        (db, workload)
    }

    #[test]
    fn features_match_table2() {
        let features = Tabenchmark::new().features();
        assert_eq!(features.tables(), 4);
        assert_eq!(features.columns, 51);
        assert_eq!(features.indexes, 5);
        assert_eq!(features.oltp_transactions, 7);
        assert_eq!(features.analytical_queries, 5);
        assert_eq!(features.hybrid_transactions, 6);
        assert!((features.read_only_oltp_percent - 80.0).abs() < f64::EPSILON);
        assert!((features.read_only_hybrid_percent - 40.0).abs() < f64::EPSILON);
    }

    #[test]
    fn subscriber_has_composite_primary_key_and_no_sub_nbr_index() {
        let schemas = schemas();
        let subscriber = &schemas[0];
        assert_eq!(subscriber.primary_key().len(), 2);
        let sub_nbr_pos = subscriber.column_index("sub_nbr").unwrap();
        assert!(
            !subscriber.has_index_prefix(&[sub_nbr_pos]),
            "sub_nbr lookups must degenerate into scans (the paper's slow query)"
        );
    }

    #[test]
    fn schema_is_semantically_consistent() {
        let report = check_semantic_consistency(&Tabenchmark::new());
        assert!(report.is_semantically_consistent());
    }

    #[test]
    fn read_only_share_of_online_mix_is_80_percent() {
        let w = Tabenchmark::new();
        let mix = w.default_online_mix();
        let ro: u32 = w
            .online_transactions()
            .iter()
            .filter(|t| t.is_read_only())
            .map(|t| mix.weight_of(t.name()))
            .sum();
        assert_eq!(ro * 100 / mix.total_weight(), 80);
    }

    #[test]
    fn all_transactions_and_queries_execute() {
        let (db, workload) = loaded_db();
        let session = db.session();
        let mut rng = StdRng::seed_from_u64(31);
        for txn in workload.online_transactions() {
            txn.execute(&session, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", txn.name()));
        }
        for query in workload.analytical_queries() {
            query
                .execute(&session, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", query.name()));
        }
        for hybrid in workload.hybrid_transactions() {
            hybrid
                .execute(&session, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", hybrid.name()));
        }
        assert!(db.metrics_snapshot().commits >= 13);
    }
}

//! Shared value generators used by the workload loaders and transactions.
//!
//! These follow the conventions of the source benchmarks: TPC-C's NURand
//! non-uniform distribution and last-name syllable table, TATP's subscriber
//! number formatting, and SmallBank's account naming.

use olxp_query::Plan;
use olxpbench_core::AnalyticalQuery;
use rand::rngs::StdRng;
use rand::Rng;

/// An analytical-query template defined by a name, the tables it reads and a
/// plan-builder function.  All OLxPBench suites define their analytical
/// queries this way.
pub struct PlannedQuery {
    name: &'static str,
    tables: Vec<&'static str>,
    build: fn(&mut StdRng) -> Plan,
}

impl PlannedQuery {
    /// Create a query template.
    pub fn new(
        name: &'static str,
        tables: Vec<&'static str>,
        build: fn(&mut StdRng) -> Plan,
    ) -> PlannedQuery {
        PlannedQuery {
            name,
            tables,
            build,
        }
    }
}

impl AnalyticalQuery for PlannedQuery {
    fn name(&self) -> &str {
        self.name
    }

    fn tables(&self) -> Vec<String> {
        self.tables.iter().map(|t| t.to_string()).collect()
    }

    fn plan(&self, rng: &mut StdRng) -> Plan {
        (self.build)(rng)
    }
}

/// TPC-C last-name syllables.
const NAME_SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Uniform integer in `[lo, hi]` (inclusive).
pub fn uniform(rng: &mut StdRng, lo: i64, hi: i64) -> i64 {
    if lo >= hi {
        return lo;
    }
    rng.gen_range(lo..=hi)
}

/// TPC-C NURand(A, x, y) non-uniform distribution.
pub fn nurand(rng: &mut StdRng, a: i64, x: i64, y: i64) -> i64 {
    let c = a / 2; // fixed run constant; any value in [0, A] is allowed
    (((uniform(rng, 0, a) | uniform(rng, x, y)) + c) % (y - x + 1)) + x
}

/// Random alphanumeric string with length in `[min_len, max_len]`.
pub fn rand_string(rng: &mut StdRng, min_len: usize, max_len: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    let len = uniform(rng, min_len as i64, max_len as i64) as usize;
    (0..len)
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
        .collect()
}

/// Random numeric string of exactly `len` digits.
pub fn rand_numeric_string(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| char::from(b'0' + rng.gen_range(0..10u8)))
        .collect()
}

/// Random monetary amount in `[lo, hi]` dollars, returned in cents.
pub fn rand_amount_cents(rng: &mut StdRng, lo: f64, hi: f64) -> i64 {
    let cents_lo = (lo * 100.0).round() as i64;
    let cents_hi = (hi * 100.0).round() as i64;
    uniform(rng, cents_lo, cents_hi)
}

/// TPC-C customer last name for a number in `[0, 999]`.
pub fn last_name(num: i64) -> String {
    let num = num.clamp(0, 999) as usize;
    format!(
        "{}{}{}",
        NAME_SYLLABLES[num / 100],
        NAME_SYLLABLES[(num / 10) % 10],
        NAME_SYLLABLES[num % 10]
    )
}

/// A TPC-C non-uniform random customer last name (for lookups).
pub fn rand_last_name(rng: &mut StdRng) -> String {
    last_name(nurand(rng, 255, 0, 999))
}

/// TATP subscriber number: the subscriber id zero-padded to 15 digits.
pub fn sub_nbr(s_id: i64) -> String {
    format!("{s_id:015}")
}

/// Logical timestamp for generated rows: a deterministic microsecond counter
/// derived from the row position so loads are reproducible.
pub fn synthetic_timestamp(position: i64) -> i64 {
    1_600_000_000_000_000 + position * 1_000
}

/// Pick one element of a slice uniformly.
pub fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = uniform(&mut r, 5, 10);
            assert!((5..=10).contains(&v));
        }
        assert_eq!(uniform(&mut r, 3, 3), 3);
        assert_eq!(uniform(&mut r, 9, 3), 9, "degenerate range returns lo");
    }

    #[test]
    fn nurand_stays_in_range_and_is_nonuniform() {
        let mut r = rng();
        let mut low_half = 0;
        for _ in 0..5000 {
            let v = nurand(&mut r, 255, 1, 1000);
            assert!((1..=1000).contains(&v));
            if v <= 500 {
                low_half += 1;
            }
        }
        // NURand is skewed, so the split is not exactly 50/50; just check the
        // values cover both halves.
        assert!(low_half > 500 && low_half < 4500);
    }

    #[test]
    fn strings_have_requested_lengths() {
        let mut r = rng();
        for _ in 0..100 {
            let s = rand_string(&mut r, 8, 16);
            assert!((8..=16).contains(&s.len()));
        }
        assert_eq!(rand_numeric_string(&mut r, 16).len(), 16);
        assert!(rand_numeric_string(&mut r, 4)
            .chars()
            .all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn last_names_follow_syllable_table() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
        assert_eq!(last_name(12345), "EINGEINGEING", "out of range clamps");
    }

    #[test]
    fn sub_nbr_is_fifteen_digits() {
        assert_eq!(sub_nbr(42), "000000000000042");
        assert_eq!(sub_nbr(42).len(), 15);
    }

    #[test]
    fn amount_in_cents_within_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let cents = rand_amount_cents(&mut r, 1.0, 5.0);
            assert!((100..=500).contains(&cents));
        }
    }

    #[test]
    fn synthetic_timestamps_are_monotonic() {
        assert!(synthetic_timestamp(10) > synthetic_timestamp(9));
    }
}

//! CH-benCHmark-style stitch-schema baseline.
//!
//! The paper compares OLxPBench's semantically consistent schema against the
//! "stitch schema" of CH-benCHmark (§V-B1): the nine TPC-C tables plus the
//! TPC-H dimension tables SUPPLIER, NATION and REGION.  The online
//! transactions are exactly the TPC-C transactions (re-used from the
//! subenchmark), while the analytical queries mostly read the dimension tables
//! that no online transaction ever updates.  As a result the contention
//! between OLTP and OLAP is artificially low — which is precisely the
//! misleading behaviour Figures 3 and 4 expose.
//!
//! The baseline intentionally provides **no** hybrid transactions and no
//! real-time queries (Table I).

use crate::common::{self, PlannedQuery};
use crate::subenchmark::{oltp, schema as tpcc_schema};
use olxp_engine::{EngineResult, HybridDatabase};
use olxp_query::{col as qcol, lit, AggFunc, AggSpec, JoinKind, QueryBuilder, SortKey};
use olxp_storage::{ColumnDef, DataType, Row, TableSchema, Value};
use olxpbench_core::{
    AnalyticalQuery, HybridTransaction, OnlineTransaction, TransactionMix, Workload,
    WorkloadFeatures, WorkloadKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Suppliers loaded into the SUPPLIER dimension table.
pub const SUPPLIER_COUNT: i64 = 100;
/// Nations loaded into the NATION dimension table.
pub const NATION_COUNT: i64 = 25;
/// Regions loaded into the REGION dimension table.
pub const REGION_COUNT: i64 = 5;

/// Column positions of the dimension tables.
pub mod col {
    /// SUPPLIER columns.
    pub mod su {
        pub const SUPPKEY: usize = 0;
        pub const NATIONKEY: usize = 3;
        pub const ACCTBAL: usize = 5;
    }
    /// NATION columns.
    pub mod n {
        pub const NATIONKEY: usize = 0;
        pub const REGIONKEY: usize = 2;
    }
    /// REGION columns.
    pub mod r {
        pub const REGIONKEY: usize = 0;
    }
}

/// The three TPC-H dimension tables that make the schema a stitch schema.
pub fn dimension_schemas() -> Vec<TableSchema> {
    let supplier = TableSchema::new(
        "SUPPLIER",
        vec![
            ColumnDef::new("su_suppkey", DataType::Int, false),
            ColumnDef::new("su_name", DataType::Str, false),
            ColumnDef::new("su_address", DataType::Str, false),
            ColumnDef::new("su_nationkey", DataType::Int, false),
            ColumnDef::new("su_phone", DataType::Str, false),
            ColumnDef::new("su_acctbal", DataType::Decimal, false),
            ColumnDef::new("su_comment", DataType::Str, false),
        ],
        vec!["su_suppkey"],
    )
    .expect("static schema");
    let nation = TableSchema::new(
        "NATION",
        vec![
            ColumnDef::new("n_nationkey", DataType::Int, false),
            ColumnDef::new("n_name", DataType::Str, false),
            ColumnDef::new("n_regionkey", DataType::Int, false),
            ColumnDef::new("n_comment", DataType::Str, false),
        ],
        vec!["n_nationkey"],
    )
    .expect("static schema");
    let region = TableSchema::new(
        "REGION",
        vec![
            ColumnDef::new("r_regionkey", DataType::Int, false),
            ColumnDef::new("r_name", DataType::Str, false),
            ColumnDef::new("r_comment", DataType::Str, false),
        ],
        vec!["r_regionkey"],
    )
    .expect("static schema");
    vec![supplier, nation, region]
}

/// The CH-benCHmark baseline workload.
pub struct ChBenchmark {
    state: Arc<oltp::SubenchmarkState>,
}

impl ChBenchmark {
    /// Create the workload.
    pub fn new() -> ChBenchmark {
        ChBenchmark {
            state: oltp::SubenchmarkState::new(),
        }
    }
}

impl Default for ChBenchmark {
    fn default() -> Self {
        ChBenchmark::new()
    }
}

impl Workload for ChBenchmark {
    fn name(&self) -> &str {
        "chbenchmark"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::General
    }

    fn create_schema(&self, db: &Arc<HybridDatabase>) -> EngineResult<()> {
        tpcc_schema::create_schema(db)?;
        for schema in dimension_schemas() {
            db.create_table(schema)?;
        }
        Ok(())
    }

    fn load(&self, db: &Arc<HybridDatabase>, scale_factor: u32, seed: u64) -> EngineResult<()> {
        self.state
            .warehouses
            .store(i64::from(scale_factor.max(1)), Ordering::Relaxed);
        tpcc_schema::load(db, scale_factor, seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);
        for r in 0..REGION_COUNT {
            db.load_row(
                "REGION",
                Row::new(vec![
                    Value::Int(r),
                    Value::Str(format!("region-{r}")),
                    Value::Str(common::rand_string(&mut rng, 16, 32)),
                ]),
            )?;
        }
        for n in 0..NATION_COUNT {
            db.load_row(
                "NATION",
                Row::new(vec![
                    Value::Int(n),
                    Value::Str(format!("nation-{n:02}")),
                    Value::Int(n % REGION_COUNT),
                    Value::Str(common::rand_string(&mut rng, 16, 32)),
                ]),
            )?;
        }
        for s in 1..=SUPPLIER_COUNT {
            db.load_row(
                "SUPPLIER",
                Row::new(vec![
                    Value::Int(s),
                    Value::Str(format!("supplier-{s:04}")),
                    Value::Str(common::rand_string(&mut rng, 12, 24)),
                    Value::Int(s % NATION_COUNT),
                    Value::Str(common::rand_numeric_string(&mut rng, 12)),
                    Value::Decimal(common::rand_amount_cents(&mut rng, -999.0, 9_999.0)),
                    Value::Str(common::rand_string(&mut rng, 20, 40)),
                ]),
            )?;
        }
        Ok(())
    }

    fn online_transactions(&self) -> Vec<Arc<dyn OnlineTransaction>> {
        // Identical to TPC-C / subenchmark.
        vec![
            Arc::new(oltp::NewOrder::new(Arc::clone(&self.state))),
            Arc::new(oltp::Payment::new(Arc::clone(&self.state))),
            Arc::new(oltp::OrderStatus::new(Arc::clone(&self.state))),
            Arc::new(oltp::Delivery::new(Arc::clone(&self.state))),
            Arc::new(oltp::StockLevel::new(Arc::clone(&self.state))),
        ]
    }

    fn analytical_queries(&self) -> Vec<Arc<dyn AnalyticalQuery>> {
        use crate::subenchmark::schema::col as tcol;
        vec![
            Arc::new(PlannedQuery::new(
                "CHQ1-SupplierAccountBalanceByRegion",
                vec!["SUPPLIER", "NATION", "REGION"],
                |_rng| {
                    let su_width = 7;
                    let n_width = 4;
                    QueryBuilder::scan("SUPPLIER")
                        .join(
                            QueryBuilder::scan("NATION"),
                            vec![col::su::NATIONKEY],
                            vec![col::n::NATIONKEY],
                            JoinKind::Inner,
                        )
                        .join(
                            QueryBuilder::scan("REGION"),
                            vec![su_width + col::n::REGIONKEY],
                            vec![col::r::REGIONKEY],
                            JoinKind::Inner,
                        )
                        .aggregate(
                            vec![su_width + n_width + col::r::REGIONKEY],
                            vec![
                                AggSpec::new(AggFunc::Count, col::su::SUPPKEY),
                                AggSpec::new(AggFunc::Avg, col::su::ACCTBAL),
                            ],
                        )
                        .sort(vec![SortKey::asc(0)])
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "CHQ2-NationsPerRegion",
                vec!["NATION", "REGION"],
                |_rng| {
                    QueryBuilder::scan("NATION")
                        .join(
                            QueryBuilder::scan("REGION"),
                            vec![col::n::REGIONKEY],
                            vec![col::r::REGIONKEY],
                            JoinKind::Inner,
                        )
                        .aggregate(
                            vec![col::n::REGIONKEY],
                            vec![AggSpec::new(AggFunc::Count, col::n::NATIONKEY)],
                        )
                        .sort(vec![SortKey::asc(0)])
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "CHQ3-TopSuppliers",
                vec!["SUPPLIER"],
                |rng| {
                    let floor = common::uniform(rng, 0, 1_000);
                    QueryBuilder::scan_where("SUPPLIER", qcol(col::su::ACCTBAL).gt(lit(floor)))
                        .sort(vec![SortKey::desc(col::su::ACCTBAL)])
                        .limit(10)
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "CHQ4-SupplierPhoneBook",
                vec!["SUPPLIER", "NATION"],
                |_rng| {
                    // Another dimension-only query: suppliers listed per nation.
                    QueryBuilder::scan("SUPPLIER")
                        .join(
                            QueryBuilder::scan("NATION"),
                            vec![col::su::NATIONKEY],
                            vec![col::n::NATIONKEY],
                            JoinKind::Inner,
                        )
                        .aggregate(
                            vec![col::su::NATIONKEY],
                            vec![
                                AggSpec::new(AggFunc::Count, col::su::SUPPKEY),
                                AggSpec::new(AggFunc::Min, col::su::ACCTBAL),
                            ],
                        )
                        .sort(vec![SortKey::asc(0)])
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "CHQ5-SupplierNationOrders",
                vec!["SUPPLIER", "NATION", "ORDERS"],
                |_rng| {
                    // One of the few CH queries that touches an OLTP-written
                    // table, joining ORDERS against the supplier dimension via
                    // the stitched key (o_carrier_id vs nationkey).
                    let su_width = 7;
                    QueryBuilder::scan("SUPPLIER")
                        .join(
                            QueryBuilder::scan("NATION"),
                            vec![col::su::NATIONKEY],
                            vec![col::n::NATIONKEY],
                            JoinKind::Inner,
                        )
                        .join(
                            QueryBuilder::scan_where(
                                "ORDERS",
                                qcol(tcol::o::CARRIER_ID).is_null().not(),
                            ),
                            vec![su_width + col::n::REGIONKEY],
                            vec![tcol::o::CARRIER_ID],
                            JoinKind::Inner,
                        )
                        .aggregate(
                            vec![col::su::NATIONKEY],
                            vec![AggSpec::new(AggFunc::Count, col::su::SUPPKEY)],
                        )
                        .sort(vec![SortKey::desc(1)])
                        .limit(10)
                        .build()
                },
            )),
            Arc::new(PlannedQuery::new(
                "CHQ6-SupplierOrderAlignment",
                vec!["SUPPLIER", "ORDERS"],
                |_rng| {
                    // Stitched join between SUPPLIER and the delivered ORDERS
                    // (mod-hash relationship, as CH-benCHmark prescribes);
                    // ORDERS is small compared to ORDER_LINE or HISTORY.
                    QueryBuilder::scan("SUPPLIER")
                        .join(
                            QueryBuilder::scan_where(
                                "ORDERS",
                                qcol(tcol::o::CARRIER_ID).is_null().not(),
                            ),
                            vec![col::su::SUPPKEY],
                            vec![tcol::o::CARRIER_ID],
                            JoinKind::Inner,
                        )
                        .aggregate(
                            vec![col::su::NATIONKEY],
                            vec![AggSpec::new(AggFunc::Count, col::su::SUPPKEY)],
                        )
                        .sort(vec![SortKey::asc(0)])
                        .build()
                },
            )),
        ]
    }

    fn hybrid_transactions(&self) -> Vec<Arc<dyn HybridTransaction>> {
        // CH-benCHmark has no hybrid transactions (Table I).
        Vec::new()
    }

    fn default_online_mix(&self) -> TransactionMix {
        TransactionMix::new(vec![
            ("NewOrder", 45),
            ("Payment", 43),
            ("OrderStatus", 4),
            ("Delivery", 4),
            ("StockLevel", 4),
        ])
    }

    fn default_hybrid_mix(&self) -> TransactionMix {
        TransactionMix::default()
    }

    fn features(&self) -> WorkloadFeatures {
        let mut tables = tpcc_schema::schemas();
        tables.extend(dimension_schemas());
        WorkloadFeatures {
            name: self.name().to_string(),
            table_names: tables.iter().map(|s| s.name().to_string()).collect(),
            columns: tables.iter().map(|s| s.column_count()).sum(),
            indexes: tables.iter().map(|s| s.indexes().len()).sum(),
            oltp_transactions: 5,
            read_only_oltp_percent: 8.0,
            analytical_queries: 6,
            hybrid_transactions: 0,
            read_only_hybrid_percent: 0.0,
            has_online_transaction: true,
            has_analytical_query: true,
            has_hybrid_transaction: false,
            has_real_time_query: false,
            semantically_consistent_schema: false,
            general_benchmark: true,
            domain_specific_benchmark: false,
        }
    }

    fn oltp_tables(&self) -> Vec<String> {
        // Online transactions only ever touch the nine TPC-C tables.
        tpcc_schema::schemas()
            .iter()
            .map(|s| s.name().to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_engine::EngineConfig;
    use olxpbench_core::check_semantic_consistency;

    #[test]
    fn stitch_schema_has_twelve_tables_and_is_inconsistent() {
        let ch = ChBenchmark::new();
        let features = ch.features();
        assert_eq!(features.tables(), 12);
        assert!(!features.semantically_consistent_schema);
        assert!(!features.has_hybrid_transaction);

        let report = check_semantic_consistency(&ch);
        assert!(!report.is_semantically_consistent());
        for t in ["SUPPLIER", "NATION", "REGION"] {
            assert!(report.olap_only_tables.contains(&t.to_string()));
        }
        // The stitch schema never analyses the history/warehouse/district data.
        for t in ["HISTORY", "WAREHOUSE", "DISTRICT"] {
            assert!(report.unanalyzed_oltp_tables.contains(&t.to_string()));
        }
    }

    #[test]
    fn loads_and_runs_transactions_and_queries() {
        let db = HybridDatabase::new(EngineConfig::single_engine().with_time_scale(0.0)).unwrap();
        let ch = ChBenchmark::new();
        ch.create_schema(&db).unwrap();
        ch.load(&db, 1, 9).unwrap();
        db.finish_load().unwrap();
        assert_eq!(db.table_key_count("SUPPLIER"), SUPPLIER_COUNT as usize);
        assert_eq!(db.table_key_count("NATION"), NATION_COUNT as usize);
        assert_eq!(db.table_key_count("REGION"), REGION_COUNT as usize);

        let session = db.session();
        let mut rng = StdRng::seed_from_u64(37);
        for txn in ch.online_transactions() {
            txn.execute(&session, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", txn.name()));
        }
        for query in ch.analytical_queries() {
            query
                .execute(&session, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", query.name()));
        }
        assert!(ch.hybrid_transactions().is_empty());
    }
}

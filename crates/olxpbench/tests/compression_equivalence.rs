//! Property-based equivalence of encoded (delta/main) and unencoded scans.
//!
//! Compaction is a pure physical rewrite: sealing delta chunks into
//! dictionary/RLE-encoded main chunks — and then evaluating predicates
//! directly on the encoded columns — must never change what a scan returns.
//! These properties drive the same mutation histories into two tables, seal
//! an arbitrary prefix of one of them (including *no* chunks and *every full*
//! chunk, and mutating main-resident rows afterwards so the delete+re-insert
//! path is exercised), and assert the scans agree under every plan shape and
//! every [`PruningMode`] — including reads taken between single-chunk
//! compaction steps, the state a concurrent reader observes mid-migration.
//!
//! The string column draws from a small fixed vocabulary so sealed chunks
//! dictionary-encode it, and the integer columns are narrow enough that runs
//! appear, so both encodings (and the plain fallback) are exercised.

use olxpbench::prelude::*;
use olxpbench::query::{execute_with, ColumnSource, ExecOptions, Expr, Plan};
use olxpbench::storage::{ColumnTable, PruningMode};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Tiny chunks so a handful of rows spans many chunks and compaction states.
const CHUNK_SIZE: usize = 8;

/// Low-cardinality vocabulary for the dictionary-encoded string column.
const WORDS: [&str; 6] = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"];

fn schema() -> Arc<TableSchema> {
    Arc::new(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("a", DataType::Int, false),
                ColumnDef::new("s", DataType::Str, false),
            ],
            vec!["id"],
        )
        .unwrap(),
    )
}

fn word(idx: usize) -> Value {
    Value::Str(WORDS[idx % WORDS.len()].to_string())
}

/// Predicate shapes covering dictionary equality, order-preserving dictionary
/// ranges, RLE-friendly integer ranges, conjunctions across encodings and a
/// non-sargable OR (which must fall back to residual filtering, not lose
/// rows).
#[derive(Debug, Clone)]
enum Predicate {
    EqA(i64),
    RangeA(i64, i64),
    EqS(usize),
    LtS(usize),
    RangeAndEqS(i64, usize),
    OrEq(i64, i64),
}

impl Predicate {
    fn expr(&self) -> Expr {
        match *self {
            Predicate::EqA(x) => col(1).eq(lit(Value::Int(x))),
            Predicate::RangeA(lo, hi) => col(1)
                .ge(lit(Value::Int(lo)))
                .and(col(1).le(lit(Value::Int(hi)))),
            Predicate::EqS(w) => col(2).eq(lit(word(w))),
            Predicate::LtS(w) => col(2).lt(lit(word(w))),
            Predicate::RangeAndEqS(lo, w) => {
                col(1).ge(lit(Value::Int(lo))).and(col(2).eq(lit(word(w))))
            }
            Predicate::OrEq(x, y) => col(1)
                .eq(lit(Value::Int(x)))
                .or(col(1).eq(lit(Value::Int(y)))),
        }
    }
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let v = -12i64..12;
    let w = 0usize..WORDS.len();
    prop_oneof![
        v.clone().prop_map(Predicate::EqA),
        (v.clone(), v.clone()).prop_map(|(x, y)| Predicate::RangeA(x.min(y), x.max(y))),
        w.clone().prop_map(Predicate::EqS),
        w.clone().prop_map(Predicate::LtS),
        (v.clone(), w).prop_map(|(lo, w)| Predicate::RangeAndEqS(lo, w)),
        (v.clone(), v).prop_map(|(x, y)| Predicate::OrEq(x, y)),
    ]
}

fn build(rows: &[(i64, usize)]) -> Arc<ColumnTable> {
    let table = Arc::new(ColumnTable::with_chunk_size(schema(), CHUNK_SIZE));
    let mut lsn = 0u64;
    for (i, &(a, w)) in rows.iter().enumerate() {
        lsn += 1;
        table
            .apply_insert(
                &Key::int(i as i64),
                &Row::new(vec![Value::Int(i as i64), Value::Int(a), word(w)]),
                1,
                lsn,
            )
            .unwrap();
    }
    table
}

fn apply(
    table: &ColumnTable,
    rows: usize,
    updates: &[(usize, i64, usize)],
    deletes: &[usize],
    mut lsn: u64,
) {
    for &(i, a, w) in updates {
        let id = (i % rows) as i64;
        lsn += 1;
        // Updates aimed at a key deleted earlier in the history are no-ops;
        // both tables reject them identically, so equivalence is unaffected.
        let _ = table.apply_update(
            &Key::int(id),
            &Row::new(vec![Value::Int(id), Value::Int(a), word(w)]),
            2,
            lsn,
        );
    }
    for &i in deletes {
        let id = (i % rows) as i64;
        lsn += 1;
        // A re-delete of an already deleted key is a no-op, which is fine:
        // both tables see the identical history either way.
        table.apply_delete(&Key::int(id), 3, lsn).unwrap();
    }
}

fn scan(table: &Arc<ColumnTable>, plan: &Plan, mode: PruningMode) -> Vec<Row> {
    let mut tables = HashMap::new();
    tables.insert("T".to_string(), Arc::clone(table));
    let source = ColumnSource::new(&tables);
    // A batch size smaller than the chunk size exercises encoded-filter
    // windows that subdivide a main chunk.
    let mut out = execute_with(plan, &source, ExecOptions::batched(5).with_pruning(mode))
        .expect("scan succeeds")
        .rows;
    out.sort_by(|x, y| x[0].cmp(&y[0]));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any mutation history split around an arbitrary amount of
    /// compaction, the compacted table returns exactly what a never-compacted
    /// table returns, under every plan shape and pruning mode.
    #[test]
    fn encoded_scan_equals_unencoded_scan(
        rows in proptest::collection::vec((-10i64..10, 0usize..WORDS.len()), 1..120),
        pre_updates in proptest::collection::vec(
            (0usize..1024, -10i64..10, 0usize..WORDS.len()), 0..20),
        pre_deletes in proptest::collection::vec(0usize..1024, 0..20),
        compact_steps in 0usize..20,
        post_updates in proptest::collection::vec(
            (0usize..1024, -10i64..10, 0usize..WORDS.len()), 0..20),
        post_deletes in proptest::collection::vec(0usize..1024, 0..20),
        predicate in predicate_strategy(),
    ) {
        let plain = build(&rows);
        let encoded = build(&rows);
        apply(&plain, rows.len(), &pre_updates, &pre_deletes, 1_000);
        apply(&encoded, rows.len(), &pre_updates, &pre_deletes, 1_000);
        // Seal 0..=all full chunks of one table only.
        for _ in 0..compact_steps {
            if !encoded.compact_chunk() {
                break;
            }
        }
        // Post-compaction mutations hit main-resident rows on the encoded
        // table (delete + re-insert into delta) and delta rows on the plain
        // one; results must still agree.
        apply(&plain, rows.len(), &post_updates, &post_deletes, 2_000);
        apply(&encoded, rows.len(), &post_updates, &post_deletes, 2_000);

        let plan = QueryBuilder::scan_where("T", predicate.expr()).build();
        let baseline = scan(&plain, &plan, PruningMode::Off);
        for mode in [
            PruningMode::Off,
            PruningMode::ZoneMapOnly,
            PruningMode::FilterOnly,
            PruningMode::Both,
        ] {
            let got = scan(&encoded, &plan, mode);
            prop_assert_eq!(
                &got, &baseline,
                "encoded mode {:?} diverged for predicate {:?} after {} compaction steps",
                mode, predicate, compact_steps
            );
        }
    }

    /// Mid-compaction reads: scanning between every single-chunk seal (the
    /// states a reader interleaving with the background compactor observes)
    /// always matches the pre-compaction result, with and without a filter.
    #[test]
    fn every_intermediate_compaction_state_agrees(
        rows in proptest::collection::vec((-10i64..10, 0usize..WORDS.len()), 1..80),
        deletes in proptest::collection::vec(0usize..1024, 0..20),
        predicate in predicate_strategy(),
    ) {
        let table = build(&rows);
        apply(&table, rows.len(), &[], &deletes, 1_000);
        let filtered = QueryBuilder::scan_where("T", predicate.expr()).build();
        let full = QueryBuilder::scan("T").build();
        let filtered_baseline = scan(&table, &filtered, PruningMode::Off);
        let full_baseline = scan(&table, &full, PruningMode::Off);
        loop {
            let sealed = table.compact_chunk();
            prop_assert_eq!(
                scan(&table, &filtered, PruningMode::Both),
                filtered_baseline.clone(),
                "filtered scan diverged at {} sealed chunks ({:?})",
                table.main_chunk_count(), predicate
            );
            prop_assert_eq!(
                scan(&table, &full, PruningMode::Both),
                full_baseline.clone(),
                "full scan diverged at {} sealed chunks",
                table.main_chunk_count()
            );
            if !sealed {
                break;
            }
        }
    }
}

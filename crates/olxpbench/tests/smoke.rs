//! Workspace smoke test: catches manifest and feature-wiring regressions
//! fast (a broken crate rename, a dropped re-export, or a suite that silently
//! falls out of the registry fails here in milliseconds, before the long
//! experiment-shape suites run).

use olxpbench::prelude::*;

/// The paper's three suites, in presentation order.
const PAPER_SUITES: [&str; 3] = ["subenchmark", "fibenchmark", "tabenchmark"];

#[test]
fn olxp_suites_returns_the_three_paper_suites_in_order() {
    let suites = olxp_suites();
    let names: Vec<&str> = suites.iter().map(|w| w.name()).collect();
    assert_eq!(names, PAPER_SUITES);
}

#[test]
fn workload_by_name_round_trips_every_suite() {
    // Full names: the registry entry must hand back a workload that reports
    // the same name, so lookups and reports stay consistent.
    for name in PAPER_SUITES {
        let workload = workload_by_name(name)
            .unwrap_or_else(|| panic!("suite `{name}` missing from the registry"));
        assert_eq!(workload.name(), name);
        // Round-trip again through the reported name.
        assert!(workload_by_name(workload.name()).is_some());
    }

    // Short aliases resolve to the same suites.
    for (alias, full) in [
        ("su", "subenchmark"),
        ("fi", "fibenchmark"),
        ("ta", "tabenchmark"),
    ] {
        assert_eq!(workload_by_name(alias).unwrap().name(), full);
    }

    // The stitch-schema baseline is registered but is not an OLxP suite.
    assert_eq!(
        workload_by_name("chbenchmark").unwrap().name(),
        "chbenchmark"
    );
    assert!(workload_by_name("nosuchbenchmark").is_none());
}

#[test]
fn every_suite_reports_hybrid_support_and_a_consistent_schema() {
    // Table I's claim for OLxPBench itself: all three suites provide hybrid
    // transactions with real-time queries over a semantically consistent
    // schema. If a manifest/feature regression drops a suite's hybrid
    // transactions, this fails without running any benchmark.
    for workload in olxp_suites() {
        let features = workload.features();
        assert!(
            features.has_hybrid_transaction && features.has_real_time_query,
            "{} lost its hybrid transactions",
            workload.name()
        );
        assert!(
            features.semantically_consistent_schema,
            "{} lost schema consistency",
            workload.name()
        );
    }
}

#[test]
fn engines_construct_for_all_three_architectures() {
    for config in [
        EngineConfig::single_engine(),
        EngineConfig::dual_engine(),
        EngineConfig::shared_nothing(),
    ] {
        HybridDatabase::new(config.with_time_scale(0.0)).expect("engine constructs");
    }
}

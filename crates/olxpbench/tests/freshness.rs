//! End-to-end tests for the background replication applier and the
//! freshness-bounded analytical read path.
//!
//! The paper's core requirement is that analytical queries run over *freshly
//! committed* transactional data.  These tests prove the property the engine
//! now enforces: under `FreshnessPolicy::BoundedRecords(n)`, no analytical
//! read ever observes replication lag greater than `n`, even while concurrent
//! OLTP writers hammer the row store — and the benchmark driver reports the
//! observed freshness distribution next to throughput.

use olxpbench::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn item_schema() -> TableSchema {
    TableSchema::new(
        "ITEM",
        vec![
            ColumnDef::new("i_id", DataType::Int, false),
            ColumnDef::new("i_name", DataType::Str, false),
            ColumnDef::new("i_price", DataType::Decimal, false),
        ],
        vec!["i_id"],
    )
    .unwrap()
}

fn item(id: i64) -> Row {
    Row::new(vec![
        Value::Int(id),
        Value::Str(format!("item-{}", id % 16)),
        Value::Decimal(100 + id),
    ])
}

/// A dual-engine database whose analytical queries always hit the column
/// store, with no simulated service delays.
fn colstore_db(freshness: FreshnessPolicy) -> Arc<HybridDatabase> {
    let mut config = EngineConfig::dual_engine()
        .with_time_scale(0.0)
        .with_freshness(freshness)
        .with_freshness_timeout_ms(10_000);
    config.analytical_rowstore_percent = 0;
    let db = HybridDatabase::new(config).unwrap();
    db.create_table(item_schema()).unwrap();
    for i in 0..256 {
        db.load_row("ITEM", item(i)).unwrap();
    }
    db.finish_load().unwrap();
    db
}

fn count_plan() -> Plan {
    QueryBuilder::scan("ITEM")
        .aggregate(vec![], vec![AggSpec::new(AggFunc::Count, 0)])
        .build()
}

/// The acceptance property: with the background applier running and
/// `BoundedRecords(n)`, every analytical read observes lag <= n while
/// concurrent writers commit.
#[test]
fn bounded_records_holds_under_concurrent_writers() {
    for bound in [4u64, 64] {
        let db = colstore_db(FreshnessPolicy::BoundedRecords(bound));
        assert!(db.has_background_applier());
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            const WRITERS: usize = 2;
            for w in 0..WRITERS {
                let session = db.session();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut i = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        let id = 1_000_000 + (w as i64) * 1_000_000 + i;
                        let result = session.run_transaction(WorkClass::Oltp, 3, |s, txn| {
                            s.insert(txn, "ITEM", item(id))
                        });
                        result.expect("writer transaction commits");
                        i += 1;
                    }
                });
            }

            let session = db.session();
            let plan = count_plan();
            let mut max_observed = 0u64;
            for _ in 0..100 {
                let out = session
                    .analytical_query(&plan)
                    .expect("freshness-bounded read succeeds");
                assert!(
                    out.stats.freshness_lag_records <= bound,
                    "observed lag {} exceeds bound {bound}",
                    out.stats.freshness_lag_records
                );
                max_observed = max_observed.max(out.stats.freshness_lag_records);
            }
            stop.store(true, Ordering::Relaxed);
            let _ = max_observed; // writers keep lag non-deterministic; the bound is what matters
        });

        // The applier converges once the writers stop.
        let deadline = Instant::now() + Duration::from_secs(10);
        while db.replication_lag() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(db.replication_lag(), 0, "applier drains after writers stop");
        // Dropping the database joins the applier thread; returning from this
        // iteration without hanging is the clean-shutdown check.
        drop(db);
    }
}

/// Strict reads observe everything committed before the read started.
#[test]
fn strict_reads_are_exactly_fresh() {
    let db = colstore_db(FreshnessPolicy::Strict);
    let session = db.session();
    let plan = count_plan();
    for batch in 0..10i64 {
        let mut txn = session.begin(WorkClass::Oltp);
        for k in 0..20i64 {
            session
                .insert(&mut txn, "ITEM", item(2_000_000 + batch * 100 + k))
                .unwrap();
        }
        session.commit(txn).unwrap();
        let out = session.analytical_query(&plan).unwrap();
        let expected = 256 + (batch + 1) * 20;
        assert_eq!(
            out.rows[0][0].as_int(),
            Some(expected),
            "strict read must see all {expected} committed rows"
        );
    }
}

/// The benchmark driver reports freshness percentiles for a dual-engine run
/// with concurrent OLTP and OLAP agents.
#[test]
fn driver_reports_freshness_percentiles() {
    let db = HybridDatabase::new(
        EngineConfig::dual_engine()
            .with_time_scale(0.0)
            .with_freshness(FreshnessPolicy::BoundedRecords(512)),
    )
    .unwrap();
    let workload = Fibenchmark::new();
    let config = BenchConfig {
        label: "freshness".into(),
        oltp: AgentConfig::new(2, 400.0),
        olap: AgentConfig::new(2, 100.0),
        hybrid: AgentConfig::disabled(),
        duration: Duration::from_millis(400),
        warmup: Duration::from_millis(50),
        ..BenchConfig::default()
    };
    let driver = BenchmarkDriver::new(config);
    driver.prepare(&db, &workload).unwrap();
    let result = driver.run(&db, &workload).unwrap();

    let olap = result.olap.expect("olap agents were enabled");
    assert!(olap.count > 0, "analytical queries ran");
    let freshness = result.freshness.expect("freshness summary present");
    assert!(
        freshness.observations > 0,
        "freshness was observed per analytical read"
    );
    assert!(freshness.lag_records_p50 <= freshness.lag_records_p95);
    assert!(freshness.lag_records_p95 <= freshness.lag_records_max);
    assert!(
        freshness.lag_records_max <= 512,
        "bound held during the run"
    );
    assert_eq!(result.replication_errors, 0);

    // An OLTP-only run reports no freshness distribution.
    let oltp_only = BenchConfig {
        label: "oltp-only".into(),
        oltp: AgentConfig::new(1, 200.0),
        olap: AgentConfig::disabled(),
        hybrid: AgentConfig::disabled(),
        duration: Duration::from_millis(200),
        warmup: Duration::from_millis(20),
        ..BenchConfig::default()
    };
    let result = BenchmarkDriver::new(oltp_only).run(&db, &workload).unwrap();
    assert!(result.freshness.is_none());
}

/// The applier thread exits promptly when the database is dropped, even under
/// load, and an explicit shutdown is honoured by later reads.
#[test]
fn applier_shutdown_is_clean_and_prompt() {
    let db = colstore_db(FreshnessPolicy::Eventual);
    let session = db.session();
    for i in 0..200i64 {
        let mut txn = session.begin(WorkClass::Oltp);
        session
            .insert(&mut txn, "ITEM", item(3_000_000 + i))
            .unwrap();
        session.commit(txn).unwrap();
    }
    let started = Instant::now();
    db.shutdown_applier();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "applier shutdown must not hang"
    );
    assert!(!db.has_background_applier());
    // Without the applier, eventual reads drive replication themselves.
    let out = session.analytical_query(&count_plan()).unwrap();
    assert_eq!(out.rows[0][0].as_int(), Some(456));
    assert_eq!(db.replication_lag(), 0);
}

//! Crash-recovery test suite for the durability subsystem.
//!
//! Every test follows the same shape: open a durable engine rooted at a fresh
//! data directory, do some committed work, *crash* (drop all process state
//! without a clean shutdown via `HybridDatabase::simulate_crash`), reopen from
//! the same directory, and verify that everything acknowledged before the
//! crash — and nothing else — is visible again, through both transactional
//! reads and freshness-bounded analytical queries.

use olxpbench::prelude::*;
use olxpbench::storage::StorageError;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    std::env::temp_dir()
        .join(format!(
            "olxp-durability-{tag}-{}-{nanos}",
            std::process::id()
        ))
        .display()
        .to_string()
}

fn account_schema() -> TableSchema {
    TableSchema::new(
        "ACCOUNT",
        vec![
            ColumnDef::new("a_id", DataType::Int, false),
            ColumnDef::new("a_owner", DataType::Str, false),
            ColumnDef::new("a_balance", DataType::Decimal, false),
        ],
        vec!["a_id"],
    )
    .unwrap()
    .with_index("idx_owner", vec!["a_owner"], false)
    .unwrap()
}

/// A durable dual-engine config: column-store-only analytical routing and
/// strict freshness, so post-recovery analytical reads are the hard case.
fn durable_config(dir: &str, sync: SyncPolicy) -> EngineConfig {
    let mut config = EngineConfig::dual_engine()
        .with_time_scale(0.0)
        .with_freshness(FreshnessPolicy::Strict)
        .with_durability(DurabilityConfig::at(dir).with_sync(sync))
        .with_nodes(2);
    config.analytical_rowstore_percent = 0;
    config
}

fn account_row(id: i64, balance: i64) -> Row {
    Row::new(vec![
        Value::Int(id),
        Value::Str(format!("owner-{id}")),
        Value::Decimal(balance),
    ])
}

/// Commit one insert through the full transactional path.
fn commit_insert(session: &Session, id: i64, balance: i64) {
    let mut txn = session.begin(WorkClass::Oltp);
    session
        .insert(&mut txn, "ACCOUNT", account_row(id, balance))
        .unwrap();
    session.commit(txn).unwrap();
}

/// Count the ACCOUNT rows via a Strict-freshness analytical query (served by
/// the column store, so recovery must have re-seeded replication correctly).
fn analytical_count(db: &Arc<HybridDatabase>) -> i64 {
    let session = db.session();
    let plan = QueryBuilder::scan("ACCOUNT")
        .aggregate(vec![], vec![AggSpec::new(AggFunc::Count, 0)])
        .build();
    let out = session.analytical_query(&plan).unwrap();
    assert_eq!(
        out.stats.freshness_lag_records, 0,
        "strict analytical read observes zero lag"
    );
    out.rows[0][0].as_int().unwrap()
}

/// Count rows via transactional point reads of the expected keys.
fn transactional_count(db: &Arc<HybridDatabase>, ids: impl Iterator<Item = i64>) -> i64 {
    let session = db.session();
    let mut txn = session.begin(WorkClass::Oltp);
    let mut found = 0;
    for id in ids {
        if session
            .read(&mut txn, "ACCOUNT", &Key::int(id))
            .unwrap()
            .is_some()
        {
            found += 1;
        }
    }
    session.commit(txn).unwrap();
    found
}

#[test]
fn kill_after_commit_loses_nothing() {
    // The acceptance-criteria round trip: N commits across both stores, crash
    // without shutdown, reopen, observe all N through transactional reads AND
    // a Strict-freshness analytical query.  Runs once per shard count: the
    // single-shard engine (the seed layout, one plain `wal` stream) and a
    // sharded one (four `wal-shard<K>` streams, per-shard checkpoint cuts).
    const N: i64 = 40;
    for shards in [1usize, 4] {
        let dir = temp_dir(&format!("kill-after-commit-{shards}"));
        let config = || durable_config(&dir, SyncPolicy::group_commit()).with_shards(shards);
        {
            let db = HybridDatabase::open(config()).unwrap();
            db.create_table(account_schema()).unwrap();
            let session = db.session();
            for i in 0..N {
                commit_insert(&session, i, 100 * i);
            }
            // Both stores hold the data before the crash.
            assert_eq!(analytical_count(&db), N);
            db.simulate_crash();
        }
        let db = HybridDatabase::open(config()).unwrap();
        let report = db.recovery_report().expect("recovery ran");
        assert_eq!(report.tables_recovered, 1);
        assert_eq!(
            transactional_count(&db, 0..N),
            N,
            "row store recovered at {shards} shards"
        );
        assert_eq!(
            analytical_count(&db),
            N,
            "column store re-seeded at {shards} shards"
        );
        // Updates layered over recovered rows keep working.
        let session = db.session();
        let mut txn = session.begin(WorkClass::Oltp);
        session
            .update(&mut txn, "ACCOUNT", &Key::int(0), account_row(0, 999_999))
            .unwrap();
        session.commit(txn).unwrap();
        drop(session);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn kill_mid_write_loses_nothing_committed() {
    // Under SyncPolicy::Always every acknowledged commit is fsynced; a crash
    // with arbitrary unflushed engine state (mid-"write") must preserve all
    // of them.  Updates and deletes exercise replay beyond pure inserts.
    let dir = temp_dir("kill-mid-write");
    {
        let db = HybridDatabase::open(durable_config(&dir, SyncPolicy::Always)).unwrap();
        db.create_table(account_schema()).unwrap();
        let session = db.session();
        for i in 0..20 {
            commit_insert(&session, i, i);
        }
        // Overwrite half, delete a quarter.
        for i in 0..10 {
            let mut txn = session.begin(WorkClass::Oltp);
            session
                .update(&mut txn, "ACCOUNT", &Key::int(i), account_row(i, 1_000 + i))
                .unwrap();
            session.commit(txn).unwrap();
        }
        for i in 15..20 {
            let mut txn = session.begin(WorkClass::Oltp);
            session.delete(&mut txn, "ACCOUNT", &Key::int(i)).unwrap();
            session.commit(txn).unwrap();
        }
        db.simulate_crash();
    }
    let db = HybridDatabase::open(durable_config(&dir, SyncPolicy::Always)).unwrap();
    assert_eq!(transactional_count(&db, 0..20), 15, "deletes replayed");
    assert_eq!(analytical_count(&db), 15);
    let session = db.session();
    let mut txn = session.begin(WorkClass::Oltp);
    let row = session
        .read(&mut txn, "ACCOUNT", &Key::int(3))
        .unwrap()
        .expect("updated row survives");
    assert_eq!(row[2], Value::Decimal(1_003), "newest image wins");
    session.commit(txn).unwrap();
    drop(session);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The newest WAL segment in `dir` (highest sequence number).
fn newest_segment(dir: &str) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(Path::new(dir))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    segments.sort();
    segments.pop().expect("at least one WAL segment")
}

#[test]
fn torn_tail_is_truncated_and_commits_survive() {
    let dir = temp_dir("torn-tail");
    {
        let db = HybridDatabase::open(durable_config(&dir, SyncPolicy::Always)).unwrap();
        db.create_table(account_schema()).unwrap();
        let session = db.session();
        for i in 0..10 {
            commit_insert(&session, i, i);
        }
        db.simulate_crash();
    }
    // A crash mid-write leaves a torn frame at the tail of the newest
    // segment: a header promising more bytes than were persisted.
    {
        let mut f = OpenOptions::new()
            .append(true)
            .open(newest_segment(&dir))
            .unwrap();
        f.write_all(&10_000u32.to_le_bytes()).unwrap();
        f.write_all(&0x1234_5678u32.to_le_bytes()).unwrap();
        f.write_all(b"only half a record made it to dis").unwrap();
    }
    let db = HybridDatabase::open(durable_config(&dir, SyncPolicy::Always)).unwrap();
    let report = db.recovery_report().unwrap();
    assert!(report.torn_bytes_truncated > 0, "the torn tail was dropped");
    assert_eq!(transactional_count(&db, 0..10), 10);
    assert_eq!(analytical_count(&db), 10);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_log_corruption_surfaces_as_typed_error() {
    // Pinned to one shard: with the work spread over several small streams,
    // the flipped "middle" byte of one stream can land in its final record,
    // which is indistinguishable from a torn tail and legally truncated
    // instead of reported.
    let dir = temp_dir("corruption");
    let segment;
    {
        let db =
            HybridDatabase::open(durable_config(&dir, SyncPolicy::Always).with_shards(1)).unwrap();
        db.create_table(account_schema()).unwrap();
        let session = db.session();
        for i in 0..10 {
            commit_insert(&session, i, i);
        }
        segment = newest_segment(&dir);
        db.simulate_crash();
    }
    // Damage a byte in the middle of acknowledged log bytes.
    let mut bytes = std::fs::read(&segment).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&segment, &bytes).unwrap();

    let err = HybridDatabase::open(durable_config(&dir, SyncPolicy::Always).with_shards(1));
    assert!(
        matches!(
            err,
            Err(EngineError::Storage(StorageError::WalCorrupt { .. }))
        ),
        "expected WalCorrupt, got {err:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unsynced_commits_under_never_policy_are_lost_but_synced_ones_survive() {
    // The contrapositive of durability: with SyncPolicy::Never nothing is
    // fsynced at commit, so a crash loses the tail — demonstrating that the
    // syncing policies (not luck) are what the other tests rely on.
    let dir = temp_dir("never");
    {
        let db = HybridDatabase::open(durable_config(&dir, SyncPolicy::Never)).unwrap();
        db.create_table(account_schema()).unwrap();
        let session = db.session();
        for i in 0..5 {
            commit_insert(&session, i, i);
        }
        db.checkpoint().unwrap(); // makes everything so far durable
        for i in 5..10 {
            commit_insert(&session, i, i);
        }
        db.simulate_crash(); // the 5 post-checkpoint commits were never synced
    }
    let db = HybridDatabase::open(durable_config(&dir, SyncPolicy::Never)).unwrap();
    assert_eq!(transactional_count(&db, 0..10), 5);
    assert_eq!(analytical_count(&db), 5);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_from_checkpoint_plus_wal_tail_composes() {
    // Work lands in three strata: before the first checkpoint, between
    // checkpoints, and in the WAL tail after the last one.  Recovery must
    // stitch all three together.
    for shards in [1usize, 4] {
        let dir = temp_dir(&format!("compose-{shards}"));
        let config = || durable_config(&dir, SyncPolicy::group_commit()).with_shards(shards);
        {
            let db = HybridDatabase::open(config()).unwrap();
            db.create_table(account_schema()).unwrap();
            let session = db.session();
            for i in 0..10 {
                commit_insert(&session, i, i);
            }
            db.checkpoint().unwrap();
            for i in 10..20 {
                commit_insert(&session, i, i);
            }
            db.checkpoint().unwrap();
            for i in 20..30 {
                commit_insert(&session, i, i);
            }
            db.simulate_crash();
        }
        let db = HybridDatabase::open(config()).unwrap();
        let report = db.recovery_report().unwrap();
        assert_eq!(report.checkpoint_rows, 20, "two strata from the checkpoint");
        assert_eq!(report.wal_txns_replayed, 10, "one stratum from the tail");
        assert_eq!(transactional_count(&db, 0..30), 30);
        assert_eq!(analytical_count(&db), 30);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn automatic_checkpoints_trigger_and_truncate() {
    let dir = temp_dir("auto-ckpt");
    let config = |sync| {
        let mut c = durable_config(&dir, sync);
        // Three records per commit: trigger roughly every 20 commits.
        c.durability = c
            .durability
            .with_checkpoint_every(60)
            .with_segment_bytes(4096);
        c
    };
    {
        let db = HybridDatabase::open(config(SyncPolicy::group_commit())).unwrap();
        db.create_table(account_schema()).unwrap();
        let session = db.session();
        for i in 0..100 {
            commit_insert(&session, i, i);
        }
        let wal = db.metrics_snapshot().wal;
        assert!(wal.checkpoints >= 1, "auto checkpoint fired: {wal:?}");
        assert_eq!(wal.checkpoint_failures, 0);
        db.simulate_crash();
    }
    let db = HybridDatabase::open(config(SyncPolicy::group_commit())).unwrap();
    assert_eq!(transactional_count(&db, 0..100), 100);
    assert_eq!(analytical_count(&db), 100);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn group_commit_batches_concurrent_committers() {
    // The acceptance criterion's batching bound: >= 2 commits per fsync on
    // average under concurrent committers.
    let dir = temp_dir("group-batch");
    // Pinned to one shard: the batching bound assumes all committers share
    // one fsync queue, and sharding deliberately splits that queue per shard.
    let db = HybridDatabase::open(
        durable_config(
            &dir,
            SyncPolicy::GroupCommit {
                max_batch: 8,
                max_wait_us: 2_000,
            },
        )
        .with_shards(1),
    )
    .unwrap();
    db.create_table(account_schema()).unwrap();
    const THREADS: i64 = 8;
    const PER_THREAD: i64 = 30;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let session = db.session();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    commit_insert(&session, t * PER_THREAD + i, i);
                }
            });
        }
    });
    let wal = db.metrics_snapshot().wal;
    // Every commit plus the create_table DDL was acknowledged via a sync.
    assert_eq!(wal.synced_commits, (THREADS * PER_THREAD) as u64 + 1);
    assert!(
        wal.commits_per_fsync() >= 2.0,
        "expected >= 2 commits per fsync, got {:.2} ({} commits / {} fsyncs)",
        wal.commits_per_fsync(),
        wal.synced_commits,
        wal.fsyncs
    );
    assert!(wal.group_batch_max >= 2);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoints_racing_concurrent_commits_lose_nothing() {
    // Regression test for the checkpoint-cut race: the `(commit_ts, LSN)`
    // cut must never land between a transaction's timestamp allocation and
    // its WAL window, or recovery silently drops an acknowledged commit.
    // Hammer commits from several threads while another thread checkpoints
    // continuously, then crash and verify every acknowledged commit.
    let dir = temp_dir("ckpt-race");
    const THREADS: i64 = 4;
    const PER_THREAD: i64 = 50;
    {
        let db = HybridDatabase::open(durable_config(&dir, SyncPolicy::group_commit())).unwrap();
        db.create_table(account_schema()).unwrap();
        let done = std::sync::atomic::AtomicBool::new(false);
        let done = &done;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let session = db.session();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        commit_insert(&session, t * PER_THREAD + i, i);
                    }
                });
            }
            let ckpt_db = &db;
            scope.spawn(move || {
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    ckpt_db.checkpoint().unwrap();
                }
            });
            // Writers finishing is observed by the scope join of their
            // handles; signal the checkpointer afterwards by a sentinel
            // thread that waits for the commit count.
            let sentinel_db = &db;
            scope.spawn(move || {
                while sentinel_db.metrics_snapshot().commits < (THREADS * PER_THREAD) as u64 {
                    std::thread::yield_now();
                }
                done.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
        db.simulate_crash();
    }
    let db = HybridDatabase::open(durable_config(&dir, SyncPolicy::group_commit())).unwrap();
    assert_eq!(
        transactional_count(&db, 0..THREADS * PER_THREAD),
        THREADS * PER_THREAD,
        "no acknowledged commit may be lost to a racing checkpoint"
    );
    assert_eq!(analytical_count(&db), THREADS * PER_THREAD);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn benchmark_workload_survives_crash_recovery() {
    // End-to-end: run a real workload (fibenchmark OLTP) against a durable
    // engine, crash, reopen, and verify the engine still answers strict
    // analytical queries over a consistent recovered state.
    use std::time::Duration;
    let dir = temp_dir("workload");
    let committed;
    {
        let mut config = EngineConfig::dual_engine()
            .with_time_scale(0.0)
            .with_durability(DurabilityConfig::at(&dir));
        config.analytical_rowstore_percent = 0;
        let db = HybridDatabase::open(config).unwrap();
        let workload = Fibenchmark::new();
        let bench = BenchConfig::oltp_only(2, 500.0, Duration::from_millis(200))
            .with_scale_factor(1)
            .with_warmup(Duration::from_millis(20));
        let driver = BenchmarkDriver::new(bench);
        driver.prepare(&db, &workload).unwrap();
        let result = driver.run(&db, &workload).unwrap();
        assert!(result.wal_appends > 0, "durable run logs to the WAL");
        assert!(result.wal_fsyncs > 0);
        committed = db.total_live_rows();
        db.simulate_crash();
    }
    let mut config = EngineConfig::dual_engine()
        .with_time_scale(0.0)
        .with_durability(DurabilityConfig::at(&dir));
    config.analytical_rowstore_percent = 0;
    let db = HybridDatabase::open(config).unwrap();
    assert_eq!(
        db.total_live_rows(),
        committed,
        "every acknowledged row survives the crash"
    );
    assert_eq!(db.replication_lag(), 0);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn in_doubt_cross_shard_transaction_commits_on_all_shards_or_none() {
    // The 2PC acceptance case.  A cross-shard transaction forces
    // Begin+Mutation+Prepare to every touched shard before any shard logs its
    // Commit marker, so the worst crash leaves the transaction *in doubt*:
    // prepared everywhere, committed on some-but-not-all shards.  Recovery
    // must resolve it atomically — any shard's Commit marker proves the
    // global decision and commits the writes on every shard; no marker
    // anywhere means presumed abort on every shard.  We craft both crash
    // states directly in the per-shard WAL streams.
    use olxpbench::storage::{MutationOp, Wal, WalOp};

    const SHARDS: usize = 4;
    const SEGMENT: u64 = 8 * 1024 * 1024;
    let dir = temp_dir("in-doubt-2pc");

    // Baseline: create the table on a sharded durable engine, learn which
    // shard each key routes to, then crash.
    let (key_a, key_b, key_c, key_d, shard_a, shard_b, shard_c, shard_d);
    {
        let db = HybridDatabase::open(durable_config(&dir, SyncPolicy::Always).with_shards(SHARDS))
            .unwrap();
        db.create_table(account_schema()).unwrap();
        // Pick two disjoint pairs of keys, each pair spanning two shards.
        let pick_pair = |start: i64| {
            let first = start;
            let first_shard = db.shard_for("ACCOUNT", &Key::int(first));
            let mut second = first + 1;
            while db.shard_for("ACCOUNT", &Key::int(second)) == first_shard {
                second += 1;
            }
            (
                first,
                second,
                first_shard,
                db.shard_for("ACCOUNT", &Key::int(second)),
            )
        };
        let (a, b, sa, sb) = pick_pair(1);
        let (c, d, sc, sd) = pick_pair(1000);
        (key_a, key_b, shard_a, shard_b) = (a, b, sa, sb);
        (key_c, key_d, shard_c, shard_d) = (c, d, sc, sd);
        db.simulate_crash();
    }

    let wal_op = |key: i64| WalOp {
        table: "ACCOUNT".to_string(),
        op: MutationOp::Insert,
        key: Key::int(key),
        row: Some(account_row(key, 7)),
    };
    let append = |shard: usize, txn_id: u64, key: i64, commit: bool| {
        let (wal, _replay) = Wal::open_named(
            &dir,
            &format!("wal-shard{shard}"),
            SyncPolicy::Always,
            SEGMENT,
        )
        .unwrap();
        let commit_ts = 1_000_000 + txn_id;
        wal.log_mutations(txn_id, &[wal_op(key)], commit_ts)
            .unwrap();
        wal.log_prepare(txn_id).unwrap();
        if commit {
            wal.log_commit(txn_id, commit_ts).unwrap();
        }
        wal.flush_and_fsync().unwrap();
    };

    // Crash state 1: txn 1 prepared on shards A and B, Commit marker written
    // only on shard A — the coordinator died between the two marker appends.
    append(shard_a, 1_000_001, key_a, true);
    append(shard_b, 1_000_001, key_b, false);
    // Crash state 2: txn 2 prepared on shards C and D, no Commit marker
    // anywhere — the coordinator died before deciding.
    append(shard_c, 1_000_002, key_c, false);
    append(shard_d, 1_000_002, key_d, false);

    let db =
        HybridDatabase::open(durable_config(&dir, SyncPolicy::Always).with_shards(SHARDS)).unwrap();
    let report = db.recovery_report().expect("recovery ran");
    assert!(
        report.in_doubt_committed >= 1,
        "shard B's prepared writes were resolved by shard A's marker, got {report:?}"
    );
    // Txn 1: committed on BOTH shards, including the one missing its marker.
    assert_eq!(
        transactional_count(&db, [key_a, key_b].into_iter()),
        2,
        "a Commit marker on any shard commits the transaction on every shard"
    );
    // Txn 2: visible on NO shard — prepared-everywhere without a marker is
    // presumed aborted.
    assert_eq!(
        transactional_count(&db, [key_c, key_d].into_iter()),
        0,
        "a prepared transaction with no Commit marker anywhere must not commit"
    );

    // The resolution is itself durable: crash and reopen once more, and the
    // outcome is unchanged (replay is idempotent and re-resolves identically).
    db.simulate_crash();
    let db =
        HybridDatabase::open(durable_config(&dir, SyncPolicy::Always).with_shards(SHARDS)).unwrap();
    assert_eq!(transactional_count(&db, [key_a, key_b].into_iter()), 2);
    assert_eq!(transactional_count(&db, [key_c, key_d].into_iter()), 0);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Property-based equivalence of pruned and unpruned columnar scans.
//!
//! Chunk pruning (zone maps + fingerprint filters) is a pure optimization: it
//! may only skip chunks that provably contain no matching live rows, so a
//! filtered scan must return exactly the same rows under every
//! [`PruningMode`] — including after updates (which widen zone maps
//! conservatively) and deletes (which leave stale contributions in both
//! structures), and for every sargable predicate shape the extractor
//! understands (equality, ranges, AND-conjunctions) as well as
//! non-sargable filters that prune nothing.

use olxpbench::prelude::*;
use olxpbench::query::{execute_with, ColumnSource, ExecOptions, Expr, Plan};
use olxpbench::storage::{ColumnTable, PruningMode};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Tiny chunks so a handful of rows spans many chunks and every scan
/// exercises the prune/survive decision repeatedly.
const CHUNK_SIZE: usize = 8;

fn schema() -> Arc<TableSchema> {
    Arc::new(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("a", DataType::Int, false),
                ColumnDef::new("b", DataType::Int, false),
            ],
            vec!["id"],
        )
        .unwrap(),
    )
}

/// A generated filter: the sargable shapes the extractor understands, plus a
/// non-sargable OR (which must disable pruning rather than lose rows).
#[derive(Debug, Clone)]
enum Predicate {
    EqA(i64),
    LtA(i64),
    RangeA(i64, i64),
    RangeAndEq(i64, i64),
    EqBoth(i64, i64),
    OrEq(i64, i64),
}

impl Predicate {
    fn expr(&self) -> Expr {
        match *self {
            Predicate::EqA(x) => col(1).eq(lit(Value::Int(x))),
            Predicate::LtA(x) => col(1).lt(lit(Value::Int(x))),
            Predicate::RangeA(lo, hi) => col(1)
                .ge(lit(Value::Int(lo)))
                .and(col(1).le(lit(Value::Int(hi)))),
            Predicate::RangeAndEq(lo, b) => col(1)
                .ge(lit(Value::Int(lo)))
                .and(col(2).eq(lit(Value::Int(b)))),
            Predicate::EqBoth(a, b) => col(1)
                .eq(lit(Value::Int(a)))
                .and(col(2).eq(lit(Value::Int(b)))),
            Predicate::OrEq(x, y) => col(1)
                .eq(lit(Value::Int(x)))
                .or(col(1).eq(lit(Value::Int(y)))),
        }
    }
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let v = -12i64..12;
    prop_oneof![
        v.clone().prop_map(Predicate::EqA),
        v.clone().prop_map(Predicate::LtA),
        (v.clone(), v.clone()).prop_map(|(x, y)| Predicate::RangeA(x.min(y), x.max(y))),
        (v.clone(), v.clone()).prop_map(|(lo, b)| Predicate::RangeAndEq(lo, b)),
        (v.clone(), v.clone()).prop_map(|(a, b)| Predicate::EqBoth(a, b)),
        (v.clone(), v).prop_map(|(x, y)| Predicate::OrEq(x, y)),
    ]
}

/// Build a column table from inserts, then apply updates and deletes (all
/// indices taken modulo the row count), leaving widened zone maps, stale
/// filter entries and dead slots behind.
fn build(
    rows: &[(i64, i64)],
    updates: &[(usize, i64, i64)],
    deletes: &[usize],
) -> Arc<ColumnTable> {
    let table = Arc::new(ColumnTable::with_chunk_size(schema(), CHUNK_SIZE));
    let mut lsn = 0u64;
    for (i, &(a, b)) in rows.iter().enumerate() {
        lsn += 1;
        table
            .apply_insert(
                &Key::int(i as i64),
                &Row::new(vec![Value::Int(i as i64), Value::Int(a), Value::Int(b)]),
                1,
                lsn,
            )
            .unwrap();
    }
    for &(i, a, b) in updates {
        let id = (i % rows.len()) as i64;
        lsn += 1;
        table
            .apply_update(
                &Key::int(id),
                &Row::new(vec![Value::Int(id), Value::Int(a), Value::Int(b)]),
                2,
                lsn,
            )
            .unwrap();
    }
    for &i in deletes {
        let id = (i % rows.len()) as i64;
        lsn += 1;
        table.apply_delete(&Key::int(id), 3, lsn).unwrap();
    }
    table
}

fn scan(table: &Arc<ColumnTable>, plan: &Plan, mode: PruningMode) -> Vec<Row> {
    let mut tables = HashMap::new();
    tables.insert("T".to_string(), Arc::clone(table));
    let source = ColumnSource::new(&tables);
    // A batch size smaller than the chunk size also exercises batch windows
    // that straddle pruned-run boundaries.
    let mut out = execute_with(plan, &source, ExecOptions::batched(5).with_pruning(mode))
        .expect("scan succeeds")
        .rows;
    // Order-insensitive comparison: sort by the primary key (column 0).
    out.sort_by(|x, y| x[0].cmp(&y[0]));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A filtered scan returns the same rows under every pruning mode, for
    /// any mutation history and any supported predicate shape.
    #[test]
    fn pruned_scan_equals_unpruned_scan(
        rows in proptest::collection::vec((-10i64..10, -10i64..10), 1..120),
        updates in proptest::collection::vec((0usize..1024, -10i64..10, -10i64..10), 0..30),
        deletes in proptest::collection::vec(0usize..1024, 0..30),
        predicate in predicate_strategy(),
    ) {
        let table = build(&rows, &updates, &deletes);
        let plan = QueryBuilder::scan_where("T", predicate.expr()).build();
        let baseline = scan(&table, &plan, PruningMode::Off);
        for mode in [PruningMode::ZoneMapOnly, PruningMode::FilterOnly, PruningMode::Both] {
            let pruned = scan(&table, &plan, mode);
            prop_assert_eq!(
                &pruned, &baseline,
                "mode {:?} diverged for predicate {:?}", mode, predicate
            );
        }
    }

    /// Unfiltered scans agree too: the only pruning opportunity is a fully
    /// deleted chunk, which must not hide surviving rows elsewhere.
    #[test]
    fn unfiltered_scan_unaffected_by_pruning(
        rows in proptest::collection::vec((-10i64..10, -10i64..10), 1..80),
        deletes in proptest::collection::vec(0usize..1024, 0..80),
    ) {
        let table = build(&rows, &[], &deletes);
        let plan = QueryBuilder::scan("T").build();
        let baseline = scan(&table, &plan, PruningMode::Off);
        let pruned = scan(&table, &plan, PruningMode::Both);
        prop_assert_eq!(pruned, baseline);
    }
}

//! Property-based tests (proptest) over the core data structures and
//! invariants of the stack: key ordering, MVCC visibility, replication
//! convergence, percentile estimation, the weighted generator and the LIKE
//! matcher.

use olxpbench::framework::stats::LatencyRecorder;
use olxpbench::framework::WeightedChoice;
use olxpbench::prelude::*;
use olxpbench::query::expr::like_match;
use olxpbench::storage::{ColumnTable, MutationOp, ReplicationLog, Replicator, RowTable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn simple_schema() -> Arc<TableSchema> {
    Arc::new(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("val", DataType::Int, false),
            ],
            vec!["id"],
        )
        .unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Composite keys order lexicographically, exactly like tuples of their
    /// components.
    #[test]
    fn key_ordering_matches_tuple_ordering(a in proptest::collection::vec(-1000i64..1000, 1..4),
                                           b in proptest::collection::vec(-1000i64..1000, 1..4)) {
        let ka = Key::ints(&a);
        let kb = Key::ints(&b);
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }

    /// Every key that starts with a prefix sorts strictly below the prefix's
    /// upper bound, and keys outside the prefix do not.
    #[test]
    fn prefix_upper_bound_brackets_all_extensions(prefix in proptest::collection::vec(0i64..100, 1..3),
                                                  suffix in proptest::collection::vec(-50i64..50, 0..3)) {
        let p = Key::ints(&prefix);
        let upper = p.prefix_upper_bound().unwrap();
        let mut extended = prefix.clone();
        extended.extend(&suffix);
        let k = Key::ints(&extended);
        prop_assert!(k >= p);
        prop_assert!(k < upper);
    }

    /// MVCC visibility: a reader at timestamp `t` sees exactly the newest
    /// version committed at or before `t`.
    #[test]
    fn mvcc_visibility_selects_newest_committed_version(updates in proptest::collection::vec(1i64..1000, 1..12),
                                                        probe in 0u64..40) {
        let table = RowTable::new(simple_schema());
        table
            .insert(Row::new(vec![Value::Int(1), Value::Int(0)]), 1)
            .unwrap();
        // Version k is committed at timestamp 2*(k+1).
        for (k, value) in updates.iter().enumerate() {
            table
                .update(
                    &Key::int(1),
                    Row::new(vec![Value::Int(1), Value::Int(*value)]),
                    2 * (k as u64 + 1),
                )
                .unwrap();
        }
        let visible = table.get(&Key::int(1), probe);
        if probe == 0 {
            prop_assert!(visible.is_none());
        } else {
            // The newest update with commit_ts <= probe, if any; otherwise the insert.
            let newest = updates
                .iter()
                .enumerate()
                .filter(|(k, _)| 2 * (*k as u64 + 1) <= probe)
                .map(|(_, v)| *v)
                .next_back()
                .unwrap_or(0);
            prop_assert_eq!(visible.unwrap()[1].clone(), Value::Int(newest));
        }
    }

    /// Replication convergence: applying the log reproduces the row store's
    /// live contents in the column store, regardless of the operation mix.
    #[test]
    fn replication_converges_to_row_store_contents(ops in proptest::collection::vec((0u8..3, 0i64..20, -100i64..100), 1..60)) {
        let schema = simple_schema();
        let row_table = RowTable::new(Arc::clone(&schema));
        let col_table = Arc::new(ColumnTable::new(Arc::clone(&schema)));
        let log = Arc::new(ReplicationLog::new());
        let mut replicator = Replicator::new(Arc::clone(&log));
        replicator.register("T", Arc::clone(&col_table));

        let mut ts = 1u64;
        for (op, id, val) in ops {
            ts += 1;
            let key = Key::int(id);
            let row = Row::new(vec![Value::Int(id), Value::Int(val)]);
            match op {
                0 => {
                    if row_table.get(&key, ts).is_none()
                        && row_table.insert(row.clone(), ts).is_ok()
                    {
                        log.append("T", MutationOp::Insert, key, Some(row), ts);
                    }
                }
                1 => {
                    if row_table.get(&key, ts).is_some()
                        && row_table.update(&key, row.clone(), ts).is_ok()
                    {
                        log.append("T", MutationOp::Update, key, Some(row), ts);
                    }
                }
                _ => {
                    if row_table.get(&key, ts).is_some() && row_table.delete(&key, ts).is_ok() {
                        log.append("T", MutationOp::Delete, key, None, ts);
                    }
                }
            }
        }
        replicator.catch_up().unwrap();
        prop_assert_eq!(log.lag_records(), 0);
        prop_assert_eq!(col_table.live_row_count(), row_table.live_row_count(ts + 1));

        // Every live row matches the replica's image.
        let mut mismatch = false;
        row_table.scan(ts + 1, |key, row| {
            let mut found = false;
            col_table.scan_rows(|crow| {
                if &schema.primary_key_of(crow) == key {
                    found = crow == row.as_ref();
                }
            });
            if !found {
                mismatch = true;
            }
        });
        prop_assert!(!mismatch, "columnar replica diverged from the row store");
    }

    /// The histogram-backed quantile estimator stays within its advertised
    /// relative error of an exact sorted nearest-rank lookup, never reports
    /// below the true value, and keeps min/max/mean exact.
    #[test]
    fn latency_quantiles_match_exact_sort(samples in proptest::collection::vec(1u64..10_000_000, 1..300),
                                          q in 0.0f64..1.0) {
        let mut recorder = LatencyRecorder::new();
        for &s in &samples {
            recorder.record_nanos(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let got = recorder.quantile_nanos(q);
        prop_assert!(got >= truth, "reported {got} below exact nearest-rank {truth}");
        let err = (got as f64 - truth as f64) / truth as f64;
        prop_assert!(
            err <= olxp_trace::HIST_MAX_RELATIVE_ERROR,
            "q={}: got {}, truth {}, err {}", q, got, truth, err
        );
        prop_assert_eq!(recorder.min_nanos(), *sorted.first().unwrap());
        prop_assert_eq!(recorder.max_nanos(), *sorted.last().unwrap());
        prop_assert!(recorder.mean_nanos() >= recorder.min_nanos() as f64 - 1e-9);
        prop_assert!(recorder.mean_nanos() <= recorder.max_nanos() as f64 + 1e-9);
    }

    /// Throughput is samples divided by the window, independent of sample values.
    #[test]
    fn throughput_is_count_over_window(samples in proptest::collection::vec(1u64..1_000_000, 0..100),
                                       millis in 1u64..10_000) {
        let mut recorder = LatencyRecorder::new();
        for &s in &samples {
            recorder.record_nanos(s);
        }
        let window = Duration::from_millis(millis);
        let expected = samples.len() as f64 / window.as_secs_f64();
        prop_assert!((recorder.throughput(window) - expected).abs() < 1e-6);
    }

    /// The weighted generator never picks zero-weight entries and covers every
    /// positive-weight entry given enough draws.
    #[test]
    fn weighted_choice_respects_zero_weights(weights in proptest::collection::vec(0u32..5, 1..8), seed in 0u64..1000) {
        prop_assume!(weights.iter().any(|&w| w > 0));
        let choice = WeightedChoice::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = vec![false; weights.len()];
        for _ in 0..500 {
            let picked = choice.pick(&mut rng);
            prop_assert!(weights[picked] > 0, "picked zero-weight entry {picked}");
            seen[picked] = true;
        }
        for (i, &w) in weights.iter().enumerate() {
            if w > 0 && weights.iter().filter(|&&x| x > 0).count() <= 3 {
                prop_assert!(seen[i], "entry {i} with weight {w} never picked in 500 draws");
            }
        }
    }

    /// The LIKE matcher agrees with a simple contains/prefix/suffix oracle for
    /// the pattern shapes the workloads use.
    #[test]
    fn like_matcher_agrees_with_oracle(text in "[a-c]{0,12}", needle in "[a-c]{0,4}") {
        prop_assert_eq!(like_match(&text, &format!("%{needle}%")), text.contains(&needle));
        prop_assert_eq!(like_match(&text, &format!("{needle}%")), text.starts_with(&needle));
        prop_assert_eq!(like_match(&text, &format!("%{needle}")), text.ends_with(&needle));
        prop_assert_eq!(like_match(&text, &text), true);
    }

    /// Values round-trip through decimal arithmetic without losing the scale.
    #[test]
    fn decimal_arithmetic_keeps_cent_precision(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let x = Value::Decimal(a);
        let y = Value::Decimal(b);
        prop_assert_eq!(x.checked_add(&y), Some(Value::Decimal(a + b)));
        prop_assert_eq!(x.checked_sub(&y), Some(Value::Decimal(a - b)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end engine property: after any sequence of committed balance
    /// transfers, the total amount of money in the bank is unchanged
    /// (fibenchmark's core invariant), and the columnar replicas converge to
    /// the same total.
    #[test]
    fn money_is_conserved_across_transfers(transfers in proptest::collection::vec((1i64..50, 1i64..50, 1i64..500), 1..25)) {
        let db = HybridDatabase::new(EngineConfig::dual_engine().with_time_scale(0.0)).unwrap();
        let workload = Fibenchmark::new();
        workload.create_schema(&db).unwrap();
        // A tiny bank keeps the property test fast.
        {
            use olxpbench::prelude::*;
            for custid in 1..=50i64 {
                db.load_row("ACCOUNT", Row::new(vec![Value::Int(custid), Value::Str(format!("c{custid}"))])).unwrap();
                db.load_row("SAVINGS", Row::new(vec![Value::Int(custid), Value::Decimal(10_000)])).unwrap();
                db.load_row("CHECKING", Row::new(vec![Value::Int(custid), Value::Decimal(5_000)])).unwrap();
            }
        }
        db.finish_load().unwrap();
        let session = db.session();

        let total = |db: &Arc<HybridDatabase>| -> i64 {
            let ts = db.txn_manager().oracle().read_ts();
            let mut sum = 0i64;
            for table in ["SAVINGS", "CHECKING"] {
                db.scan_table(table, ts, |_, row| {
                    if let Value::Decimal(v) = row[1] {
                        sum += v;
                    }
                })
                .unwrap();
            }
            sum
        };
        let before = total(db.database_ref());

        for (from, to, amount) in transfers {
            if from == to {
                continue;
            }
            let result = session.run_transaction(WorkClass::Oltp, 5, |s, txn| {
                let from_key = Key::int(from);
                let to_key = Key::int(to);
                let mut from_row = s.read(txn, "CHECKING", &from_key)?.expect("account exists");
                let mut to_row = s.read(txn, "CHECKING", &to_key)?.expect("account exists");
                let from_bal = match from_row[1] { Value::Decimal(v) => v, _ => 0 };
                let to_bal = match to_row[1] { Value::Decimal(v) => v, _ => 0 };
                from_row.set(1, Value::Decimal(from_bal - amount));
                to_row.set(1, Value::Decimal(to_bal + amount));
                s.update(txn, "CHECKING", &from_key, from_row)?;
                s.update(txn, "CHECKING", &to_key, to_row)?;
                Ok(())
            });
            prop_assert!(result.is_ok(), "transfer failed: {result:?}");
        }
        let after = total(db.database_ref());
        prop_assert_eq!(before, after, "money must be conserved");
    }
}

/// Helper trait to appease the closure above (sessions hand out `&Arc<HybridDatabase>`).
trait DatabaseRef {
    fn database_ref(&self) -> &Arc<HybridDatabase>;
}

impl DatabaseRef for Arc<HybridDatabase> {
    fn database_ref(&self) -> &Arc<HybridDatabase> {
        self
    }
}

fn three_col_schema() -> Arc<TableSchema> {
    Arc::new(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("grp", DataType::Int, false),
                ColumnDef::new("val", DataType::Int, false),
            ],
            vec!["id"],
        )
        .unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hash routing is a total deterministic function: every key maps to
    /// exactly one shard, the same one on every call, always in range, and a
    /// single-shard layout routes everything to shard 0.
    #[test]
    fn every_key_routes_to_exactly_one_shard_deterministically(
        keys in proptest::collection::vec(-10_000i64..10_000, 1..40),
        n_shards in 1usize..=8,
    ) {
        use olxpbench::engine::shard_of;
        for &k in &keys {
            let key = Key::int(k);
            let shard = shard_of("T", &key, n_shards);
            prop_assert!(shard < n_shards);
            prop_assert_eq!(shard, shard_of("T", &key, n_shards));
            prop_assert_eq!(shard_of("T", &key, 1), 0);
            // Composite keys route on the whole key, deterministically too.
            let composite = Key::ints(&[k, k + 1]);
            prop_assert_eq!(
                shard_of("T", &composite, n_shards),
                shard_of("T", &composite, n_shards)
            );
        }
    }

    /// The merged per-shard vectorized scan is observationally identical to
    /// the unsharded scan: for every plan shape, executing against a
    /// `ShardedRowSource` over hash-routed partitions returns the same rows
    /// as executing against one flat `RowSource` holding all of them.
    #[test]
    fn sharded_scan_batches_match_unsharded_scan_per_plan_shape(
        vals in proptest::collection::vec((0i64..8, -100i64..100), 1..60),
        n_shards in 1usize..=8,
        shape in 0u8..4,
        knob in -50i64..50,
    ) {
        use olxpbench::engine::shard_of;
        use olxpbench::query::{execute, QueryOutput, RowSource, ShardedRowSource};
        use std::collections::HashMap;

        let schema = three_col_schema();
        let unsharded = Arc::new(RowTable::new(Arc::clone(&schema)));
        let parts: Vec<Arc<RowTable>> = (0..n_shards)
            .map(|_| Arc::new(RowTable::new(Arc::clone(&schema))))
            .collect();
        for (i, &(grp, val)) in vals.iter().enumerate() {
            let id = i as i64;
            let row = Row::new(vec![Value::Int(id), Value::Int(grp), Value::Int(val)]);
            unsharded.insert(row.clone(), 1).unwrap();
            parts[shard_of("T", &Key::int(id), n_shards)].insert(row, 1).unwrap();
        }
        // Disjoint partitioning: each key is visible in exactly one shard.
        for i in 0..vals.len() {
            let key = Key::int(i as i64);
            let holders = parts.iter().filter(|p| p.get(&key, 10).is_some()).count();
            prop_assert_eq!(holders, 1, "key {} must live on exactly one shard", i);
        }

        let mut single = HashMap::new();
        single.insert("T".to_string(), Arc::clone(&unsharded));
        let sharded_maps: Vec<Arc<HashMap<String, Arc<RowTable>>>> = parts
            .iter()
            .map(|p| {
                let mut m = HashMap::new();
                m.insert("T".to_string(), Arc::clone(p));
                Arc::new(m)
            })
            .collect();
        let flat = RowSource::new(&single, 10);
        let sharded = ShardedRowSource::new(sharded_maps, 10);

        let plan = match shape {
            0 => QueryBuilder::scan_where("T", col(2).ge(lit(knob))).build(),
            1 => QueryBuilder::scan("T")
                .project(vec![col(0), col(2).add(col(1))])
                .build(),
            2 => QueryBuilder::scan("T")
                .aggregate(
                    vec![1],
                    vec![AggSpec::new(AggFunc::Count, 0), AggSpec::new(AggFunc::Sum, 2)],
                )
                .build(),
            _ => QueryBuilder::scan("T")
                .sort(vec![SortKey::desc(2), SortKey::asc(0)])
                .limit(5)
                .build(),
        };
        let flat_out = execute(&plan, &flat).unwrap();
        let sharded_out = execute(&plan, &sharded).unwrap();
        // Scan order is shard-major on one side and key-major on the other,
        // so compare as multisets of rows.
        let canon = |out: &QueryOutput| -> Vec<String> {
            let mut rows: Vec<String> = out.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(canon(&flat_out), canon(&sharded_out));
        prop_assert_eq!(flat_out.rows.len(), sharded_out.rows.len());
    }
}

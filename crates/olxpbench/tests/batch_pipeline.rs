//! Integration tests for the vectorized batch pipeline: equivalence of the
//! three read paths (row source row-at-a-time, row source batched, column
//! source batched) across every plan shape, and the late-materialization
//! guarantee on a large columnar scan.

use olxpbench::prelude::*;
use olxpbench::query::{execute_with, ColumnSource, ExecOptions, RowSource};
use olxpbench::storage::{ColumnTable, RowTable};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn orders_schema() -> Arc<TableSchema> {
    Arc::new(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("grp", DataType::Int, false),
                ColumnDef::new("val", DataType::Int, false),
            ],
            vec!["id"],
        )
        .unwrap(),
    )
}

fn dim_schema() -> Arc<TableSchema> {
    Arc::new(
        TableSchema::new(
            "D",
            vec![
                ColumnDef::new("grp", DataType::Int, false),
                ColumnDef::new("label", DataType::Str, false),
            ],
            vec!["grp"],
        )
        .unwrap(),
    )
}

/// The batched column-store aggregate never materializes a per-row tuple:
/// on a 100k-row table the executor's `rows_materialized` counter stays at
/// the single output row, while the row-at-a-time consumption of the *same*
/// physical scan pays one materialized `Row` per tuple.  This is the counter
/// assertion backing the `colstore_batch`/`vectorized` criterion benches.
#[test]
fn batched_column_aggregate_materializes_no_per_row_tuples_on_100k_rows() {
    const ROWS: i64 = 100_000;
    let table = Arc::new(ColumnTable::new(orders_schema()));
    for i in 0..ROWS {
        table
            .apply_insert(
                &Key::int(i),
                &Row::new(vec![
                    Value::Int(i),
                    Value::Int(i % 7),
                    Value::Int(i % 1_000),
                ]),
                1,
                i as u64 + 1,
            )
            .unwrap();
    }
    let mut tables = HashMap::new();
    tables.insert("T".to_string(), Arc::clone(&table));
    let source = ColumnSource::new(&tables);
    let plan = QueryBuilder::scan("T")
        .aggregate(
            vec![],
            vec![
                AggSpec::new(AggFunc::Sum, 2),
                AggSpec::new(AggFunc::Min, 2),
                AggSpec::new(AggFunc::Max, 2),
                AggSpec::new(AggFunc::Count, 0),
            ],
        )
        .build();

    let before = table.stats();
    let batched = execute_with(&plan, &source, ExecOptions::batched(1024)).unwrap();
    let mid = table.stats();
    let row_mode = execute_with(&plan, &source, ExecOptions::row_at_a_time()).unwrap();
    let after = table.stats();

    assert_eq!(batched.rows, row_mode.rows, "identical results");
    assert_eq!(batched.rows.len(), 1);

    // Both paths walked the same physical slots...
    assert_eq!(mid.slots_examined - before.slots_examined, ROWS as u64);
    assert_eq!(after.slots_examined - mid.slots_examined, ROWS as u64);
    assert_eq!(batched.stats.rows_scanned, ROWS as u64);
    assert_eq!(row_mode.stats.rows_scanned, ROWS as u64);

    // ...but only the row-at-a-time path materialized per-row tuples.
    assert_eq!(
        batched.stats.rows_materialized, 1,
        "batched path materializes only the plan root's output row"
    );
    assert!(
        row_mode.stats.rows_materialized >= ROWS as u64,
        "row-at-a-time pays a materialized row per scanned tuple"
    );
    assert_eq!(
        batched.stats.batches_scanned,
        (ROWS as u64).div_ceil(1024),
        "scan streamed in ~1024-slot chunks with a partial final batch"
    );
}

/// Build the fixture tables in both layouts.  Rows are inserted in ascending
/// primary-key order so the row store (B-tree order) and the column store
/// (slot order) iterate identically; deletes leave tombstones in the row
/// store and deselected slots in the column store.
#[allow(clippy::type_complexity)]
fn build_tables(
    rows: &[(i64, i64, i64)],
    delete_picks: &[usize],
) -> (
    HashMap<String, Arc<RowTable>>,
    HashMap<String, Arc<ColumnTable>>,
) {
    let mut by_id: Vec<(i64, i64, i64)> = Vec::new();
    for &(id, grp, val) in rows {
        if !by_id.iter().any(|&(i, _, _)| i == id) {
            by_id.push((id, grp, val));
        }
    }
    by_id.sort_unstable();

    let row_t = Arc::new(RowTable::new(orders_schema()));
    let col_t = Arc::new(ColumnTable::new(orders_schema()));
    let mut lsn = 0u64;
    for &(id, grp, val) in &by_id {
        let row = Row::new(vec![Value::Int(id), Value::Int(grp), Value::Int(val)]);
        row_t.insert(row.clone(), 1).unwrap();
        lsn += 1;
        col_t.apply_insert(&Key::int(id), &row, 1, lsn).unwrap();
    }
    for &pick in delete_picks {
        let (id, _, _) = by_id[pick % by_id.len()];
        let key = Key::int(id);
        if row_t.get(&key, 5).is_some() {
            row_t.delete(&key, 5).unwrap();
            lsn += 1;
            col_t.apply_delete(&key, 5, lsn).unwrap();
        }
    }

    let row_d = Arc::new(RowTable::new(dim_schema()));
    let col_d = Arc::new(ColumnTable::new(dim_schema()));
    for grp in 0..5i64 {
        let row = Row::new(vec![Value::Int(grp), Value::Str(format!("group-{grp}"))]);
        row_d.insert(row.clone(), 1).unwrap();
        lsn += 1;
        col_d.apply_insert(&Key::int(grp), &row, 1, lsn).unwrap();
    }

    let mut row_tables = HashMap::new();
    row_tables.insert("T".to_string(), row_t);
    row_tables.insert("D".to_string(), row_d);
    let mut col_tables = HashMap::new();
    col_tables.insert("T".to_string(), col_t);
    col_tables.insert("D".to_string(), col_d);
    (row_tables, col_tables)
}

fn plan_for_shape(shape: u8, knob: i64) -> Plan {
    match shape {
        // Pushed-down filter + residual filter operator.
        0 => QueryBuilder::scan_where("T", col(2).ge(lit(knob)))
            .filter(col(1).ne(lit(3)))
            .build(),
        // Projection with computed expressions.
        1 => QueryBuilder::scan("T")
            .project(vec![col(0), col(2).add(col(1)), col(2).mul(lit(2))])
            .build(),
        // Grouped aggregation over every aggregate function.
        2 => QueryBuilder::scan("T")
            .aggregate(
                vec![1],
                vec![
                    AggSpec::new(AggFunc::Count, 0),
                    AggSpec::new(AggFunc::Sum, 2),
                    AggSpec::new(AggFunc::Avg, 2),
                    AggSpec::new(AggFunc::Min, 2),
                    AggSpec::new(AggFunc::Max, 2),
                ],
            )
            .build(),
        // Hash joins; group values 5..8 have no dimension row, so the inner
        // and left-outer variants genuinely differ.
        3 => QueryBuilder::scan("T")
            .join(QueryBuilder::scan("D"), vec![1], vec![0], JoinKind::Inner)
            .build(),
        4 => QueryBuilder::scan("T")
            .join(
                QueryBuilder::scan("D"),
                vec![1],
                vec![0],
                JoinKind::LeftOuter,
            )
            .build(),
        // Sort (late materialization point) + limit above it.
        _ => QueryBuilder::scan("T")
            .sort(vec![SortKey::desc(2), SortKey::asc(0)])
            .limit(5)
            .build(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every plan shape returns identical rows through `RowSource`
    /// row-at-a-time, `RowSource` batched and `ColumnSource` batched —
    /// including tables with deleted slots and batch sizes that force a
    /// partial final batch.
    #[test]
    fn plan_shapes_agree_across_sources_and_scan_modes(
        rows in proptest::collection::vec((0i64..120, 0i64..8, -500i64..500), 1..60),
        delete_picks in proptest::collection::vec(0usize..120, 0..12),
        batch_size in 1usize..10,
        shape in 0u8..6,
        knob in -200i64..200,
    ) {
        let (row_tables, col_tables) = build_tables(&rows, &delete_picks);
        let plan = plan_for_shape(shape, knob);
        let row_src = RowSource::new(&row_tables, 10);
        let col_src = ColumnSource::new(&col_tables);

        let baseline = execute_with(
            &plan,
            &row_src,
            ExecOptions::row_at_a_time().with_batch_size(batch_size),
        )
        .unwrap();
        let row_batched =
            execute_with(&plan, &row_src, ExecOptions::batched(batch_size)).unwrap();
        let col_batched =
            execute_with(&plan, &col_src, ExecOptions::batched(batch_size)).unwrap();

        prop_assert_eq!(
            &row_batched.rows, &baseline.rows,
            "RowSource batched diverged (shape {}, batch_size {})", shape, batch_size
        );
        prop_assert_eq!(
            &col_batched.rows, &baseline.rows,
            "ColumnSource batched diverged (shape {}, batch_size {})", shape, batch_size
        );
        prop_assert_eq!(row_batched.stats.output_rows, baseline.stats.output_rows);
        prop_assert_eq!(col_batched.stats.output_rows, baseline.stats.output_rows);
        // The two row-source modes examine exactly the same physical keys.
        prop_assert_eq!(row_batched.stats.rows_scanned, baseline.stats.rows_scanned);
    }
}

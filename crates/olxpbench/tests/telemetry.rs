//! End-to-end telemetry tests at the benchmark level: a live run exposes
//! scrapeable `/metrics` and `/healthz` endpoints on an ephemeral port, and
//! the driver threads the sampled timeline into its `BenchmarkResult` so the
//! report layer can print the per-interval table.

use olxpbench::prelude::*;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

/// Minimal HTTP/1.1 GET against the embedded telemetry listener.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry listener");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn live_run_is_scrapeable_and_reports_a_timeline() {
    let config = EngineConfig::dual_engine()
        .with_time_scale(0.0)
        .with_telemetry_interval_ms(5)
        .with_telemetry_addr("127.0.0.1:0");
    let db = HybridDatabase::new(config).unwrap();
    let addr = db.telemetry_addr().expect("ephemeral listener bound");

    let workload = Fibenchmark::new();
    let bench = BenchConfig::oltp_only(2, 400.0, Duration::from_millis(400))
        .with_scale_factor(1)
        .with_warmup(Duration::from_millis(50));
    let driver = BenchmarkDriver::new(bench);
    driver.prepare(&db, &workload).unwrap();
    let result = driver.run(&db, &workload).unwrap();

    // The run lasted ~450ms at a 5ms cadence: the timeline must have caught
    // several intervals, rebased to the driver's observation window.
    assert!(
        result.timeline.len() >= 3,
        "expected a sampled timeline, got {} points",
        result.timeline.len()
    );
    let commits: u64 = result.timeline.iter().map(|p| p.commits).sum();
    assert!(commits > 0, "timeline should have observed commits");
    for pair in result.timeline.windows(2) {
        assert!(pair[0].t_ms < pair[1].t_ms, "timeline is monotonic");
    }
    let table = timeline_table(&result.timeline);
    assert!(table.contains("commit/s"));
    assert!(table.lines().count() >= result.timeline.len() + 2);
    assert_eq!(result.freshness_timeouts, 0);

    // The listener keeps serving after the run.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("# TYPE olxp_commits_total counter"));
    assert!(metrics.contains("olxp_up 1"));
    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "health checks pass on a clean run: {health}");
    assert!(health.starts_with("{\"healthy\":true"));
}

//! # olxpbench
//!
//! Facade crate for OLxPBench-RS: a from-scratch Rust reproduction of
//! *"OLxPBench: Real-time, Semantically Consistent, and Domain-specific are
//! Essential in Benchmarking, Designing, and Implementing HTAP Systems"*
//! (ICDE 2022).
//!
//! The crate re-exports the full public API of the workspace so that examples,
//! experiments and downstream users need a single dependency:
//!
//! * [`engine`] — the HTAP database substrate (single-engine / dual-engine /
//!   shared-nothing archetypes, cluster model, sessions, metrics);
//! * [`framework`] — the OLxPBench benchmarking framework (workload traits,
//!   hybrid transactions, open/closed-loop driver, statistics, reports,
//!   semantic-consistency checking);
//! * [`workloads`] — the benchmark suites (subenchmark, fibenchmark,
//!   tabenchmark and the CH-benCHmark stitch-schema baseline);
//! * [`storage`], [`txn`], [`query`] — the lower-level substrates, exposed for
//!   users who want to build their own engines or workloads.
//!
//! ## Quick start
//!
//! ```
//! use olxpbench::prelude::*;
//! use std::time::Duration;
//!
//! // A TiDB-like dual-engine HTAP database (no real delays in doc tests).
//! let db = HybridDatabase::new(EngineConfig::dual_engine().with_time_scale(0.0)).unwrap();
//!
//! // The banking benchmark, scaled down for a quick run.
//! let workload = Fibenchmark::new();
//! let config = BenchConfig::oltp_only(2, 200.0, Duration::from_millis(300))
//!     .with_scale_factor(1)
//!     .with_warmup(Duration::from_millis(50));
//!
//! let driver = BenchmarkDriver::new(config);
//! driver.prepare(&db, &workload).unwrap();
//! let result = driver.run(&db, &workload).unwrap();
//! assert!(result.oltp_throughput() > 0.0);
//! ```

pub use olxp_engine as engine;
pub use olxp_query as query;
pub use olxp_storage as storage;
pub use olxp_trace as trace;
pub use olxp_txn as txn;
pub use olxpbench_core as framework;
pub use olxpbench_workloads as workloads;

/// Everything needed to configure and run a benchmark.
pub mod prelude {
    pub use olxp_engine::{
        DurabilityConfig, EngineArchitecture, EngineConfig, EngineError, EngineResult,
        FreshnessPolicy, FreshnessSample, HealthCheck, HealthReport, HybridDatabase,
        RecoveryReport, Session, ShardBreakdown, SlowQueryLog, SlowQueryRecord, SlowTxnLog,
        SlowTxnRecord, SyncPolicy, TxnHandle, WalMetrics, WorkClass,
    };
    pub use olxp_query::{col, lit, AggFunc, AggSpec, JoinKind, Plan, QueryBuilder, SortKey};
    pub use olxp_storage::{
        ColumnDef, CostParams, DataType, Key, Row, StorageMedium, TableSchema, Value,
    };
    pub use olxp_trace::{
        chrome_trace_json, prometheus_text, LogHistogram, SpanCategory, SpanEvent, StageBreakdown,
        TaggedSpan, TelemetryPoint, TelemetryServer, TimeSeriesRing,
    };
    pub use olxp_txn::IsolationLevel;
    pub use olxpbench_core::{
        check_semantic_consistency, shard_table, stage_table, timeline_table, AgentConfig,
        AnalyticalQuery, BenchConfig, BenchmarkComparison, BenchmarkDriver, BenchmarkResult,
        FreshnessSummary, HybridTransaction, LatencySummary, LoopMode, OnlineTransaction,
        ShardSummary, StageSummary, TimelinePoint, TransactionMix, Workload, WorkloadFeatures,
        WorkloadKind,
    };
    pub use olxpbench_workloads::{
        olxp_suites, workload_by_name, ChBenchmark, Fibenchmark, Subenchmark, Tabenchmark,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        let config = EngineConfig::dual_engine();
        assert_eq!(config.default_isolation(), IsolationLevel::RepeatableRead);
        assert_eq!(olxp_suites().len(), 3);
        assert!(workload_by_name("tabenchmark").is_some());
    }
}

//! Data sources the executor reads from.
//!
//! A [`DataSource`] abstracts over "where do base-table rows come from":
//! [`RowSource`] reads MVCC row tables at a snapshot timestamp (the only
//! option for statements inside a transaction, including the real-time query
//! of a hybrid transaction), while [`ColumnSource`] reads the columnar
//! replicas (what the dual-engine architecture uses for standalone analytical
//! queries).

use crate::error::{QueryError, QueryResult};
use crate::prune::ChunkPruner;
use olxp_storage::{
    ColumnBatch, ColumnTable, Key, PruningMode, Row, RowTable, ScanOutcome, TableSchema, Timestamp,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Which physical store served a scan; drives the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// Row store (TiKV-like / MemSQL row store).
    RowStore,
    /// Column store (TiFlash-like / MemSQL column store).
    ColumnStore,
}

use serde::{Deserialize, Serialize};

/// A provider of base-table rows for the executor.
pub trait DataSource {
    /// Which store this source represents.
    fn kind(&self) -> SourceKind;

    /// Schema of a table.
    fn schema(&self, table: &str) -> QueryResult<Arc<TableSchema>>;

    /// Scan every visible row, calling `f` for each.  Returns the number of
    /// physical rows examined.
    ///
    /// This is the legacy row-at-a-time path; the executor's default is
    /// [`DataSource::scan_batches`].
    fn scan(&self, table: &str, f: &mut dyn FnMut(&Row)) -> QueryResult<usize>;

    /// Vectorized scan: stream the visible rows as [`ColumnBatch`]es of up to
    /// `batch_size` row slots, calling `f` for each batch.  Returns the
    /// number of physical rows examined.
    ///
    /// The column store hands out zero-copy batches (borrowed column slices
    /// with deleted slots deselected); the row store transposes visible MVCC
    /// rows into owned batches.  Either way no per-row [`Row`] is
    /// materialized at the storage/query boundary.
    fn scan_batches(
        &self,
        table: &str,
        batch_size: usize,
        f: &mut dyn FnMut(&ColumnBatch<'_>),
    ) -> QueryResult<usize>;

    /// Vectorized scan with an optional chunk pruner pushed down from the
    /// executor.  Sources with pruning structures (the column store) skip
    /// chunks that provably or probably cannot satisfy the pruner's
    /// predicate; the default implementation ignores the pruner and scans
    /// everything (the row stores have no chunk summaries), reporting the
    /// examined slots with zeroed chunk counters.
    fn scan_batches_pruned(
        &self,
        table: &str,
        batch_size: usize,
        _pruner: Option<&ChunkPruner>,
        f: &mut dyn FnMut(&ColumnBatch<'_>),
    ) -> QueryResult<ScanOutcome> {
        let slots_examined = self.scan_batches(table, batch_size, f)?;
        Ok(ScanOutcome {
            slots_examined,
            ..ScanOutcome::default()
        })
    }

    /// Look up rows by an index (or primary-key) prefix.  Returns the matching
    /// rows and the number of physical entries examined.
    fn index_lookup(
        &self,
        table: &str,
        index: Option<usize>,
        prefix: &Key,
    ) -> QueryResult<(Vec<Row>, usize)>;
}

/// [`DataSource`] over MVCC row tables at a fixed snapshot.
pub struct RowSource<'a> {
    tables: &'a HashMap<String, Arc<RowTable>>,
    read_ts: Timestamp,
}

impl<'a> RowSource<'a> {
    /// Create a source reading the given tables at `read_ts`.
    pub fn new(tables: &'a HashMap<String, Arc<RowTable>>, read_ts: Timestamp) -> RowSource<'a> {
        RowSource { tables, read_ts }
    }

    fn table(&self, name: &str) -> QueryResult<&Arc<RowTable>> {
        self.tables.get(name).ok_or_else(|| {
            QueryError::Storage(olxp_storage::StorageError::TableNotFound(name.into()))
        })
    }
}

impl DataSource for RowSource<'_> {
    fn kind(&self) -> SourceKind {
        SourceKind::RowStore
    }

    fn schema(&self, table: &str) -> QueryResult<Arc<TableSchema>> {
        Ok(Arc::clone(self.table(table)?.schema()))
    }

    fn scan(&self, table: &str, f: &mut dyn FnMut(&Row)) -> QueryResult<usize> {
        let t = self.table(table)?;
        let examined = t.scan(self.read_ts, |_, row| f(row));
        Ok(examined)
    }

    fn scan_batches(
        &self,
        table: &str,
        batch_size: usize,
        f: &mut dyn FnMut(&ColumnBatch<'_>),
    ) -> QueryResult<usize> {
        let t = self.table(table)?;
        Ok(t.scan_batches(self.read_ts, batch_size, |batch| f(&batch)))
    }

    fn index_lookup(
        &self,
        table: &str,
        index: Option<usize>,
        prefix: &Key,
    ) -> QueryResult<(Vec<Row>, usize)> {
        let t = self.table(table)?;
        match index {
            None => {
                let mut rows = Vec::new();
                let examined = t.prefix_scan(prefix, self.read_ts, |_, row| {
                    rows.push(Row::clone(row));
                });
                Ok((rows, examined.max(1)))
            }
            Some(pos) => {
                let (pairs, examined) = t.index_lookup(pos, prefix, self.read_ts)?;
                Ok((
                    pairs.into_iter().map(|(_, row)| Row::clone(&row)).collect(),
                    examined,
                ))
            }
        }
    }
}

/// [`DataSource`] over the per-shard partitions of hash-partitioned MVCC row
/// tables, all read at one snapshot.
///
/// Each shard owns a disjoint slice of every table's keys, so a scan is the
/// concatenation of the per-shard scans (shard-major order) and an index
/// lookup is the union of the per-shard lookups.  With one shard this is
/// exactly [`RowSource`].
pub struct ShardedRowSource {
    shards: Vec<Arc<HashMap<String, Arc<RowTable>>>>,
    read_ts: Timestamp,
}

impl ShardedRowSource {
    /// Create a source reading every shard's partition at `read_ts`.
    pub fn new(
        shards: Vec<Arc<HashMap<String, Arc<RowTable>>>>,
        read_ts: Timestamp,
    ) -> ShardedRowSource {
        ShardedRowSource { shards, read_ts }
    }

    fn partitions(&self, name: &str) -> QueryResult<Vec<&Arc<RowTable>>> {
        let parts: Vec<&Arc<RowTable>> = self
            .shards
            .iter()
            .filter_map(|tables| tables.get(name))
            .collect();
        if parts.is_empty() {
            return Err(QueryError::Storage(
                olxp_storage::StorageError::TableNotFound(name.into()),
            ));
        }
        Ok(parts)
    }
}

impl DataSource for ShardedRowSource {
    fn kind(&self) -> SourceKind {
        SourceKind::RowStore
    }

    fn schema(&self, table: &str) -> QueryResult<Arc<TableSchema>> {
        Ok(Arc::clone(self.partitions(table)?[0].schema()))
    }

    fn scan(&self, table: &str, f: &mut dyn FnMut(&Row)) -> QueryResult<usize> {
        let mut examined = 0;
        for part in self.partitions(table)? {
            examined += part.scan(self.read_ts, |_, row| f(row));
        }
        Ok(examined)
    }

    fn scan_batches(
        &self,
        table: &str,
        batch_size: usize,
        f: &mut dyn FnMut(&ColumnBatch<'_>),
    ) -> QueryResult<usize> {
        let mut examined = 0;
        for part in self.partitions(table)? {
            examined += part.scan_batches(self.read_ts, batch_size, |batch| f(&batch));
        }
        Ok(examined)
    }

    fn index_lookup(
        &self,
        table: &str,
        index: Option<usize>,
        prefix: &Key,
    ) -> QueryResult<(Vec<Row>, usize)> {
        let mut rows = Vec::new();
        let mut examined = 0;
        for part in self.partitions(table)? {
            match index {
                None => {
                    examined += part.prefix_scan(prefix, self.read_ts, |_, row| {
                        rows.push(Row::clone(row));
                    });
                }
                Some(pos) => {
                    let (pairs, scanned) = part.index_lookup(pos, prefix, self.read_ts)?;
                    rows.extend(pairs.into_iter().map(|(_, row)| Row::clone(&row)));
                    examined += scanned;
                }
            }
        }
        Ok((rows, examined.max(1)))
    }
}

/// [`DataSource`] over columnar replicas (latest replicated state).
pub struct ColumnSource<'a> {
    tables: &'a HashMap<String, Arc<ColumnTable>>,
}

impl<'a> ColumnSource<'a> {
    /// Create a source reading the given columnar tables.
    pub fn new(tables: &'a HashMap<String, Arc<ColumnTable>>) -> ColumnSource<'a> {
        ColumnSource { tables }
    }

    fn table(&self, name: &str) -> QueryResult<&Arc<ColumnTable>> {
        self.tables.get(name).ok_or_else(|| {
            QueryError::Storage(olxp_storage::StorageError::TableNotFound(name.into()))
        })
    }
}

impl DataSource for ColumnSource<'_> {
    fn kind(&self) -> SourceKind {
        SourceKind::ColumnStore
    }

    fn schema(&self, table: &str) -> QueryResult<Arc<TableSchema>> {
        Ok(Arc::clone(self.table(table)?.schema()))
    }

    fn scan(&self, table: &str, f: &mut dyn FnMut(&Row)) -> QueryResult<usize> {
        let t = self.table(table)?;
        Ok(t.scan_rows(|row| f(row)))
    }

    fn scan_batches(
        &self,
        table: &str,
        batch_size: usize,
        f: &mut dyn FnMut(&ColumnBatch<'_>),
    ) -> QueryResult<usize> {
        let t = self.table(table)?;
        Ok(t.scan_batches(None, batch_size, |batch| f(batch)))
    }

    fn scan_batches_pruned(
        &self,
        table: &str,
        batch_size: usize,
        pruner: Option<&ChunkPruner>,
        f: &mut dyn FnMut(&ColumnBatch<'_>),
    ) -> QueryResult<ScanOutcome> {
        let t = self.table(table)?;
        // Without a pruner the scan still runs through the chunked path so
        // chunk counters stay populated, but nothing is skipped.  With one,
        // the pruner's predicate both skips chunks (zone maps, fingerprint
        // filters) and, inside surviving compressed main-tier chunks, runs
        // directly on the encoded columns so non-matching rows never decode
        // (reported as `rows_pruned_encoded`).  Both are sound because the
        // predicate is a necessary condition and the executor re-applies its
        // full residual filter to every row either way.
        let (predicate, mode) = match pruner {
            Some(p) => (Some(p.predicate()), p.mode()),
            None => (None, PruningMode::Off),
        };
        Ok(t.scan_batches_pruned(None, batch_size, predicate, mode, |batch| f(batch)))
    }

    fn index_lookup(
        &self,
        table: &str,
        _index: Option<usize>,
        prefix: &Key,
    ) -> QueryResult<(Vec<Row>, usize)> {
        // Column stores have no secondary indexes: an "index lookup" is served
        // by scanning and filtering on the primary-key prefix, exactly the way
        // TiFlash answers selective predicates.  The scan runs over batches
        // and only materializes the rows whose key matches.
        let t = self.table(table)?;
        let schema = t.schema();
        let pk = schema.primary_key().to_vec();
        let mut rows = Vec::new();
        let examined = t.scan_batches(None, olxp_storage::DEFAULT_BATCH_SIZE, |batch| {
            for slot in batch.selected_rows() {
                let key = Key::new(pk.iter().map(|&i| batch.column(i)[slot].clone()).collect());
                if key.starts_with(prefix) {
                    let mut values = Vec::with_capacity(batch.width());
                    batch.gather_row_into(slot, &mut values);
                    rows.push(Row::new(values));
                }
            }
        });
        Ok((rows, examined.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_storage::{ColumnDef, DataType, Value};

    fn schema() -> Arc<TableSchema> {
        Arc::new(
            TableSchema::new(
                "ITEM",
                vec![
                    ColumnDef::new("i_id", DataType::Int, false),
                    ColumnDef::new("i_price", DataType::Decimal, false),
                ],
                vec!["i_id"],
            )
            .unwrap(),
        )
    }

    #[test]
    fn row_source_scans_at_snapshot() {
        let table = Arc::new(RowTable::new(schema()));
        for i in 0..5 {
            table
                .insert(Row::new(vec![Value::Int(i), Value::Decimal(i * 10)]), 10)
                .unwrap();
        }
        table
            .insert(Row::new(vec![Value::Int(99), Value::Decimal(1)]), 20)
            .unwrap();
        let mut tables = HashMap::new();
        tables.insert("ITEM".to_string(), Arc::clone(&table));

        let source = RowSource::new(&tables, 15);
        let mut count = 0;
        source.scan("ITEM", &mut |_| count += 1).unwrap();
        assert_eq!(count, 5, "row committed at ts 20 is invisible at ts 15");
        assert_eq!(source.kind(), SourceKind::RowStore);

        let (rows, examined) = source.index_lookup("ITEM", None, &Key::int(3)).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(examined >= 1);
    }

    #[test]
    fn column_source_prefix_lookup_scans_and_filters() {
        let table = Arc::new(ColumnTable::new(schema()));
        for i in 0..5 {
            table
                .apply_insert(
                    &Key::int(i),
                    &Row::new(vec![Value::Int(i), Value::Decimal(i * 10)]),
                    5,
                    i as u64 + 1,
                )
                .unwrap();
        }
        let mut tables = HashMap::new();
        tables.insert("ITEM".to_string(), Arc::clone(&table));
        let source = ColumnSource::new(&tables);
        assert_eq!(source.kind(), SourceKind::ColumnStore);
        let (rows, examined) = source.index_lookup("ITEM", None, &Key::int(2)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(examined, 5, "column store answers lookups by scanning");
    }

    #[test]
    fn sharded_source_merges_partition_scans() {
        let mut shards = Vec::new();
        for shard in 0..2u64 {
            let table = Arc::new(RowTable::new(schema()));
            for i in 0..3u64 {
                let id = (shard * 100 + i) as i64;
                table
                    .insert(Row::new(vec![Value::Int(id), Value::Decimal(id)]), 10)
                    .unwrap();
            }
            let mut tables = HashMap::new();
            tables.insert("ITEM".to_string(), table);
            shards.push(Arc::new(tables));
        }
        let source = ShardedRowSource::new(shards, 15);
        assert_eq!(source.kind(), SourceKind::RowStore);
        let mut count = 0;
        source.scan("ITEM", &mut |_| count += 1).unwrap();
        assert_eq!(count, 6, "scan concatenates every shard's partition");
        let mut batched = 0;
        source
            .scan_batches("ITEM", 4, &mut |b| batched += b.selected_rows().count())
            .unwrap();
        assert_eq!(batched, 6);
        let (rows, _) = source.index_lookup("ITEM", None, &Key::int(101)).unwrap();
        assert_eq!(rows.len(), 1, "lookup unions per-shard results");
        assert!(source.scan("NOPE", &mut |_| {}).is_err());
    }

    #[test]
    fn unknown_table_is_an_error() {
        let tables = HashMap::new();
        let source = RowSource::new(&tables, 1);
        assert!(source.scan("NOPE", &mut |_| {}).is_err());
        assert!(source.schema("NOPE").is_err());
    }
}

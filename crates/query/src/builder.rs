//! Fluent plan builder used by the workloads.

use crate::expr::Expr;
use crate::plan::{AggSpec, JoinKind, Plan, SortKey};
use olxp_storage::Key;

/// Builds [`Plan`] trees with a fluent API.
///
/// ```
/// use olxp_query::{QueryBuilder, col, lit, AggFunc};
/// use olxp_query::plan::{AggSpec, SortKey};
///
/// // SELECT o_cid, COUNT(*), SUM(o_amount) FROM ORDERS
/// // WHERE o_amount > 1.00 GROUP BY o_cid ORDER BY o_cid;
/// let plan = QueryBuilder::scan("ORDERS")
///     .filter(col(2).gt(lit(100)))
///     .aggregate(vec![1], vec![AggSpec::new(AggFunc::Count, 0), AggSpec::new(AggFunc::Sum, 2)])
///     .sort(vec![SortKey::asc(0)])
///     .build();
/// assert_eq!(plan.referenced_tables(), vec!["ORDERS"]);
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    plan: Plan,
}

impl QueryBuilder {
    /// Start from a full table scan.
    pub fn scan(table: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            plan: Plan::TableScan {
                table: table.into(),
                filter: None,
            },
        }
    }

    /// Start from a full table scan with a pushed-down filter.
    pub fn scan_where(table: impl Into<String>, filter: Expr) -> QueryBuilder {
        QueryBuilder {
            plan: Plan::TableScan {
                table: table.into(),
                filter: Some(filter),
            },
        }
    }

    /// Start from an index lookup (`index = None` means the primary key).
    pub fn index_scan(table: impl Into<String>, index: Option<usize>, prefix: Key) -> QueryBuilder {
        QueryBuilder {
            plan: Plan::IndexScan {
                table: table.into(),
                index,
                prefix,
                filter: None,
            },
        }
    }

    /// Wrap an existing plan.
    pub fn from_plan(plan: Plan) -> QueryBuilder {
        QueryBuilder { plan }
    }

    /// Add a filter operator.
    pub fn filter(self, predicate: Expr) -> QueryBuilder {
        QueryBuilder {
            plan: Plan::Filter {
                input: Box::new(self.plan),
                predicate,
            },
        }
    }

    /// Add a projection operator.
    pub fn project(self, exprs: Vec<Expr>) -> QueryBuilder {
        QueryBuilder {
            plan: Plan::Project {
                input: Box::new(self.plan),
                exprs,
            },
        }
    }

    /// Join with another plan on column equality.
    pub fn join(
        self,
        other: QueryBuilder,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        kind: JoinKind,
    ) -> QueryBuilder {
        QueryBuilder {
            plan: Plan::Join {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
                left_keys,
                right_keys,
                kind,
            },
        }
    }

    /// Group-by aggregation.
    pub fn aggregate(self, group_by: Vec<usize>, aggregates: Vec<AggSpec>) -> QueryBuilder {
        QueryBuilder {
            plan: Plan::Aggregate {
                input: Box::new(self.plan),
                group_by,
                aggregates,
            },
        }
    }

    /// Sort by the given keys.
    pub fn sort(self, keys: Vec<SortKey>) -> QueryBuilder {
        QueryBuilder {
            plan: Plan::Sort {
                input: Box::new(self.plan),
                keys,
            },
        }
    }

    /// Keep only the first `n` rows.
    pub fn limit(self, n: usize) -> QueryBuilder {
        QueryBuilder {
            plan: Plan::Limit {
                input: Box::new(self.plan),
                limit: n,
            },
        }
    }

    /// Finish building and return the plan.
    pub fn build(self) -> Plan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, AggFunc};

    #[test]
    fn builder_produces_expected_tree() {
        let plan = QueryBuilder::scan("ACCOUNT")
            .join(
                QueryBuilder::scan("CHECKING"),
                vec![0],
                vec![0],
                JoinKind::Inner,
            )
            .filter(col(2).gt(lit(0)))
            .aggregate(vec![0], vec![AggSpec::new(AggFunc::Avg, 2)])
            .sort(vec![SortKey::desc(1)])
            .limit(10)
            .build();
        assert_eq!(plan.join_count(), 1);
        assert_eq!(plan.referenced_tables(), vec!["ACCOUNT", "CHECKING"]);
        assert!(plan.has_full_scan());
        match plan {
            Plan::Limit { limit, .. } => assert_eq!(limit, 10),
            other => panic!("expected Limit at the root, got {other:?}"),
        }
    }

    #[test]
    fn scan_where_pushes_filter_down() {
        let plan = QueryBuilder::scan_where("ITEM", col(0).eq(lit(1))).build();
        match plan {
            Plan::TableScan { filter, .. } => assert!(filter.is_some()),
            other => panic!("expected TableScan, got {other:?}"),
        }
    }
}

//! # olxp-query
//!
//! Query substrate for OLxPBench-RS.
//!
//! The OLxPBench workloads contain three kinds of statements (paper §IV-B):
//!
//! * **online transaction statements** — point reads, short range scans and
//!   single-row writes; these are executed directly through the engine's
//!   session API and do not need a query plan;
//! * **analytical queries** — multi-join, aggregation, grouping and sorting
//!   over a semantically consistent schema;
//! * **real-time queries** — simpler aggregates (and one fuzzy search) executed
//!   *inside* a hybrid transaction.
//!
//! This crate provides the expression language ([`expr::Expr`]), the logical
//! plan ([`plan::Plan`]) and an executor ([`exec::execute`]) that runs a plan
//! against any [`source::DataSource`].  Two data sources are provided:
//! [`source::RowSource`] (over MVCC row tables, used for statements that must
//! run on the row engine — every statement of a hybrid transaction) and
//! [`source::ColumnSource`] (over columnar replicas, used for standalone
//! analytical queries on the dual-engine architecture).
//!
//! The executor reports [`exec::ExecStats`] — physical rows scanned, join
//! probes, aggregate inputs, sort sizes — which the engine feeds into the cost
//! model to derive service times.

pub mod builder;
pub mod error;
pub mod exec;
pub mod expr;
pub mod plan;
pub mod prune;
pub mod source;

pub use builder::QueryBuilder;
pub use error::{QueryError, QueryResult};
pub use exec::{execute, execute_with, ExecOptions, ExecStats, QueryOutput, ScanMode};
pub use expr::{col, lit, AggFunc, Expr, ValueAccess};
pub use plan::{AggSpec, JoinKind, Plan, SortKey};
pub use prune::{extract_sargable, ChunkPruner};
pub use source::{ColumnSource, DataSource, RowSource, ShardedRowSource, SourceKind};

//! Query-layer errors.

use olxp_storage::StorageError;
use std::fmt;

/// Result alias for query operations.
pub type QueryResult<T> = Result<T, QueryError>;

/// Errors produced while planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A plan referenced a column position that the input does not have.
    ColumnOutOfRange {
        /// The requested position.
        position: usize,
        /// The width of the input rows.
        width: usize,
    },
    /// An expression was applied to values of the wrong type.
    TypeError(String),
    /// The plan is malformed (e.g. aggregate without aggregates).
    InvalidPlan(String),
    /// Error bubbled up from storage.
    Storage(StorageError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::ColumnOutOfRange { position, width } => {
                write!(
                    f,
                    "column #{position} out of range for row of width {width}"
                )
            }
            QueryError::TypeError(msg) => write!(f, "type error: {msg}"),
            QueryError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_positions() {
        let e = QueryError::ColumnOutOfRange {
            position: 9,
            width: 3,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn storage_error_converts() {
        let e: QueryError = StorageError::TableNotFound("ORDERS".into()).into();
        assert!(matches!(e, QueryError::Storage(_)));
    }
}

//! Scalar expressions evaluated over rows.

use crate::error::{QueryError, QueryResult};
use olxp_storage::Value;
use serde::{Deserialize, Serialize};

/// Aggregate functions supported by [`crate::plan::Plan::Aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// COUNT of non-null inputs (COUNT(*) when applied to a never-null column).
    Count,
    /// SUM of numeric inputs.
    Sum,
    /// Arithmetic mean of numeric inputs.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Row-shaped access to values by column position.
///
/// Expressions evaluate against anything that can resolve a column position
/// to a value: a materialized row slice, or one selected slot of a
/// [`olxp_storage::ColumnBatch`] (the executor's vectorized representation,
/// where the "row" is a position across column vectors and no tuple is ever
/// materialized).
pub trait ValueAccess {
    /// Number of columns the row exposes.
    fn width(&self) -> usize;
    /// Borrow the value at `pos`, or `None` when out of range.
    fn value_at(&self, pos: usize) -> Option<&Value>;
}

impl ValueAccess for [Value] {
    fn width(&self) -> usize {
        self.len()
    }

    fn value_at(&self, pos: usize) -> Option<&Value> {
        self.get(pos)
    }
}

/// A scalar expression over a row.
///
/// Columns are referenced by position within the input row of the operator
/// evaluating the expression (after joins the right side's columns follow the
/// left side's).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// The value of the column at a position.
    Column(usize),
    /// A literal value.
    Literal(Value),
    /// Equality comparison.
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality comparison.
    Ne(Box<Expr>, Box<Expr>),
    /// Less-than comparison.
    Lt(Box<Expr>, Box<Expr>),
    /// Less-or-equal comparison.
    Le(Box<Expr>, Box<Expr>),
    /// Greater-than comparison.
    Gt(Box<Expr>, Box<Expr>),
    /// Greater-or-equal comparison.
    Ge(Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// SQL LIKE with `%` wildcards — the fuzzy-search operator used by
    /// tabenchmark's Fuzzy Search Transaction (X6).
    Like(Box<Expr>, String),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication (through f64).
    Mul(Box<Expr>, Box<Expr>),
    /// Division (through f64); division by zero yields NULL.
    Div(Box<Expr>, Box<Expr>),
    /// True when the operand is NULL.
    IsNull(Box<Expr>),
}

impl Expr {
    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(other))
    }
    /// `self <> other`
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Ne(Box::new(self), Box::new(other))
    }
    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Lt(Box::new(self), Box::new(other))
    }
    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::Le(Box::new(self), Box::new(other))
    }
    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Gt(Box::new(self), Box::new(other))
    }
    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Ge(Box::new(self), Box::new(other))
    }
    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }
    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }
    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self LIKE pattern` (with `%` wildcards).
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like(Box::new(self), pattern.into())
    }
    /// `self + other`
    // The arithmetic builders intentionally mirror the SQL expression DSL
    // (`col("a").add(col("b"))`); taking `Expr` by value and returning `Expr`
    // also matches the std::ops signatures, so clippy flags the names. The
    // workload suites build expressions through these names, and implementing
    // the operator traits instead would change how every call site resolves.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }
    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }
    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }
    /// `self / other`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(other))
    }
    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// Evaluate against a row of values.
    pub fn eval(&self, row: &[Value]) -> QueryResult<Value> {
        self.eval_access(row)
    }

    /// Evaluate against any [`ValueAccess`] row representation (materialized
    /// slice or batch slot).
    pub fn eval_access<A: ValueAccess + ?Sized>(&self, row: &A) -> QueryResult<Value> {
        match self {
            Expr::Column(pos) => row
                .value_at(*pos)
                .cloned()
                .ok_or(QueryError::ColumnOutOfRange {
                    position: *pos,
                    width: row.width(),
                }),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Eq(a, b) => cmp(a, b, row, |o| o == std::cmp::Ordering::Equal),
            Expr::Ne(a, b) => cmp(a, b, row, |o| o != std::cmp::Ordering::Equal),
            Expr::Lt(a, b) => cmp(a, b, row, |o| o == std::cmp::Ordering::Less),
            Expr::Le(a, b) => cmp(a, b, row, |o| o != std::cmp::Ordering::Greater),
            Expr::Gt(a, b) => cmp(a, b, row, |o| o == std::cmp::Ordering::Greater),
            Expr::Ge(a, b) => cmp(a, b, row, |o| o != std::cmp::Ordering::Less),
            Expr::And(a, b) => {
                let a = a.eval_access(row)?.as_bool().unwrap_or(false);
                if !a {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(b.eval_access(row)?.as_bool().unwrap_or(false)))
            }
            Expr::Or(a, b) => {
                let a = a.eval_access(row)?.as_bool().unwrap_or(false);
                if a {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(b.eval_access(row)?.as_bool().unwrap_or(false)))
            }
            Expr::Not(e) => Ok(Value::Bool(!e.eval_access(row)?.as_bool().unwrap_or(false))),
            Expr::Like(e, pattern) => {
                let v = e.eval_access(row)?;
                match v {
                    Value::Null => Ok(Value::Bool(false)),
                    Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern))),
                    other => Err(QueryError::TypeError(format!(
                        "LIKE applied to non-string value {other}"
                    ))),
                }
            }
            Expr::Add(a, b) => arith(a, b, row, Value::checked_add),
            Expr::Sub(a, b) => arith(a, b, row, Value::checked_sub),
            Expr::Mul(a, b) => float_arith(a, b, row, |x, y| Some(x * y)),
            Expr::Div(a, b) => {
                float_arith(a, b, row, |x, y| if y == 0.0 { None } else { Some(x / y) })
            }
            Expr::IsNull(e) => Ok(Value::Bool(e.eval_access(row)?.is_null())),
        }
    }

    /// Evaluate as a boolean predicate (NULL and non-boolean results are
    /// treated as false, matching SQL's WHERE semantics).
    pub fn matches(&self, row: &[Value]) -> QueryResult<bool> {
        self.matches_access(row)
    }

    /// [`Expr::matches`] over any [`ValueAccess`] row representation.
    pub fn matches_access<A: ValueAccess + ?Sized>(&self, row: &A) -> QueryResult<bool> {
        Ok(self.eval_access(row)?.as_bool().unwrap_or(false))
    }
}

fn cmp<A: ValueAccess + ?Sized>(
    a: &Expr,
    b: &Expr,
    row: &A,
    f: impl Fn(std::cmp::Ordering) -> bool,
) -> QueryResult<Value> {
    let a = a.eval_access(row)?;
    let b = b.eval_access(row)?;
    if a.is_null() || b.is_null() {
        return Ok(Value::Bool(false));
    }
    Ok(Value::Bool(f(a.cmp(&b))))
}

fn arith<A: ValueAccess + ?Sized>(
    a: &Expr,
    b: &Expr,
    row: &A,
    f: impl Fn(&Value, &Value) -> Option<Value>,
) -> QueryResult<Value> {
    let a = a.eval_access(row)?;
    let b = b.eval_access(row)?;
    f(&a, &b)
        .ok_or_else(|| QueryError::TypeError(format!("cannot apply arithmetic to {a} and {b}")))
}

fn float_arith<A: ValueAccess + ?Sized>(
    a: &Expr,
    b: &Expr,
    row: &A,
    f: impl Fn(f64, f64) -> Option<f64>,
) -> QueryResult<Value> {
    let av = a.eval_access(row)?;
    let bv = b.eval_access(row)?;
    if av.is_null() || bv.is_null() {
        return Ok(Value::Null);
    }
    let (x, y) = match (av.as_f64(), bv.as_f64()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(QueryError::TypeError(format!(
                "cannot apply arithmetic to {av} and {bv}"
            )))
        }
    };
    Ok(f(x, y).map_or(Value::Null, Value::Float))
}

/// Simple SQL LIKE matcher supporting `%` (any run of characters).  `_` is not
/// needed by the workloads and is treated as a literal underscore.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[u8], p: &[u8]) -> bool {
        if p.is_empty() {
            return t.is_empty();
        }
        if p[0] == b'%' {
            // Collapse consecutive '%'.
            let rest = &p[1..];
            if rest.is_empty() {
                return true;
            }
            (0..=t.len()).any(|i| rec(&t[i..], rest))
        } else {
            !t.is_empty() && t[0] == p[0] && rec(&t[1..], &p[1..])
        }
    }
    rec(text.as_bytes(), pattern.as_bytes())
}

/// Column reference helper: `col(2)`.
pub fn col(position: usize) -> Expr {
    Expr::Column(position)
}

/// Literal helper: `lit(5)`, `lit("abc")`.
pub fn lit(value: impl Into<Value>) -> Expr {
    Expr::Literal(value.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::Str("widget-42".into()),
            Value::Decimal(995),
            Value::Null,
        ]
    }

    #[test]
    fn comparisons() {
        let r = row();
        assert_eq!(col(0).eq(lit(10)).eval(&r).unwrap(), Value::Bool(true));
        assert_eq!(col(0).lt(lit(11)).eval(&r).unwrap(), Value::Bool(true));
        assert_eq!(
            col(2).ge(lit(Value::Decimal(995))).eval(&r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(col(0).gt(lit(10)).eval(&r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn null_comparisons_are_false() {
        let r = row();
        assert_eq!(col(3).eq(lit(1)).eval(&r).unwrap(), Value::Bool(false));
        assert_eq!(col(3).is_null().eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn boolean_connectives_short_circuit() {
        let r = row();
        let e = col(0).eq(lit(10)).and(col(1).like("widget%"));
        assert!(e.matches(&r).unwrap());
        let e = col(0).eq(lit(11)).or(col(1).like("%42"));
        assert!(e.matches(&r).unwrap());
        let e = col(0).eq(lit(11)).and(col(99).eq(lit(1)));
        // Short circuit: the out-of-range column is never evaluated.
        assert!(!e.matches(&r).unwrap());
    }

    #[test]
    fn like_matching() {
        assert!(like_match("subscriber-0042", "%0042"));
        assert!(like_match("subscriber-0042", "subscriber%"));
        assert!(like_match("subscriber-0042", "%scriber%"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "%d%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "a%"));
    }

    #[test]
    fn like_requires_string_input() {
        let r = row();
        assert!(col(0).like("%x").eval(&r).is_err());
        // NULL input is simply false, not an error.
        assert_eq!(col(3).like("%x").eval(&r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn arithmetic() {
        let r = row();
        assert_eq!(col(0).add(lit(5)).eval(&r).unwrap(), Value::Int(15));
        assert_eq!(
            col(2).sub(lit(Value::Decimal(95))).eval(&r).unwrap(),
            Value::Decimal(900)
        );
        let avg = col(0).div(lit(4)).eval(&r).unwrap();
        assert_eq!(avg, Value::Float(2.5));
        assert_eq!(col(0).div(lit(0)).eval(&r).unwrap(), Value::Null);
        assert_eq!(col(0).mul(lit(3)).eval(&r).unwrap(), Value::Float(30.0));
    }

    #[test]
    fn out_of_range_column_is_an_error() {
        let r = row();
        assert!(matches!(
            col(9).eval(&r),
            Err(QueryError::ColumnOutOfRange { position: 9, .. })
        ));
    }
}

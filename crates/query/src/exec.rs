//! Plan interpreter.
//!
//! The executor is *batch-first*: base tables stream in as
//! [`ColumnBatch`]es, and the relational operators (filter, project,
//! aggregate, hash join, limit) work directly on batch slots — filters narrow
//! a batch's selection bitmap in place, projections and joins emit new owned
//! batches, aggregates fold batch columns into group states.  Full [`Row`]
//! tuples are materialized *late*: only at the plan root, by index lookups
//! (which produce point results), and inside sort (which genuinely needs
//! movable tuples).  [`ExecStats::rows_materialized`] counts exactly those
//! materializations, which is how tests assert that the vectorized path never
//! re-rowifies a scan.

use crate::error::{QueryError, QueryResult};
use crate::expr::{AggFunc, ValueAccess};
use crate::plan::{AggSpec, JoinKind, Plan, SortKey};
use crate::prune::ChunkPruner;
use crate::source::{DataSource, SourceKind};
use olxp_storage::{BatchBuilder, ColumnBatch, PruningMode, Row, Value, DEFAULT_BATCH_SIZE};
use std::collections::HashMap;

/// How the executor consumes base-table scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Consume [`DataSource::scan_batches`]: columnar chunks, no per-row
    /// tuple at the storage boundary.  The default.
    Batched,
    /// Consume the legacy row-at-a-time [`DataSource::scan`] callback and
    /// re-batch the rows inside the executor.  Kept for equivalence testing
    /// and as a baseline for the micro-benchmarks.
    RowAtATime,
}

/// Executor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Row slots per [`ColumnBatch`] flowing between operators (>= 1).
    pub batch_size: usize,
    /// How base-table scans are consumed.
    pub scan_mode: ScanMode,
    /// Which chunk-pruning structures batched scans may consult.  Sargable
    /// conjuncts of the scan filter are pushed down as a [`ChunkPruner`];
    /// sources without pruning structures (the row stores) ignore it.
    pub pruning: PruningMode,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            batch_size: DEFAULT_BATCH_SIZE,
            scan_mode: ScanMode::Batched,
            pruning: PruningMode::default(),
        }
    }
}

impl ExecOptions {
    /// Batched execution with the given batch size (clamped to >= 1).
    pub fn batched(batch_size: usize) -> ExecOptions {
        ExecOptions {
            batch_size: batch_size.max(1),
            ..ExecOptions::default()
        }
    }

    /// Row-at-a-time scan consumption (operators still run over batches).
    /// Never prunes: it is the equivalence baseline for the batched path.
    pub fn row_at_a_time() -> ExecOptions {
        ExecOptions {
            scan_mode: ScanMode::RowAtATime,
            ..ExecOptions::default()
        }
    }

    /// Override the batch size (builder style, clamped to >= 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> ExecOptions {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Override the pruning mode (builder style).
    pub fn with_pruning(mut self, pruning: PruningMode) -> ExecOptions {
        self.pruning = pruning;
        self
    }
}

/// Work counters accumulated while executing a plan.
///
/// The engine converts these into service time through the storage cost model,
/// so they deliberately count *physical* work (rows examined) rather than
/// logical output sizes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Which store served the base-table accesses.
    pub source_kind: Option<SourceKind>,
    /// Physical rows examined by table scans.
    pub rows_scanned: u64,
    /// Physical entries examined by index lookups.
    pub index_entries: u64,
    /// Number of full table scans performed.
    pub full_scans: u64,
    /// Column batches streamed out of table scans.
    pub batches_scanned: u64,
    /// Individually materialized `Row` tuples the executor created or
    /// consumed: rows received row-at-a-time from a scan, index-lookup
    /// results, rows materialized for sorting, projected row outputs and the
    /// late materialization at the plan root.  The batched path keeps this
    /// near the output size; the row-at-a-time path pays it per scanned row.
    pub rows_materialized: u64,
    /// Hash-join probe operations (probes plus emitted matches).
    pub join_probes: u64,
    /// Rows used to build join hash tables.
    pub join_build_rows: u64,
    /// Rows fed into aggregation operators.
    pub agg_input_rows: u64,
    /// Rows fed into sort operators.
    pub sort_rows: u64,
    /// Rows produced by the plan root.
    pub output_rows: u64,
    /// Replication lag, in committed mutation records, of the store this
    /// query read from at the moment the read started (0 for reads of the
    /// authoritative row store).  Filled in by the engine session.
    pub freshness_lag_records: u64,
    /// Replication lag as a commit-timestamp delta at the moment the read
    /// started (0 for row-store reads).  Filled in by the engine session.
    pub freshness_lag_ts: u64,
    /// Column-store chunks whose data was actually read by table scans.
    pub chunks_scanned: u64,
    /// Column-store chunks skipped by zone maps (min/max or live count).
    pub chunks_pruned_zonemap: u64,
    /// Column-store chunks skipped by fingerprint filters.
    pub chunks_pruned_filter: u64,
    /// Live rows in surviving compressed main-tier chunks deselected by
    /// predicate evaluation on the encoded columns (dictionary-code
    /// comparison, RLE run skipping) before any value was decoded.
    pub rows_pruned_encoded: u64,
    /// Wall-clock nanoseconds of every operator node executed, children
    /// before parents (a parent's duration includes its children's).  Only
    /// populated while `olxp_trace` span recording is enabled; empty
    /// otherwise.
    pub operator_nanos: Vec<u64>,
}

impl ExecStats {
    /// Total physical rows touched (scan + index), the headline input to the
    /// scan cost model.
    pub fn physical_rows(&self) -> u64 {
        self.rows_scanned + self.index_entries
    }

    /// Merge another stats record into this one (used when a transaction runs
    /// several statements).
    pub fn merge(&mut self, other: &ExecStats) {
        if self.source_kind.is_none() {
            self.source_kind = other.source_kind;
        }
        self.rows_scanned += other.rows_scanned;
        self.index_entries += other.index_entries;
        self.full_scans += other.full_scans;
        self.batches_scanned += other.batches_scanned;
        self.rows_materialized += other.rows_materialized;
        self.join_probes += other.join_probes;
        self.join_build_rows += other.join_build_rows;
        self.agg_input_rows += other.agg_input_rows;
        self.sort_rows += other.sort_rows;
        self.output_rows += other.output_rows;
        self.chunks_scanned += other.chunks_scanned;
        self.chunks_pruned_zonemap += other.chunks_pruned_zonemap;
        self.chunks_pruned_filter += other.chunks_pruned_filter;
        self.rows_pruned_encoded += other.rows_pruned_encoded;
        self.operator_nanos.extend_from_slice(&other.operator_nanos);
        // Freshness is a point-in-time observation, not additive work: keep
        // the worst (stalest) observation across merged statements.
        self.freshness_lag_records = self.freshness_lag_records.max(other.freshness_lag_records);
        self.freshness_lag_ts = self.freshness_lag_ts.max(other.freshness_lag_ts);
    }
}

/// Result of executing a plan: the output rows and the work counters.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Output rows of the plan root.
    pub rows: Vec<Row>,
    /// Work performed.
    pub stats: ExecStats,
}

/// Execute `plan` against `source` with default options (batched scans,
/// [`DEFAULT_BATCH_SIZE`]).
pub fn execute(plan: &Plan, source: &dyn DataSource) -> QueryResult<QueryOutput> {
    execute_with(plan, source, ExecOptions::default())
}

/// Execute `plan` against `source` with explicit executor options.
pub fn execute_with(
    plan: &Plan,
    source: &dyn DataSource,
    opts: ExecOptions,
) -> QueryResult<QueryOutput> {
    let opts = ExecOptions {
        batch_size: opts.batch_size.max(1),
        ..opts
    };
    let mut stats = ExecStats {
        source_kind: Some(source.kind()),
        ..ExecStats::default()
    };
    let chunked = run(plan, source, &mut stats, &opts)?;
    let rows = chunked.into_rows(&mut stats);
    stats.output_rows = rows.len() as u64;
    Ok(QueryOutput { rows, stats })
}

// ----------------------------------------------------------------------
// Intermediate representation
// ----------------------------------------------------------------------

/// One selected slot of an operator's input: either a position across a
/// batch's column vectors (nothing materialized) or a borrowed row.
#[derive(Clone, Copy)]
enum RowAt<'a> {
    Batch(&'a ColumnBatch<'a>, usize),
    Row(&'a Row),
}

impl ValueAccess for RowAt<'_> {
    fn width(&self) -> usize {
        match self {
            RowAt::Batch(batch, _) => batch.width(),
            RowAt::Row(row) => row.arity(),
        }
    }

    fn value_at(&self, pos: usize) -> Option<&Value> {
        match self {
            RowAt::Batch(batch, row) => batch.value(pos, *row),
            RowAt::Row(row) => row.get(pos),
        }
    }
}

/// Result of one operator: batches in the vectorized pipeline, rows where an
/// operator genuinely produced tuples (index lookups, sort).
enum Chunked {
    Batches(Vec<ColumnBatch<'static>>),
    Rows(Vec<Row>),
}

impl Chunked {
    /// Number of selected rows across the result.
    fn selected_len(&self) -> usize {
        match self {
            Chunked::Batches(batches) => batches.iter().map(ColumnBatch::selected_count).sum(),
            Chunked::Rows(rows) => rows.len(),
        }
    }

    /// Width of the result's rows (0 when empty).
    fn width(&self) -> usize {
        match self {
            Chunked::Batches(batches) => batches.first().map_or(0, ColumnBatch::width),
            Chunked::Rows(rows) => rows.first().map_or(0, Row::arity),
        }
    }

    /// Visit every selected row in order.  The row handles borrow `self`, so
    /// consumers (e.g. the join build side) may retain them.
    fn for_each<'s, F>(&'s self, mut f: F) -> QueryResult<()>
    where
        F: FnMut(RowAt<'s>) -> QueryResult<()>,
    {
        match self {
            Chunked::Batches(batches) => {
                for batch in batches {
                    for row in batch.selected_rows() {
                        f(RowAt::Batch(batch, row))?;
                    }
                }
            }
            Chunked::Rows(rows) => {
                for row in rows {
                    f(RowAt::Row(row))?;
                }
            }
        }
        Ok(())
    }

    /// Late materialization: turn the result into `Row` tuples, counting the
    /// newly materialized rows.
    fn into_rows(self, stats: &mut ExecStats) -> Vec<Row> {
        match self {
            Chunked::Rows(rows) => rows,
            Chunked::Batches(batches) => {
                let capacity: usize = batches.iter().map(ColumnBatch::selected_count).sum();
                let mut rows = Vec::with_capacity(capacity);
                for batch in &batches {
                    stats.rows_materialized += batch.materialize_into(&mut rows) as u64;
                }
                rows
            }
        }
    }
}

/// Clone the values of `row` into a fresh vector (used when emitting join
/// outputs and group keys).
fn gather(row: &RowAt<'_>, extra_capacity: usize) -> Vec<Value> {
    let width = row.width();
    let mut values = Vec::with_capacity(width + extra_capacity);
    for pos in 0..width {
        values.push(row.value_at(pos).expect("pos < width").clone());
    }
    values
}

fn extract_key(row: &RowAt<'_>, positions: &[usize]) -> QueryResult<Vec<Value>> {
    positions
        .iter()
        .map(|&p| {
            row.value_at(p)
                .cloned()
                .ok_or(QueryError::ColumnOutOfRange {
                    position: p,
                    width: row.width(),
                })
        })
        .collect()
}

// ----------------------------------------------------------------------
// Operators
// ----------------------------------------------------------------------

/// The trace tag identifying an operator kind, carried in the span's shard
/// field (spans all share the `query_operator` category).
fn operator_tag(plan: &Plan) -> u32 {
    match plan {
        Plan::TableScan { .. } => 0,
        Plan::IndexScan { .. } => 1,
        Plan::Filter { .. } => 2,
        Plan::Project { .. } => 3,
        Plan::Join { .. } => 4,
        Plan::Aggregate { .. } => 5,
        Plan::Sort { .. } => 6,
        Plan::Limit { .. } => 7,
    }
}

fn run(
    plan: &Plan,
    source: &dyn DataSource,
    stats: &mut ExecStats,
    opts: &ExecOptions,
) -> QueryResult<Chunked> {
    // Per-operator batch timing, one relaxed load when tracing is off.  A
    // node's span (and recorded duration) includes its children, matching
    // how the spans nest in a Chrome trace view.
    let trace_start = if olxp_trace::enabled() {
        Some(olxp_trace::now_nanos())
    } else {
        None
    };
    let result = run_node(plan, source, stats, opts)?;
    if let Some(start) = trace_start {
        olxp_trace::record_span(
            olxp_trace::SpanCategory::QueryOperator,
            operator_tag(plan),
            result.selected_len() as u64,
            start,
        );
        stats
            .operator_nanos
            .push(olxp_trace::now_nanos().saturating_sub(start));
    }
    Ok(result)
}

fn run_node(
    plan: &Plan,
    source: &dyn DataSource,
    stats: &mut ExecStats,
    opts: &ExecOptions,
) -> QueryResult<Chunked> {
    match plan {
        Plan::TableScan { table, filter } => {
            scan_table(table, filter.as_ref(), source, stats, opts)
        }
        Plan::IndexScan {
            table,
            index,
            prefix,
            filter,
        } => {
            let (mut rows, examined) = source.index_lookup(table, *index, prefix)?;
            stats.index_entries += examined as u64;
            stats.rows_materialized += rows.len() as u64;
            if let Some(f) = filter {
                let mut kept = Vec::with_capacity(rows.len());
                for row in rows.drain(..) {
                    if f.matches(row.values())? {
                        kept.push(row);
                    }
                }
                rows = kept;
            }
            Ok(Chunked::Rows(rows))
        }
        Plan::Filter { input, predicate } => {
            let input = run(input, source, stats, opts)?;
            match input {
                Chunked::Rows(rows) => {
                    let mut kept = Vec::with_capacity(rows.len());
                    for row in rows {
                        if predicate.matches(row.values())? {
                            kept.push(row);
                        }
                    }
                    Ok(Chunked::Rows(kept))
                }
                Chunked::Batches(mut batches) => {
                    // Vectorized filter: narrow each batch's selection bitmap
                    // in place; nothing is copied or compacted.
                    for batch in &mut batches {
                        let mut selection = vec![false; batch.num_rows()];
                        for row in batch.selected_rows() {
                            if predicate.matches_access(&RowAt::Batch(batch, row))? {
                                selection[row] = true;
                            }
                        }
                        batch.set_selection(selection);
                    }
                    Ok(Chunked::Batches(batches))
                }
            }
        }
        Plan::Project { input, exprs } => {
            let input = run(input, source, stats, opts)?;
            match input {
                Chunked::Rows(rows) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for row in rows {
                        let mut values = Vec::with_capacity(exprs.len());
                        for e in exprs {
                            values.push(e.eval(row.values())?);
                        }
                        out.push(Row::new(values));
                    }
                    stats.rows_materialized += out.len() as u64;
                    Ok(Chunked::Rows(out))
                }
                Chunked::Batches(batches) => {
                    let mut out = Vec::new();
                    let mut builder = BatchBuilder::new(exprs.len(), opts.batch_size);
                    for batch in &batches {
                        for row in batch.selected_rows() {
                            let access = RowAt::Batch(batch, row);
                            let mut values = Vec::with_capacity(exprs.len());
                            for e in exprs {
                                values.push(e.eval_access(&access)?);
                            }
                            builder.push_row_values_into(values, &mut out);
                        }
                    }
                    builder.flush_into(&mut out);
                    Ok(Chunked::Batches(out))
                }
            }
        }
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            if left_keys.len() != right_keys.len() || left_keys.is_empty() {
                return Err(QueryError::InvalidPlan(
                    "join key lists must be non-empty and of equal length".into(),
                ));
            }
            let left_in = run(left, source, stats, opts)?;
            let right_in = run(right, source, stats, opts)?;
            join(
                &left_in, &right_in, left_keys, right_keys, *kind, stats, opts,
            )
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            if aggregates.is_empty() {
                return Err(QueryError::InvalidPlan(
                    "aggregate node requires at least one aggregate".into(),
                ));
            }
            let input = run(input, source, stats, opts)?;
            aggregate(&input, group_by, aggregates, stats, opts)
        }
        Plan::Sort { input, keys } => {
            // Sorting genuinely needs movable tuples: materialize here.
            let mut rows = run(input, source, stats, opts)?.into_rows(stats);
            stats.sort_rows += rows.len() as u64;
            sort_rows(&mut rows, keys)?;
            Ok(Chunked::Rows(rows))
        }
        Plan::Limit { input, limit } => {
            let input = run(input, source, stats, opts)?;
            match input {
                Chunked::Rows(mut rows) => {
                    rows.truncate(*limit);
                    Ok(Chunked::Rows(rows))
                }
                Chunked::Batches(batches) => {
                    let mut out = Vec::new();
                    let mut remaining = *limit;
                    for mut batch in batches {
                        if remaining == 0 {
                            break;
                        }
                        let selected = batch.selected_count();
                        if selected > remaining {
                            let keep: Vec<usize> = batch.selected_rows().take(remaining).collect();
                            let mut selection = vec![false; batch.num_rows()];
                            for row in keep {
                                selection[row] = true;
                            }
                            batch.set_selection(selection);
                            remaining = 0;
                        } else {
                            remaining -= selected;
                        }
                        out.push(batch);
                    }
                    Ok(Chunked::Batches(out))
                }
            }
        }
    }
}

/// Base-table scan: stream batches (or rows, in [`ScanMode::RowAtATime`])
/// from the source, apply the pushed-down filter per selected slot, and emit
/// owned batches of the surviving rows.
fn scan_table(
    table: &str,
    filter: Option<&crate::expr::Expr>,
    source: &dyn DataSource,
    stats: &mut ExecStats,
    opts: &ExecOptions,
) -> QueryResult<Chunked> {
    let width = source.schema(table)?.column_count();
    let mut out = Vec::new();
    let mut builder = BatchBuilder::new(width, opts.batch_size);
    let mut err: Option<QueryError> = None;
    let mut batches = 0u64;
    let mut materialized = 0u64;
    let examined = match opts.scan_mode {
        ScanMode::Batched => {
            // Push the sargable conjuncts of the filter down to the source so
            // column stores can skip chunks before touching data.  Pruning
            // only ever removes chunks that cannot contain a matching row;
            // the full filter still runs on every surviving slot below.
            let pruner = match filter {
                Some(f) => ChunkPruner::from_filter(f, opts.pruning),
                None => ChunkPruner::unfiltered(opts.pruning),
            };
            let outcome = source.scan_batches_pruned(
                table,
                opts.batch_size,
                pruner.as_ref(),
                &mut |batch| {
                    if err.is_some() {
                        return;
                    }
                    batches += 1;
                    match filter {
                        None => {
                            // Flush first if the bulk append would overflow the
                            // configured batch size: emitted batches stay <= batch_size.
                            if !builder.is_empty()
                                && builder.len() + batch.selected_count() > builder.capacity()
                            {
                                out.push(builder.finish());
                            }
                            builder.extend_from_batch(batch);
                        }
                        Some(f) => {
                            // Evaluate the predicate per selected slot into a keep
                            // bitmap, then copy the survivors column-wise.
                            let mut keep = vec![false; batch.num_rows()];
                            let mut survivors = 0usize;
                            for row in batch.selected_rows() {
                                match f.matches_access(&RowAt::Batch(batch, row)) {
                                    Ok(matched) => {
                                        keep[row] = matched;
                                        survivors += usize::from(matched);
                                    }
                                    Err(e) => {
                                        err = Some(e);
                                        return;
                                    }
                                }
                            }
                            if !builder.is_empty() && builder.len() + survivors > builder.capacity()
                            {
                                out.push(builder.finish());
                            }
                            builder.extend_selected(batch, &keep);
                        }
                    }
                    if builder.is_full() {
                        out.push(builder.finish());
                    }
                },
            )?;
            stats.chunks_scanned += outcome.chunks_scanned;
            stats.chunks_pruned_zonemap += outcome.chunks_pruned_zonemap;
            stats.chunks_pruned_filter += outcome.chunks_pruned_filter;
            stats.rows_pruned_encoded += outcome.rows_pruned_encoded;
            outcome.slots_examined
        }
        ScanMode::RowAtATime => source.scan(table, &mut |row| {
            if err.is_some() {
                return;
            }
            materialized += 1;
            let keep = match filter {
                Some(f) => match f.matches(row.values()) {
                    Ok(keep) => keep,
                    Err(e) => {
                        err = Some(e);
                        return;
                    }
                },
                None => true,
            };
            if keep {
                builder.push_row(row.values());
                if builder.is_full() {
                    out.push(builder.finish());
                    batches += 1;
                }
            }
        })?,
    };
    if let Some(e) = err {
        return Err(e);
    }
    builder.flush_into(&mut out);
    stats.rows_scanned += examined as u64;
    stats.full_scans += 1;
    stats.batches_scanned += batches;
    stats.rows_materialized += materialized;
    Ok(Chunked::Batches(out))
}

/// Hash join: build on the right, probe with the left so LeftOuter can emit
/// unmatched left rows.  Build-side rows are addressed by batch slot — only
/// emitted matches gather values.
fn join(
    left: &Chunked,
    right: &Chunked,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
    stats: &mut ExecStats,
    opts: &ExecOptions,
) -> QueryResult<Chunked> {
    stats.join_build_rows += right.selected_len() as u64;
    let left_width = left.width();
    let right_width = right.width();

    // Build: hash each selected right slot by its join key.
    let mut locators: Vec<RowAt<'_>> = Vec::with_capacity(right.selected_len());
    let mut hash: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right.selected_len());
    right.for_each(|row| {
        let key = extract_key(&row, right_keys)?;
        hash.entry(key).or_default().push(locators.len());
        locators.push(row);
        Ok(())
    })?;

    let mut out = Vec::new();
    let mut builder = BatchBuilder::new(left_width + right_width, opts.batch_size);
    left.for_each(|lrow| {
        stats.join_probes += 1;
        let key = extract_key(&lrow, left_keys)?;
        match hash.get(&key) {
            Some(matches) => {
                for &loc in matches {
                    stats.join_probes += 1;
                    let mut values = gather(&lrow, right_width);
                    let rrow = &locators[loc];
                    for pos in 0..right_width {
                        values.push(rrow.value_at(pos).expect("pos < width").clone());
                    }
                    builder.push_row_values_into(values, &mut out);
                }
            }
            None => {
                if kind == JoinKind::LeftOuter {
                    let mut values = gather(&lrow, right_width);
                    values.extend(std::iter::repeat(Value::Null).take(right_width));
                    builder.push_row_values_into(values, &mut out);
                }
            }
        }
        Ok(())
    })?;
    builder.flush_into(&mut out);
    Ok(Chunked::Batches(out))
}

#[derive(Debug, Clone)]
struct AggState {
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> AggState {
        AggState {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, value: &Value) {
        if value.is_null() {
            return;
        }
        self.count += 1;
        if let Some(v) = value.as_f64() {
            self.sum += v;
        }
        match &self.min {
            Some(m) if value >= m => {}
            _ => self.min = Some(value.clone()),
        }
        match &self.max {
            Some(m) if value <= m => {}
            _ => self.max = Some(value.clone()),
        }
    }

    fn finalize(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Vectorized aggregation: fold every selected input slot into per-group
/// [`AggState`]s (per-batch increments for the input accounting), then emit
/// the groups as one batch — the result stays columnar until the plan root.
fn aggregate(
    input: &Chunked,
    group_by: &[usize],
    aggregates: &[AggSpec],
    stats: &mut ExecStats,
    opts: &ExecOptions,
) -> QueryResult<Chunked> {
    stats.agg_input_rows += input.selected_len() as u64;
    if group_by.is_empty() {
        return aggregate_global(input, aggregates, opts);
    }
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    input.for_each(|row| {
        let key = extract_key(&row, group_by)?;
        let states = match groups.get_mut(&key) {
            Some(states) => states,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| vec![AggState::new(); aggregates.len()])
            }
        };
        for (state, spec) in states.iter_mut().zip(aggregates) {
            let value = row
                .value_at(spec.column)
                .ok_or(QueryError::ColumnOutOfRange {
                    position: spec.column,
                    width: row.width(),
                })?;
            state.update(value);
        }
        Ok(())
    })?;

    let width = group_by.len() + aggregates.len();
    let mut out = Vec::new();
    let mut builder = BatchBuilder::new(width, opts.batch_size);
    for key in order {
        let states = &groups[&key];
        let mut values = key.clone();
        values.reserve(aggregates.len());
        for (state, spec) in states.iter().zip(aggregates) {
            values.push(state.finalize(spec.func));
        }
        builder.push_row_values_into(values, &mut out);
    }
    builder.flush_into(&mut out);
    Ok(Chunked::Batches(out))
}

/// Global (ungrouped) aggregate: a single state vector folded over every
/// input slot — no per-row group-key allocation or hashing.  A global
/// aggregate over zero rows still yields one row.
fn aggregate_global(
    input: &Chunked,
    aggregates: &[AggSpec],
    opts: &ExecOptions,
) -> QueryResult<Chunked> {
    let mut states = vec![AggState::new(); aggregates.len()];
    input.for_each(|row| {
        for (state, spec) in states.iter_mut().zip(aggregates) {
            let value = row
                .value_at(spec.column)
                .ok_or(QueryError::ColumnOutOfRange {
                    position: spec.column,
                    width: row.width(),
                })?;
            state.update(value);
        }
        Ok(())
    })?;
    let values: Vec<Value> = states
        .iter()
        .zip(aggregates)
        .map(|(s, a)| s.finalize(a.func))
        .collect();
    let mut out = Vec::new();
    let mut builder = BatchBuilder::new(aggregates.len(), opts.batch_size);
    builder.push_row_values(values);
    builder.flush_into(&mut out);
    Ok(Chunked::Batches(out))
}

fn sort_rows(rows: &mut [Row], keys: &[SortKey]) -> QueryResult<()> {
    // Validate positions up front so sorting itself cannot fail.
    if let Some(first) = rows.first() {
        for key in keys {
            if key.column >= first.arity() {
                return Err(QueryError::ColumnOutOfRange {
                    position: key.column,
                    width: first.arity(),
                });
            }
        }
    }
    rows.sort_by(|a, b| {
        for key in keys {
            let (x, y) = (&a[key.column], &b[key.column]);
            let ord = if key.ascending { x.cmp(y) } else { y.cmp(x) };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::expr::{col, lit};
    use crate::source::RowSource;
    use olxp_storage::{ColumnDef, DataType, Key, RowTable, TableSchema};
    use std::collections::HashMap as StdHashMap;
    use std::sync::Arc;

    fn fixture() -> StdHashMap<String, Arc<RowTable>> {
        let orders = Arc::new(RowTable::new(Arc::new(
            TableSchema::new(
                "ORDERS",
                vec![
                    ColumnDef::new("o_id", DataType::Int, false),
                    ColumnDef::new("o_cid", DataType::Int, false),
                    ColumnDef::new("o_amount", DataType::Decimal, false),
                ],
                vec!["o_id"],
            )
            .unwrap(),
        )));
        let customers = Arc::new(RowTable::new(Arc::new(
            TableSchema::new(
                "CUSTOMER",
                vec![
                    ColumnDef::new("c_id", DataType::Int, false),
                    ColumnDef::new("c_name", DataType::Str, false),
                ],
                vec!["c_id"],
            )
            .unwrap(),
        )));
        for (o, c, amount) in [(1, 10, 500), (2, 10, 300), (3, 20, 800), (4, 30, 100)] {
            orders
                .insert(
                    Row::new(vec![Value::Int(o), Value::Int(c), Value::Decimal(amount)]),
                    5,
                )
                .unwrap();
        }
        for (c, name) in [(10, "alice"), (20, "bob")] {
            customers
                .insert(Row::new(vec![Value::Int(c), Value::Str(name.into())]), 5)
                .unwrap();
        }
        let mut tables = StdHashMap::new();
        tables.insert("ORDERS".to_string(), orders);
        tables.insert("CUSTOMER".to_string(), customers);
        tables
    }

    #[test]
    fn scan_filter_project() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .filter(col(1).eq(lit(10)))
            .project(vec![col(0), col(2)])
            .build();
        let out = execute(&plan, &source).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].arity(), 2);
        assert_eq!(out.stats.rows_scanned, 4);
        assert_eq!(out.stats.full_scans, 1);
        assert_eq!(out.stats.output_rows, 2);
    }

    #[test]
    fn index_scan_uses_prefix() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::index_scan("ORDERS", None, Key::int(3)).build();
        let out = execute(&plan, &source).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.stats.full_scans, 0);
        assert!(out.stats.index_entries >= 1);
    }

    #[test]
    fn inner_and_left_outer_join() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let inner = QueryBuilder::scan("ORDERS")
            .join(
                QueryBuilder::scan("CUSTOMER"),
                vec![1],
                vec![0],
                JoinKind::Inner,
            )
            .build();
        let out = execute(&inner, &source).unwrap();
        assert_eq!(out.rows.len(), 3, "order 4 has no matching customer");
        assert_eq!(out.rows[0].arity(), 5);
        assert!(out.stats.join_probes > 0);
        assert_eq!(out.stats.join_build_rows, 2);

        let outer = QueryBuilder::scan("ORDERS")
            .join(
                QueryBuilder::scan("CUSTOMER"),
                vec![1],
                vec![0],
                JoinKind::LeftOuter,
            )
            .build();
        let out = execute(&outer, &source).unwrap();
        assert_eq!(out.rows.len(), 4);
        let unmatched = out
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(4))
            .expect("order 4 present");
        assert!(unmatched[3].is_null());
    }

    #[test]
    fn group_by_aggregation() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .aggregate(
                vec![1],
                vec![
                    AggSpec::new(AggFunc::Count, 0),
                    AggSpec::new(AggFunc::Sum, 2),
                    AggSpec::new(AggFunc::Min, 2),
                ],
            )
            .sort(vec![SortKey::asc(0)])
            .build();
        let out = execute(&plan, &source).unwrap();
        assert_eq!(out.rows.len(), 3);
        // customer 10: two orders totalling 8.00, min 3.00
        assert_eq!(out.rows[0][0], Value::Int(10));
        assert_eq!(out.rows[0][1], Value::Int(2));
        assert_eq!(out.rows[0][2], Value::Float(8.0));
        assert_eq!(out.rows[0][3], Value::Decimal(300));
        assert_eq!(out.stats.agg_input_rows, 4);
        assert_eq!(out.stats.sort_rows, 3);
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .filter(col(0).gt(lit(1000)))
            .aggregate(
                vec![],
                vec![
                    AggSpec::new(AggFunc::Count, 0),
                    AggSpec::new(AggFunc::Min, 2),
                ],
            )
            .build();
        let out = execute(&plan, &source).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(0));
        assert!(out.rows[0][1].is_null());
    }

    #[test]
    fn sort_and_limit() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .sort(vec![SortKey::desc(2)])
            .limit(2)
            .build();
        let out = execute(&plan, &source).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][2], Value::Decimal(800));
        assert_eq!(out.rows[1][2], Value::Decimal(500));
    }

    #[test]
    fn malformed_join_is_rejected() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .join(
                QueryBuilder::scan("CUSTOMER"),
                vec![],
                vec![],
                JoinKind::Inner,
            )
            .build();
        assert!(matches!(
            execute(&plan, &source),
            Err(QueryError::InvalidPlan(_))
        ));
    }

    fn col_fixture() -> StdHashMap<String, Arc<olxp_storage::ColumnTable>> {
        let orders = Arc::new(olxp_storage::ColumnTable::new(Arc::new(
            TableSchema::new(
                "ORDERS",
                vec![
                    ColumnDef::new("o_id", DataType::Int, false),
                    ColumnDef::new("o_cid", DataType::Int, false),
                    ColumnDef::new("o_amount", DataType::Decimal, false),
                ],
                vec!["o_id"],
            )
            .unwrap(),
        )));
        for (o, c, amount) in [(1, 10, 500), (2, 10, 300), (3, 20, 800), (4, 30, 100)] {
            orders
                .apply_insert(
                    &Key::int(o),
                    &Row::new(vec![Value::Int(o), Value::Int(c), Value::Decimal(amount)]),
                    5,
                    o as u64,
                )
                .unwrap();
        }
        let mut tables = StdHashMap::new();
        tables.insert("ORDERS".to_string(), orders);
        tables
    }

    #[test]
    fn batched_and_row_at_a_time_agree_on_every_operator() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plans = vec![
            QueryBuilder::scan("ORDERS")
                .filter(col(2).ge(lit(Value::Decimal(300))))
                .project(vec![col(0), col(2)])
                .build(),
            QueryBuilder::scan("ORDERS")
                .join(
                    QueryBuilder::scan("CUSTOMER"),
                    vec![1],
                    vec![0],
                    JoinKind::LeftOuter,
                )
                .aggregate(vec![1], vec![AggSpec::new(AggFunc::Sum, 2)])
                .sort(vec![SortKey::asc(0)])
                .limit(2)
                .build(),
        ];
        for plan in &plans {
            let row_mode = execute_with(plan, &source, ExecOptions::row_at_a_time()).unwrap();
            for batch_size in [1usize, 3, 1024] {
                let batched =
                    execute_with(plan, &source, ExecOptions::batched(batch_size)).unwrap();
                assert_eq!(batched.rows, row_mode.rows, "batch_size={batch_size}");
                assert_eq!(batched.stats.rows_scanned, row_mode.stats.rows_scanned);
                assert_eq!(batched.stats.output_rows, row_mode.stats.output_rows);
            }
        }
    }

    #[test]
    fn batched_scan_counts_batches_and_avoids_row_materialization() {
        let tables = col_fixture();
        let source = crate::source::ColumnSource::new(&tables);
        let plan = QueryBuilder::scan("ORDERS")
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Sum, 2)])
            .build();

        let batched = execute_with(&plan, &source, ExecOptions::batched(2)).unwrap();
        assert_eq!(batched.rows.len(), 1);
        assert_eq!(batched.stats.batches_scanned, 2, "4 rows / batch_size 2");
        assert_eq!(
            batched.stats.rows_materialized, 1,
            "only the root row is materialized on the batched path"
        );

        let row_mode = execute_with(&plan, &source, ExecOptions::row_at_a_time()).unwrap();
        assert_eq!(row_mode.rows, batched.rows);
        assert!(
            row_mode.stats.rows_materialized >= 4,
            "row-at-a-time pays a materialized row per scanned tuple"
        );
    }

    #[test]
    fn limit_narrows_batch_selection() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS").limit(3).build();
        let out = execute_with(&plan, &source, ExecOptions::batched(2)).unwrap();
        assert_eq!(out.rows.len(), 3);
        let all = execute(&QueryBuilder::scan("ORDERS").build(), &source).unwrap();
        assert_eq!(out.rows[..], all.rows[..3]);
    }

    #[test]
    fn filter_errors_propagate_from_batches() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .filter(col(99).eq(lit(1)))
            .build();
        assert!(matches!(
            execute(&plan, &source),
            Err(QueryError::ColumnOutOfRange { position: 99, .. })
        ));
    }

    #[test]
    fn zero_width_projection_keeps_cardinality() {
        // SELECT (no columns) FROM ORDERS — degenerate, but the batch
        // pipeline must not lose the row count when width is 0.
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS").project(vec![]).build();
        let batched = execute_with(&plan, &source, ExecOptions::batched(3)).unwrap();
        let row_mode = execute_with(&plan, &source, ExecOptions::row_at_a_time()).unwrap();
        assert_eq!(batched.rows.len(), 4, "one empty row per input row");
        assert_eq!(batched.rows, row_mode.rows);
        assert!(batched.rows.iter().all(Row::is_empty));
    }

    #[test]
    fn exec_options_clamp_batch_size() {
        let opts = ExecOptions::batched(0);
        assert_eq!(opts.batch_size, 1);
        let opts = ExecOptions::default().with_batch_size(0);
        assert_eq!(opts.batch_size, 1);
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS").build();
        let out = execute_with(
            &plan,
            &source,
            ExecOptions {
                batch_size: 0,
                scan_mode: ScanMode::Batched,
                pruning: PruningMode::Both,
            },
        )
        .unwrap();
        assert_eq!(out.rows.len(), 4, "zero batch size is clamped, not UB");
    }

    #[test]
    fn pruned_column_scan_matches_unpruned_and_skips_chunks() {
        use crate::source::ColumnSource;
        use olxp_storage::{ColumnTable, PruningMode};
        let schema = Arc::new(
            TableSchema::new(
                "ORDERS",
                vec![
                    ColumnDef::new("o_id", DataType::Int, false),
                    ColumnDef::new("o_amount", DataType::Decimal, false),
                ],
                vec!["o_id"],
            )
            .unwrap(),
        );
        let table = Arc::new(ColumnTable::with_chunk_size(Arc::clone(&schema), 4));
        for i in 0..16i64 {
            table
                .apply_insert(
                    &Key::int(i),
                    &Row::new(vec![Value::Int(i), Value::Decimal(i * 100)]),
                    5,
                    i as u64 + 1,
                )
                .unwrap();
        }
        let mut tables = StdHashMap::new();
        tables.insert("ORDERS".to_string(), Arc::clone(&table));
        let source = ColumnSource::new(&tables);
        let plan = QueryBuilder::scan_where("ORDERS", col(0).eq(lit(9))).build();

        let pruned = execute_with(&plan, &source, ExecOptions::batched(8)).unwrap();
        let unpruned = execute_with(
            &plan,
            &source,
            ExecOptions::batched(8).with_pruning(PruningMode::Off),
        )
        .unwrap();
        let baseline = execute_with(&plan, &source, ExecOptions::row_at_a_time()).unwrap();
        assert_eq!(pruned.rows, unpruned.rows, "pruning never changes results");
        assert_eq!(pruned.rows, baseline.rows);
        assert_eq!(pruned.rows.len(), 1);

        assert_eq!(pruned.stats.chunks_pruned_zonemap, 3);
        assert_eq!(pruned.stats.chunks_scanned, 1);
        assert_eq!(
            pruned.stats.rows_scanned, 4,
            "only the surviving chunk is examined"
        );
        assert_eq!(unpruned.stats.rows_scanned, 16);
        assert_eq!(
            unpruned.stats.chunks_scanned, 4,
            "chunk accounting stays on when pruning is off"
        );
        assert_eq!(unpruned.stats.chunks_pruned_zonemap, 0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ExecStats {
            rows_scanned: 5,
            ..ExecStats::default()
        };
        let b = ExecStats {
            rows_scanned: 7,
            join_probes: 3,
            source_kind: Some(SourceKind::RowStore),
            ..ExecStats::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 12);
        assert_eq!(a.join_probes, 3);
        assert_eq!(a.source_kind, Some(SourceKind::RowStore));
        assert_eq!(a.physical_rows(), 12);
    }
}

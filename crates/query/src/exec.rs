//! Plan interpreter.

use crate::error::{QueryError, QueryResult};
use crate::expr::AggFunc;
use crate::plan::{AggSpec, JoinKind, Plan, SortKey};
use crate::source::{DataSource, SourceKind};
use olxp_storage::{Row, Value};
use std::collections::HashMap;

/// Work counters accumulated while executing a plan.
///
/// The engine converts these into service time through the storage cost model,
/// so they deliberately count *physical* work (rows examined) rather than
/// logical output sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Which store served the base-table accesses.
    pub source_kind: Option<SourceKind>,
    /// Physical rows examined by table scans.
    pub rows_scanned: u64,
    /// Physical entries examined by index lookups.
    pub index_entries: u64,
    /// Number of full table scans performed.
    pub full_scans: u64,
    /// Hash-join probe operations (probes plus emitted matches).
    pub join_probes: u64,
    /// Rows used to build join hash tables.
    pub join_build_rows: u64,
    /// Rows fed into aggregation operators.
    pub agg_input_rows: u64,
    /// Rows fed into sort operators.
    pub sort_rows: u64,
    /// Rows produced by the plan root.
    pub output_rows: u64,
}

impl ExecStats {
    /// Total physical rows touched (scan + index), the headline input to the
    /// scan cost model.
    pub fn physical_rows(&self) -> u64 {
        self.rows_scanned + self.index_entries
    }

    /// Merge another stats record into this one (used when a transaction runs
    /// several statements).
    pub fn merge(&mut self, other: &ExecStats) {
        if self.source_kind.is_none() {
            self.source_kind = other.source_kind;
        }
        self.rows_scanned += other.rows_scanned;
        self.index_entries += other.index_entries;
        self.full_scans += other.full_scans;
        self.join_probes += other.join_probes;
        self.join_build_rows += other.join_build_rows;
        self.agg_input_rows += other.agg_input_rows;
        self.sort_rows += other.sort_rows;
        self.output_rows += other.output_rows;
    }
}

/// Result of executing a plan: the output rows and the work counters.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Output rows of the plan root.
    pub rows: Vec<Row>,
    /// Work performed.
    pub stats: ExecStats,
}

/// Execute `plan` against `source`.
pub fn execute(plan: &Plan, source: &dyn DataSource) -> QueryResult<QueryOutput> {
    let mut stats = ExecStats {
        source_kind: Some(source.kind()),
        ..ExecStats::default()
    };
    let rows = run(plan, source, &mut stats)?;
    stats.output_rows = rows.len() as u64;
    Ok(QueryOutput { rows, stats })
}

fn run(plan: &Plan, source: &dyn DataSource, stats: &mut ExecStats) -> QueryResult<Vec<Row>> {
    match plan {
        Plan::TableScan { table, filter } => {
            let mut rows = Vec::new();
            let mut err = None;
            let examined = source.scan(table, &mut |row| {
                if err.is_some() {
                    return;
                }
                match filter {
                    Some(f) => match f.matches(row.values()) {
                        Ok(true) => rows.push(row.clone()),
                        Ok(false) => {}
                        Err(e) => err = Some(e),
                    },
                    None => rows.push(row.clone()),
                }
            })?;
            if let Some(e) = err {
                return Err(e);
            }
            stats.rows_scanned += examined as u64;
            stats.full_scans += 1;
            Ok(rows)
        }
        Plan::IndexScan {
            table,
            index,
            prefix,
            filter,
        } => {
            let (mut rows, examined) = source.index_lookup(table, *index, prefix)?;
            stats.index_entries += examined as u64;
            if let Some(f) = filter {
                let mut kept = Vec::with_capacity(rows.len());
                for row in rows.drain(..) {
                    if f.matches(row.values())? {
                        kept.push(row);
                    }
                }
                rows = kept;
            }
            Ok(rows)
        }
        Plan::Filter { input, predicate } => {
            let rows = run(input, source, stats)?;
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if predicate.matches(row.values())? {
                    kept.push(row);
                }
            }
            Ok(kept)
        }
        Plan::Project { input, exprs } => {
            let rows = run(input, source, stats)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut values = Vec::with_capacity(exprs.len());
                for e in exprs {
                    values.push(e.eval(row.values())?);
                }
                out.push(Row::new(values));
            }
            Ok(out)
        }
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            if left_keys.len() != right_keys.len() || left_keys.is_empty() {
                return Err(QueryError::InvalidPlan(
                    "join key lists must be non-empty and of equal length".into(),
                ));
            }
            let left_rows = run(left, source, stats)?;
            let right_rows = run(right, source, stats)?;
            // Build on the right, probe with the left so LeftOuter can emit
            // unmatched left rows.
            stats.join_build_rows += right_rows.len() as u64;
            let right_width = right_rows.first().map_or(0, Row::arity);
            let mut hash: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(right_rows.len());
            for row in &right_rows {
                let key = extract_key(row, right_keys)?;
                hash.entry(key).or_default().push(row);
            }
            let mut out = Vec::new();
            for lrow in &left_rows {
                stats.join_probes += 1;
                let key = extract_key(lrow, left_keys)?;
                match hash.get(&key) {
                    Some(matches) => {
                        for rrow in matches {
                            stats.join_probes += 1;
                            let mut values = lrow.values().to_vec();
                            values.extend_from_slice(rrow.values());
                            out.push(Row::new(values));
                        }
                    }
                    None => {
                        if *kind == JoinKind::LeftOuter {
                            let mut values = lrow.values().to_vec();
                            values.extend(std::iter::repeat(Value::Null).take(right_width));
                            out.push(Row::new(values));
                        }
                    }
                }
            }
            Ok(out)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            if aggregates.is_empty() {
                return Err(QueryError::InvalidPlan(
                    "aggregate node requires at least one aggregate".into(),
                ));
            }
            let rows = run(input, source, stats)?;
            stats.agg_input_rows += rows.len() as u64;
            aggregate(&rows, group_by, aggregates)
        }
        Plan::Sort { input, keys } => {
            let mut rows = run(input, source, stats)?;
            stats.sort_rows += rows.len() as u64;
            sort_rows(&mut rows, keys)?;
            Ok(rows)
        }
        Plan::Limit { input, limit } => {
            let mut rows = run(input, source, stats)?;
            rows.truncate(*limit);
            Ok(rows)
        }
    }
}

fn extract_key(row: &Row, positions: &[usize]) -> QueryResult<Vec<Value>> {
    positions
        .iter()
        .map(|&p| {
            row.get(p).cloned().ok_or(QueryError::ColumnOutOfRange {
                position: p,
                width: row.arity(),
            })
        })
        .collect()
}

#[derive(Debug, Clone)]
struct AggState {
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> AggState {
        AggState {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, value: &Value) {
        if value.is_null() {
            return;
        }
        self.count += 1;
        if let Some(v) = value.as_f64() {
            self.sum += v;
        }
        match &self.min {
            Some(m) if value >= m => {}
            _ => self.min = Some(value.clone()),
        }
        match &self.max {
            Some(m) if value <= m => {}
            _ => self.max = Some(value.clone()),
        }
    }

    fn finalize(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

fn aggregate(rows: &[Row], group_by: &[usize], aggregates: &[AggSpec]) -> QueryResult<Vec<Row>> {
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in rows {
        let key = extract_key(row, group_by)?;
        let states = match groups.get_mut(&key) {
            Some(states) => states,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| vec![AggState::new(); aggregates.len()])
            }
        };
        for (state, spec) in states.iter_mut().zip(aggregates) {
            let value = row.get(spec.column).ok_or(QueryError::ColumnOutOfRange {
                position: spec.column,
                width: row.arity(),
            })?;
            state.update(value);
        }
    }
    if groups.is_empty() && group_by.is_empty() {
        // Global aggregate over zero rows still yields one row.
        let states = vec![AggState::new(); aggregates.len()];
        let values: Vec<Value> = states
            .iter()
            .zip(aggregates)
            .map(|(s, a)| s.finalize(a.func))
            .collect();
        return Ok(vec![Row::new(values)]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let states = &groups[&key];
        let mut values = key.clone();
        for (state, spec) in states.iter().zip(aggregates) {
            values.push(state.finalize(spec.func));
        }
        out.push(Row::new(values));
    }
    Ok(out)
}

fn sort_rows(rows: &mut [Row], keys: &[SortKey]) -> QueryResult<()> {
    // Validate positions up front so sorting itself cannot fail.
    if let Some(first) = rows.first() {
        for key in keys {
            if key.column >= first.arity() {
                return Err(QueryError::ColumnOutOfRange {
                    position: key.column,
                    width: first.arity(),
                });
            }
        }
    }
    rows.sort_by(|a, b| {
        for key in keys {
            let (x, y) = (&a[key.column], &b[key.column]);
            let ord = if key.ascending { x.cmp(y) } else { y.cmp(x) };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::expr::{col, lit};
    use crate::source::RowSource;
    use olxp_storage::{ColumnDef, DataType, Key, RowTable, TableSchema};
    use std::collections::HashMap as StdHashMap;
    use std::sync::Arc;

    fn fixture() -> StdHashMap<String, Arc<RowTable>> {
        let orders = Arc::new(RowTable::new(Arc::new(
            TableSchema::new(
                "ORDERS",
                vec![
                    ColumnDef::new("o_id", DataType::Int, false),
                    ColumnDef::new("o_cid", DataType::Int, false),
                    ColumnDef::new("o_amount", DataType::Decimal, false),
                ],
                vec!["o_id"],
            )
            .unwrap(),
        )));
        let customers = Arc::new(RowTable::new(Arc::new(
            TableSchema::new(
                "CUSTOMER",
                vec![
                    ColumnDef::new("c_id", DataType::Int, false),
                    ColumnDef::new("c_name", DataType::Str, false),
                ],
                vec!["c_id"],
            )
            .unwrap(),
        )));
        for (o, c, amount) in [(1, 10, 500), (2, 10, 300), (3, 20, 800), (4, 30, 100)] {
            orders
                .insert(
                    Row::new(vec![Value::Int(o), Value::Int(c), Value::Decimal(amount)]),
                    5,
                )
                .unwrap();
        }
        for (c, name) in [(10, "alice"), (20, "bob")] {
            customers
                .insert(Row::new(vec![Value::Int(c), Value::Str(name.into())]), 5)
                .unwrap();
        }
        let mut tables = StdHashMap::new();
        tables.insert("ORDERS".to_string(), orders);
        tables.insert("CUSTOMER".to_string(), customers);
        tables
    }

    #[test]
    fn scan_filter_project() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .filter(col(1).eq(lit(10)))
            .project(vec![col(0), col(2)])
            .build();
        let out = execute(&plan, &source).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].arity(), 2);
        assert_eq!(out.stats.rows_scanned, 4);
        assert_eq!(out.stats.full_scans, 1);
        assert_eq!(out.stats.output_rows, 2);
    }

    #[test]
    fn index_scan_uses_prefix() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::index_scan("ORDERS", None, Key::int(3)).build();
        let out = execute(&plan, &source).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.stats.full_scans, 0);
        assert!(out.stats.index_entries >= 1);
    }

    #[test]
    fn inner_and_left_outer_join() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let inner = QueryBuilder::scan("ORDERS")
            .join(QueryBuilder::scan("CUSTOMER"), vec![1], vec![0], JoinKind::Inner)
            .build();
        let out = execute(&inner, &source).unwrap();
        assert_eq!(out.rows.len(), 3, "order 4 has no matching customer");
        assert_eq!(out.rows[0].arity(), 5);
        assert!(out.stats.join_probes > 0);
        assert_eq!(out.stats.join_build_rows, 2);

        let outer = QueryBuilder::scan("ORDERS")
            .join(
                QueryBuilder::scan("CUSTOMER"),
                vec![1],
                vec![0],
                JoinKind::LeftOuter,
            )
            .build();
        let out = execute(&outer, &source).unwrap();
        assert_eq!(out.rows.len(), 4);
        let unmatched = out
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(4))
            .expect("order 4 present");
        assert!(unmatched[3].is_null());
    }

    #[test]
    fn group_by_aggregation() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .aggregate(
                vec![1],
                vec![
                    AggSpec::new(AggFunc::Count, 0),
                    AggSpec::new(AggFunc::Sum, 2),
                    AggSpec::new(AggFunc::Min, 2),
                ],
            )
            .sort(vec![SortKey::asc(0)])
            .build();
        let out = execute(&plan, &source).unwrap();
        assert_eq!(out.rows.len(), 3);
        // customer 10: two orders totalling 8.00, min 3.00
        assert_eq!(out.rows[0][0], Value::Int(10));
        assert_eq!(out.rows[0][1], Value::Int(2));
        assert_eq!(out.rows[0][2], Value::Float(8.0));
        assert_eq!(out.rows[0][3], Value::Decimal(300));
        assert_eq!(out.stats.agg_input_rows, 4);
        assert_eq!(out.stats.sort_rows, 3);
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .filter(col(0).gt(lit(1000)))
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Count, 0), AggSpec::new(AggFunc::Min, 2)])
            .build();
        let out = execute(&plan, &source).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(0));
        assert!(out.rows[0][1].is_null());
    }

    #[test]
    fn sort_and_limit() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .sort(vec![SortKey::desc(2)])
            .limit(2)
            .build();
        let out = execute(&plan, &source).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][2], Value::Decimal(800));
        assert_eq!(out.rows[1][2], Value::Decimal(500));
    }

    #[test]
    fn malformed_join_is_rejected() {
        let tables = fixture();
        let source = RowSource::new(&tables, 10);
        let plan = QueryBuilder::scan("ORDERS")
            .join(QueryBuilder::scan("CUSTOMER"), vec![], vec![], JoinKind::Inner)
            .build();
        assert!(matches!(
            execute(&plan, &source),
            Err(QueryError::InvalidPlan(_))
        ));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ExecStats {
            rows_scanned: 5,
            ..ExecStats::default()
        };
        let b = ExecStats {
            rows_scanned: 7,
            join_probes: 3,
            source_kind: Some(SourceKind::RowStore),
            ..ExecStats::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 12);
        assert_eq!(a.join_probes, 3);
        assert_eq!(a.source_kind, Some(SourceKind::RowStore));
        assert_eq!(a.physical_rows(), 12);
    }
}

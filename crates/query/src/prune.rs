//! Sargable-predicate extraction and the chunk pruner handed to data sources.
//!
//! [`extract_sargable`] walks a filter [`Expr`] and collects the conjuncts a
//! column-store chunk can be tested against without evaluating the
//! expression: comparisons between a column and a literal (`Eq`, `Lt`, `Le`,
//! `Gt`, `Ge`, in either orientation) joined by `AND`.  Everything else —
//! `OR` branches, `NOT`, arithmetic, `LIKE`, column-to-column comparisons —
//! contributes nothing; the extracted [`ScanPredicate`] is therefore a
//! *necessary* condition on matching rows (a row failing it cannot match the
//! full filter) but not a sufficient one, and the executor still applies the
//! full filter to every row of a surviving chunk.

use crate::expr::Expr;
use olxp_storage::{ColumnPredicate, PredicateOp, PruningMode, ScanPredicate};

/// A pruning request carried from the executor to a [`DataSource`]
/// (`crate::source::DataSource`): which chunks may be skipped and which
/// pruning structures to consult.
#[derive(Debug, Clone)]
pub struct ChunkPruner {
    predicate: ScanPredicate,
    mode: PruningMode,
}

impl ChunkPruner {
    /// Pruner for a scan with a filter expression.  Returns `None` when
    /// `mode` is [`PruningMode::Off`] (sources then take the unpruned path).
    pub fn from_filter(filter: &Expr, mode: PruningMode) -> Option<ChunkPruner> {
        if mode == PruningMode::Off {
            return None;
        }
        Some(ChunkPruner {
            predicate: extract_sargable(filter),
            mode,
        })
    }

    /// Pruner for an unfiltered scan: no conjuncts, but fully deleted chunks
    /// can still be skipped.
    pub fn unfiltered(mode: PruningMode) -> Option<ChunkPruner> {
        if mode == PruningMode::Off {
            return None;
        }
        Some(ChunkPruner {
            predicate: ScanPredicate::default(),
            mode,
        })
    }

    /// The extracted conjunction (a necessary condition on matching rows).
    pub fn predicate(&self) -> &ScanPredicate {
        &self.predicate
    }

    /// Which pruning structures to consult.
    pub fn mode(&self) -> PruningMode {
        self.mode
    }
}

/// Extract the sargable AND-conjuncts of a filter expression.
///
/// The result may be empty when nothing in the filter is sargable; that is
/// still a valid (vacuous) necessary condition.
pub fn extract_sargable(expr: &Expr) -> ScanPredicate {
    let mut predicates = Vec::new();
    collect(expr, &mut predicates);
    ScanPredicate::new(predicates)
}

fn collect(expr: &Expr, out: &mut Vec<ColumnPredicate>) {
    match expr {
        Expr::And(a, b) => {
            collect(a, out);
            collect(b, out);
        }
        Expr::Eq(a, b) => push_comparison(a, b, PredicateOp::Eq, PredicateOp::Eq, out),
        Expr::Lt(a, b) => push_comparison(a, b, PredicateOp::Lt, PredicateOp::Gt, out),
        Expr::Le(a, b) => push_comparison(a, b, PredicateOp::Le, PredicateOp::Ge, out),
        Expr::Gt(a, b) => push_comparison(a, b, PredicateOp::Gt, PredicateOp::Lt, out),
        Expr::Ge(a, b) => push_comparison(a, b, PredicateOp::Ge, PredicateOp::Le, out),
        _ => {}
    }
}

/// `column <op> literal` in either orientation; `flipped` is the operator
/// with the operands swapped (`5 < col` ⇔ `col > 5`).  NULL literals are
/// dropped ([`ColumnPredicate::new`] refuses them): comparisons with NULL
/// match nothing, which the residual filter already handles.
fn push_comparison(
    a: &Expr,
    b: &Expr,
    op: PredicateOp,
    flipped: PredicateOp,
    out: &mut Vec<ColumnPredicate>,
) {
    match (a, b) {
        (Expr::Column(c), Expr::Literal(v)) => out.extend(ColumnPredicate::new(*c, op, v.clone())),
        (Expr::Literal(v), Expr::Column(c)) => {
            out.extend(ColumnPredicate::new(*c, flipped, v.clone()))
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use olxp_storage::Value;

    #[test]
    fn equality_extracts_in_both_orientations() {
        let p = extract_sargable(&col(2).eq(lit(Value::Int(7))));
        assert_eq!(p.predicates.len(), 1);
        assert_eq!(p.predicates[0].column, 2);
        assert_eq!(p.predicates[0].op, PredicateOp::Eq);

        let p = extract_sargable(&lit(Value::Int(7)).eq(col(2)));
        assert_eq!(p.predicates.len(), 1);
        assert_eq!(p.predicates[0].op, PredicateOp::Eq);
    }

    #[test]
    fn range_operators_flip_when_literal_is_first() {
        let p = extract_sargable(&lit(Value::Int(5)).lt(col(0)));
        assert_eq!(p.predicates[0].op, PredicateOp::Gt, "5 < col ⇔ col > 5");
        let p = extract_sargable(&col(0).le(lit(Value::Int(5))));
        assert_eq!(p.predicates[0].op, PredicateOp::Le);
        let p = extract_sargable(&lit(Value::Int(5)).ge(col(0)));
        assert_eq!(p.predicates[0].op, PredicateOp::Le, "5 >= col ⇔ col <= 5");
    }

    #[test]
    fn and_conjunctions_recurse_and_drop_non_sargable_parts() {
        let filter = col(0)
            .ge(lit(Value::Int(10)))
            .and(col(1).eq(lit(Value::str("paid"))))
            .and(col(2).like("x%"));
        let p = extract_sargable(&filter);
        assert_eq!(p.predicates.len(), 2, "LIKE conjunct contributes nothing");
    }

    #[test]
    fn or_not_and_column_comparisons_are_not_sargable() {
        let or = col(0)
            .eq(lit(Value::Int(1)))
            .or(col(0).eq(lit(Value::Int(2))));
        assert!(extract_sargable(&or).is_empty());
        let not = col(0).eq(lit(Value::Int(1))).not();
        assert!(extract_sargable(&not).is_empty());
        let col_cmp = col(0).eq(col(1));
        assert!(extract_sargable(&col_cmp).is_empty());
    }

    #[test]
    fn null_literals_are_dropped() {
        let p = extract_sargable(&col(0).eq(lit(Value::Null)));
        assert!(p.is_empty());
    }

    #[test]
    fn pruner_construction_respects_mode() {
        let filter = col(0).eq(lit(Value::Int(1)));
        assert!(ChunkPruner::from_filter(&filter, PruningMode::Off).is_none());
        assert!(ChunkPruner::unfiltered(PruningMode::Off).is_none());
        let pruner = ChunkPruner::from_filter(&filter, PruningMode::Both).unwrap();
        assert_eq!(pruner.mode(), PruningMode::Both);
        assert_eq!(pruner.predicate().predicates.len(), 1);
        let pruner = ChunkPruner::unfiltered(PruningMode::ZoneMapOnly).unwrap();
        assert!(pruner.predicate().is_empty());
    }
}

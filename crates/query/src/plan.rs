//! Logical query plans.

use crate::expr::{AggFunc, Expr};
use olxp_storage::Key;
use serde::{Deserialize, Serialize};

/// Join kind.  The workloads only need inner and left-outer joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    /// Keep only matching pairs.
    Inner,
    /// Keep every left row; unmatched right columns become NULL.
    LeftOuter,
}

/// One aggregate in an Aggregate node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column position the function is applied to.
    pub column: usize,
}

impl AggSpec {
    /// Convenience constructor.
    pub fn new(func: AggFunc, column: usize) -> AggSpec {
        AggSpec { func, column }
    }
}

/// A sort key: column position plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortKey {
    /// Column position in the input rows.
    pub column: usize,
    /// True for ascending order.
    pub ascending: bool,
}

impl SortKey {
    /// Ascending sort key.
    pub fn asc(column: usize) -> SortKey {
        SortKey {
            column,
            ascending: true,
        }
    }

    /// Descending sort key.
    pub fn desc(column: usize) -> SortKey {
        SortKey {
            column,
            ascending: false,
        }
    }
}

/// A logical query plan.
///
/// Plans are trees built bottom-up by the workloads (usually through
/// [`crate::builder::QueryBuilder`]) and interpreted by [`crate::exec::execute`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Plan {
    /// Scan every visible row of a table.
    TableScan {
        /// Table name.
        table: String,
        /// Optional pushed-down filter.
        filter: Option<Expr>,
    },
    /// Look up rows through an index (or the primary key) by key prefix.
    IndexScan {
        /// Table name.
        table: String,
        /// `None` = primary key, `Some(pos)` = secondary index position.
        index: Option<usize>,
        /// Equality key prefix to look up.
        prefix: Key,
        /// Optional residual filter applied after the lookup.
        filter: Option<Expr>,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate to apply.
        predicate: Expr,
    },
    /// Compute expressions over each input row.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Expressions producing the output columns.
        exprs: Vec<Expr>,
    },
    /// Hash join on column equality.
    Join {
        /// Left (build) side.
        left: Box<Plan>,
        /// Right (probe) side.
        right: Box<Plan>,
        /// Join key columns of the left input.
        left_keys: Vec<usize>,
        /// Join key columns of the right input.
        right_keys: Vec<usize>,
        /// Join kind.
        kind: JoinKind,
    },
    /// Group-by aggregation.  Output rows are the group-by columns followed by
    /// one column per aggregate.  An empty `group_by` produces a single row.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping column positions.
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggregates: Vec<AggSpec>,
    },
    /// Sort by the given keys.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys, most significant first.
        keys: Vec<SortKey>,
    },
    /// Keep only the first `limit` rows.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Maximum number of rows to emit.
        limit: usize,
    },
}

impl Plan {
    /// Names of every base table referenced by the plan, in first-visit order
    /// (used by the engine for latching, freshness checks and the
    /// semantic-consistency validator).
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            Plan::TableScan { table, .. } | Plan::IndexScan { table, .. } => {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.collect_tables(out),
            Plan::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }

    /// Number of join operators in the plan (a crude complexity measure used by
    /// the single-engine vertical-partition penalty).
    pub fn join_count(&self) -> usize {
        match self {
            Plan::TableScan { .. } | Plan::IndexScan { .. } => 0,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.join_count(),
            Plan::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
        }
    }

    /// True when the plan contains at least one full table scan (no index
    /// prefix); such plans are what the paper calls "time-consuming scan
    /// tables operations".
    pub fn has_full_scan(&self) -> bool {
        match self {
            Plan::TableScan { .. } => true,
            Plan::IndexScan { .. } => false,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.has_full_scan(),
            Plan::Join { left, right, .. } => left.has_full_scan() || right.has_full_scan(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn sample_plan() -> Plan {
        Plan::Aggregate {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::TableScan {
                    table: "ORDERS".into(),
                    filter: None,
                }),
                right: Box::new(Plan::IndexScan {
                    table: "ORDER_LINE".into(),
                    index: None,
                    prefix: Key::int(1),
                    filter: Some(col(2).gt(lit(0))),
                }),
                left_keys: vec![0],
                right_keys: vec![0],
                kind: JoinKind::Inner,
            }),
            group_by: vec![1],
            aggregates: vec![AggSpec::new(AggFunc::Sum, 3)],
        }
    }

    #[test]
    fn referenced_tables_are_collected_once() {
        let plan = Plan::Join {
            left: Box::new(sample_plan()),
            right: Box::new(Plan::TableScan {
                table: "ORDERS".into(),
                filter: None,
            }),
            left_keys: vec![0],
            right_keys: vec![0],
            kind: JoinKind::Inner,
        };
        assert_eq!(plan.referenced_tables(), vec!["ORDERS", "ORDER_LINE"]);
    }

    #[test]
    fn join_count_and_full_scan_detection() {
        let plan = sample_plan();
        assert_eq!(plan.join_count(), 1);
        assert!(plan.has_full_scan());
        let index_only = Plan::IndexScan {
            table: "ITEM".into(),
            index: Some(0),
            prefix: Key::int(3),
            filter: None,
        };
        assert!(!index_only.has_full_scan());
    }
}

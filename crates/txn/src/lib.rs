//! # olxp-txn
//!
//! Transaction substrate for OLxPBench-RS.
//!
//! The crate provides the concurrency-control building blocks used by the HTAP
//! engine in `olxp-engine`:
//!
//! * a [`oracle::TimestampOracle`] issuing monotonically increasing logical
//!   timestamps for snapshots and commits;
//! * [`isolation::IsolationLevel`] — the paper's engines differ here: the
//!   TiDB-like dual engine runs repeatable-read/snapshot isolation while the
//!   MemSQL-like single engine only offers read-committed (§V-A2);
//! * a [`locks::LockManager`] implementing row-level exclusive locks with a
//!   wait-die deadlock-avoidance policy and, crucially, **wait-time
//!   instrumentation**: the paper's Figure 4 compares "lock overhead" between
//!   schema models, and [`locks::LockStats`] is the quantity that experiment
//!   reports;
//! * [`transaction::Transaction`] — a handle that buffers writes (the write
//!   set) and tracks acquired locks until commit;
//! * [`manager::TransactionManager`] — begin/commit/abort orchestration.
//!
//! The crate deliberately does *not* apply writes to storage itself; the engine
//! owns the tables and applies a committed transaction's write set, which keeps
//! this crate independently testable.

pub mod error;
pub mod isolation;
pub mod locks;
pub mod manager;
pub mod oracle;
pub mod transaction;

pub use error::{TxnError, TxnResult};
pub use isolation::IsolationLevel;
pub use locks::{LockManager, LockStats, LockStatsSnapshot};
pub use manager::{TransactionManager, TxnManagerStats};
pub use oracle::TimestampOracle;
pub use transaction::{Transaction, TxnState, WriteOp, WriteSet};

/// Transaction identifier.  Ids are allocated densely by the manager and also
/// serve as the age ordering used by the wait-die policy.
pub type TxnId = u64;

//! Transaction manager.

use crate::error::{TxnError, TxnResult};
use crate::isolation::IsolationLevel;
use crate::locks::{LockManager, LockStatsSnapshot};
use crate::oracle::TimestampOracle;
use crate::transaction::{Transaction, TxnState};
use olxp_storage::{Key, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate transaction counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxnManagerStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (conflicts, wait-die, explicit rollback).
    pub aborted: u64,
    /// Lock-manager counters.
    pub locks: LockStatsSnapshot,
}

/// Coordinates transaction begin/commit/abort, timestamps and locks.
///
/// One manager is shared by every session of an engine node.  When the engine
/// hash-partitions its storage into shards, the manager holds one independent
/// lock table per shard: a transaction only touches the lock tables of the
/// shards its keys route to, so single-shard transactions never contend on a
/// shared lock structure.  The timestamp oracle stays global — it is the
/// single commit-timestamp authority across all shards.
#[derive(Debug)]
pub struct TransactionManager {
    oracle: Arc<TimestampOracle>,
    locks: Vec<Arc<LockManager>>,
    next_txn_id: AtomicU64,
    begun: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
}

impl TransactionManager {
    /// Create a manager with a default lock-wait timeout and one lock table.
    pub fn new() -> TransactionManager {
        TransactionManager::with_lock_timeout(Duration::from_millis(500))
    }

    /// Create a manager with an explicit lock-wait timeout and one lock table.
    pub fn with_lock_timeout(timeout: Duration) -> TransactionManager {
        TransactionManager::with_shards(timeout, 1)
    }

    /// Create a manager with one independent lock table per storage shard.
    pub fn with_shards(timeout: Duration, shards: usize) -> TransactionManager {
        let shards = shards.max(1);
        TransactionManager {
            oracle: Arc::new(TimestampOracle::new()),
            locks: (0..shards)
                .map(|_| Arc::new(LockManager::with_timeout(timeout)))
                .collect(),
            next_txn_id: AtomicU64::new(1),
            begun: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
        }
    }

    /// The shared timestamp oracle.
    pub fn oracle(&self) -> &Arc<TimestampOracle> {
        &self.oracle
    }

    /// The first shard's lock manager (the only one in unsharded setups).
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks[0]
    }

    /// The lock table owned by storage shard `shard`.
    pub fn locks_for_shard(&self, shard: usize) -> &Arc<LockManager> {
        &self.locks[shard]
    }

    /// Number of per-shard lock tables.
    pub fn lock_shards(&self) -> usize {
        self.locks.len()
    }

    /// Begin a transaction at the given isolation level.
    pub fn begin(&self, isolation: IsolationLevel) -> Transaction {
        let id = self.next_txn_id.fetch_add(1, Ordering::SeqCst);
        self.begun.fetch_add(1, Ordering::Relaxed);
        Transaction::new(id, isolation, self.oracle.read_ts())
    }

    /// The snapshot a statement of `txn` should read from.
    ///
    /// Repeatable read pins the begin snapshot; read committed refreshes the
    /// snapshot for every statement.
    pub fn statement_read_ts(&self, txn: &Transaction) -> Timestamp {
        if txn.isolation().snapshot_per_transaction() {
            txn.begin_read_ts()
        } else {
            self.oracle.read_ts()
        }
    }

    /// Acquire the exclusive row lock `(table, key)` for `txn` in the first
    /// shard's lock table, charging any wait time to the transaction.
    pub fn lock_for_write(&self, txn: &mut Transaction, table: &str, key: &Key) -> TxnResult<()> {
        self.lock_for_write_on(0, txn, table, key)
    }

    /// Acquire the exclusive row lock `(table, key)` for `txn` in the lock
    /// table of storage shard `shard`, charging any wait time to the
    /// transaction.  The caller is responsible for routing: the same
    /// `(table, key)` must always be locked on the same shard.
    pub fn lock_for_write_on(
        &self,
        shard: usize,
        txn: &mut Transaction,
        table: &str,
        key: &Key,
    ) -> TxnResult<()> {
        if !txn.is_active() {
            return Err(TxnError::InvalidState {
                operation: "write in",
                state: txn.state_name(),
            });
        }
        let waited = self.locks[shard].lock_exclusive(txn.id(), table, key)?;
        txn.add_lock_wait(waited);
        Ok(())
    }

    fn release_everywhere(&self, txn_id: u64) {
        for locks in &self.locks {
            locks.release_all(txn_id);
        }
    }

    fn summed_lock_stats(&self) -> LockStatsSnapshot {
        let mut total = LockStatsSnapshot::default();
        for locks in &self.locks {
            let s = locks.stats();
            total.acquisitions += s.acquisitions;
            total.contended += s.contended;
            total.wait_die_aborts += s.wait_die_aborts;
            total.timeouts += s.timeouts;
            total.wait_nanos += s.wait_nanos;
        }
        total
    }

    /// Commit `txn`: allocate the commit timestamp, mark the handle committed
    /// and release its locks.  The *caller* (the engine) is responsible for
    /// applying the write set to storage using the returned timestamp and for
    /// performing snapshot-isolation write-conflict validation beforehand.
    pub fn commit(&self, txn: &mut Transaction) -> TxnResult<Timestamp> {
        if !txn.is_active() {
            return Err(TxnError::InvalidState {
                operation: "commit",
                state: txn.state_name(),
            });
        }
        let commit_ts = self.oracle.commit_ts();
        txn.mark_committed();
        self.release_everywhere(txn.id());
        self.committed.fetch_add(1, Ordering::Relaxed);
        Ok(commit_ts)
    }

    /// Allocate a commit timestamp for `txn` *without* finishing it.
    ///
    /// The engine uses this to install the write set into storage stamped with
    /// the commit timestamp while still holding the transaction's locks, and
    /// then calls [`Self::finish_commit`].  Splitting the two steps closes the
    /// window in which another snapshot could observe the commit timestamp but
    /// not yet the installed versions.
    pub fn prepare_commit(&self, txn: &Transaction) -> TxnResult<Timestamp> {
        if !txn.is_active() {
            return Err(TxnError::InvalidState {
                operation: "commit",
                state: txn.state_name(),
            });
        }
        Ok(self.oracle.commit_ts())
    }

    /// Mark `txn` committed and release its locks (the write set has already
    /// been applied by the caller using the timestamp from
    /// [`Self::prepare_commit`]).
    pub fn finish_commit(&self, txn: &mut Transaction) -> TxnResult<()> {
        if !txn.is_active() {
            return Err(TxnError::InvalidState {
                operation: "commit",
                state: txn.state_name(),
            });
        }
        txn.mark_committed();
        self.release_everywhere(txn.id());
        self.committed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Abort `txn` and release its locks.  Idempotent for already-finished
    /// transactions.
    pub fn abort(&self, txn: &mut Transaction) {
        if txn.state() == TxnState::Active {
            txn.mark_aborted();
            self.aborted.fetch_add(1, Ordering::Relaxed);
        }
        self.release_everywhere(txn.id());
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TxnManagerStats {
        TxnManagerStats {
            begun: self.begun.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            locks: self.summed_lock_stats(),
        }
    }
}

impl Default for TransactionManager {
    fn default() -> Self {
        TransactionManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_assigns_increasing_ids_and_snapshots() {
        let mgr = TransactionManager::new();
        let a = mgr.begin(IsolationLevel::RepeatableRead);
        let b = mgr.begin(IsolationLevel::RepeatableRead);
        assert!(b.id() > a.id());
        assert!(b.begin_read_ts() >= a.begin_read_ts());
    }

    #[test]
    fn repeatable_read_pins_snapshot_read_committed_refreshes() {
        let mgr = TransactionManager::new();
        let rr = mgr.begin(IsolationLevel::RepeatableRead);
        let rc = mgr.begin(IsolationLevel::ReadCommitted);
        let before_rr = mgr.statement_read_ts(&rr);
        let before_rc = mgr.statement_read_ts(&rc);
        // Another transaction commits, advancing the clock.
        let mut other = mgr.begin(IsolationLevel::RepeatableRead);
        mgr.commit(&mut other).unwrap();
        assert_eq!(mgr.statement_read_ts(&rr), before_rr);
        assert!(mgr.statement_read_ts(&rc) > before_rc);
    }

    #[test]
    fn commit_releases_locks_and_counts() {
        let mgr = TransactionManager::new();
        let mut txn = mgr.begin(IsolationLevel::RepeatableRead);
        mgr.lock_for_write(&mut txn, "ITEM", &Key::int(1)).unwrap();
        assert_eq!(mgr.locks().held_by(txn.id()), 1);
        let ts = mgr.commit(&mut txn).unwrap();
        assert!(ts > 0);
        assert_eq!(mgr.locks().held_by(txn.id()), 0);
        assert_eq!(mgr.stats().committed, 1);
    }

    #[test]
    fn double_commit_is_rejected() {
        let mgr = TransactionManager::new();
        let mut txn = mgr.begin(IsolationLevel::ReadCommitted);
        mgr.commit(&mut txn).unwrap();
        assert!(matches!(
            mgr.commit(&mut txn),
            Err(TxnError::InvalidState { .. })
        ));
    }

    #[test]
    fn abort_releases_locks_and_is_idempotent() {
        let mgr = TransactionManager::new();
        let mut txn = mgr.begin(IsolationLevel::RepeatableRead);
        mgr.lock_for_write(&mut txn, "ITEM", &Key::int(1)).unwrap();
        mgr.abort(&mut txn);
        mgr.abort(&mut txn);
        assert_eq!(mgr.stats().aborted, 1);
        assert_eq!(mgr.locks().held_by(txn.id()), 0);
        assert!(matches!(
            mgr.lock_for_write(&mut txn, "ITEM", &Key::int(2)),
            Err(TxnError::InvalidState { .. })
        ));
    }

    #[test]
    fn prepare_then_finish_commit_keeps_locks_until_finish() {
        let mgr = TransactionManager::new();
        let mut txn = mgr.begin(IsolationLevel::RepeatableRead);
        mgr.lock_for_write(&mut txn, "ITEM", &Key::int(1)).unwrap();
        let ts = mgr.prepare_commit(&txn).unwrap();
        assert!(ts > txn.begin_read_ts());
        assert_eq!(mgr.locks().held_by(txn.id()), 1, "locks survive prepare");
        mgr.finish_commit(&mut txn).unwrap();
        assert_eq!(mgr.locks().held_by(txn.id()), 0);
        assert_eq!(mgr.stats().committed, 1);
        assert!(mgr.finish_commit(&mut txn).is_err());
    }

    #[test]
    fn sharded_lock_tables_are_independent_and_all_released() {
        let mgr = TransactionManager::with_shards(Duration::from_millis(100), 4);
        assert_eq!(mgr.lock_shards(), 4);
        let mut a = mgr.begin(IsolationLevel::RepeatableRead);
        let mut b = mgr.begin(IsolationLevel::RepeatableRead);
        mgr.lock_for_write_on(1, &mut a, "ITEM", &Key::int(7))
            .unwrap();
        // Same (table, key) on a *different* shard's table does not conflict:
        // routing guarantees a key only ever locks on its own shard.
        mgr.lock_for_write_on(2, &mut b, "ITEM", &Key::int(7))
            .unwrap();
        mgr.lock_for_write_on(3, &mut a, "ITEM", &Key::int(8))
            .unwrap();
        assert_eq!(mgr.locks_for_shard(1).held_by(a.id()), 1);
        assert_eq!(mgr.locks_for_shard(3).held_by(a.id()), 1);
        mgr.finish_commit(&mut a).unwrap();
        for shard in 0..4 {
            assert_eq!(mgr.locks_for_shard(shard).held_by(a.id()), 0);
        }
        mgr.abort(&mut b);
        assert_eq!(mgr.locks_for_shard(2).held_by(b.id()), 0);
        let stats = mgr.stats();
        assert_eq!(stats.locks.acquisitions, 3, "stats sum across shards");
    }

    #[test]
    fn conflicting_writers_follow_wait_die() {
        let mgr = TransactionManager::new();
        let mut old = mgr.begin(IsolationLevel::RepeatableRead);
        let mut young = mgr.begin(IsolationLevel::RepeatableRead);
        mgr.lock_for_write(&mut old, "ITEM", &Key::int(7)).unwrap();
        let err = mgr.lock_for_write(&mut young, "ITEM", &Key::int(7));
        assert!(matches!(err, Err(TxnError::Aborted { .. })));
        mgr.abort(&mut young);
        mgr.commit(&mut old).unwrap();
    }
}

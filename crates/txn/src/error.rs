//! Transaction errors.

use olxp_storage::StorageError;
use std::fmt;

/// Result alias for transaction operations.
pub type TxnResult<T> = Result<T, TxnError>;

/// Errors produced by the transaction layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The transaction was aborted by the wait-die policy (it was younger than
    /// the lock holder).  The caller should retry with a new transaction.
    Aborted {
        /// Table of the conflicting lock.
        table: String,
        /// Human-readable key of the conflicting lock.
        key: String,
    },
    /// Waiting for a lock exceeded the configured timeout.
    LockTimeout {
        /// Table of the lock that timed out.
        table: String,
        /// Human-readable key of the lock.
        key: String,
    },
    /// Write-write conflict detected at commit (snapshot isolation).
    WriteConflict {
        /// Table of the conflicting write.
        table: String,
        /// Human-readable key of the conflicting write.
        key: String,
    },
    /// The transaction handle is in the wrong state for the operation.
    InvalidState {
        /// What was attempted.
        operation: &'static str,
        /// The state the transaction was in.
        state: &'static str,
    },
    /// Error bubbled up from the storage layer.
    Storage(StorageError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Aborted { table, key } => {
                write!(f, "transaction aborted by wait-die on {table} {key}")
            }
            TxnError::LockTimeout { table, key } => {
                write!(f, "lock wait timed out on {table} {key}")
            }
            TxnError::WriteConflict { table, key } => {
                write!(f, "write-write conflict on {table} {key}")
            }
            TxnError::InvalidState { operation, state } => {
                write!(f, "cannot {operation} a transaction in state {state}")
            }
            TxnError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<StorageError> for TxnError {
    fn from(e: StorageError) -> Self {
        TxnError::Storage(e)
    }
}

impl TxnError {
    /// True when the transaction should simply be retried (the standard
    /// response to wait-die aborts and write conflicts in the benchmark
    /// driver, mirroring how OLxPBench retries aborted TPC-C transactions).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TxnError::Aborted { .. }
                | TxnError::WriteConflict { .. }
                | TxnError::LockTimeout { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(TxnError::Aborted {
            table: "t".into(),
            key: "k".into()
        }
        .is_retryable());
        assert!(TxnError::WriteConflict {
            table: "t".into(),
            key: "k".into()
        }
        .is_retryable());
        assert!(!TxnError::InvalidState {
            operation: "commit",
            state: "aborted"
        }
        .is_retryable());
        assert!(!TxnError::Storage(StorageError::TableNotFound("x".into())).is_retryable());
    }

    #[test]
    fn storage_errors_convert() {
        let e: TxnError = StorageError::TableNotFound("item".into()).into();
        assert!(e.to_string().contains("item"));
    }
}

//! Row-level lock manager with wait-time instrumentation.
//!
//! Writers take exclusive row locks before buffering a write; readers never
//! lock (MVCC serves them a snapshot), matching the behaviour of the systems
//! the paper evaluates.  Deadlocks are avoided with a **wait-die** policy: an
//! older transaction waits for a younger lock holder, a younger transaction is
//! aborted immediately and retried by the benchmark driver.
//!
//! The manager measures the time transactions spend blocked on locks.  The
//! normalized lock overhead of the paper's Figure 4 is computed from
//! [`LockStatsSnapshot::wait_nanos`] relative to the engine's busy time.

use crate::error::{TxnError, TxnResult};
use crate::TxnId;
use olxp_storage::Key;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A lockable resource: a row of a table.
pub type LockTarget = (String, Key);

#[derive(Debug, Clone)]
struct LockEntry {
    holder: TxnId,
}

/// Aggregate lock counters.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_die_aborts: AtomicU64,
    timeouts: AtomicU64,
    wait_nanos: AtomicU64,
}

/// A point-in-time copy of [`LockStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStatsSnapshot {
    /// Locks granted.
    pub acquisitions: u64,
    /// Lock requests that had to wait or abort because another transaction
    /// held the lock.
    pub contended: u64,
    /// Requests aborted by the wait-die policy.
    pub wait_die_aborts: u64,
    /// Requests that gave up after the wait timeout.
    pub timeouts: u64,
    /// Total nanoseconds spent blocked waiting for locks.
    pub wait_nanos: u64,
}

impl LockStats {
    fn snapshot(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            wait_die_aborts: self.wait_die_aborts.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wait_nanos: self.wait_nanos.load(Ordering::Relaxed),
        }
    }
}

struct LockShard {
    table: Mutex<HashMap<LockTarget, LockEntry>>,
    released: Condvar,
}

/// Row-level exclusive lock manager shared by every session of an engine.
pub struct LockManager {
    shards: Vec<LockShard>,
    held: Mutex<HashMap<TxnId, Vec<LockTarget>>>,
    stats: LockStats,
    wait_timeout: Duration,
}

impl LockManager {
    /// Create a manager with the default wait timeout (1 second).
    pub fn new() -> LockManager {
        LockManager::with_timeout(Duration::from_secs(1))
    }

    /// Create a manager with an explicit lock-wait timeout.
    pub fn with_timeout(wait_timeout: Duration) -> LockManager {
        let shards = (0..16)
            .map(|_| LockShard {
                table: Mutex::new(HashMap::new()),
                released: Condvar::new(),
            })
            .collect();
        LockManager {
            shards,
            held: Mutex::new(HashMap::new()),
            stats: LockStats::default(),
            wait_timeout,
        }
    }

    fn shard_for(&self, target: &LockTarget) -> &LockShard {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        target.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Acquire an exclusive lock on `(table, key)` for transaction `txn_id`.
    ///
    /// `txn_id` doubles as the transaction's age: smaller ids are older.
    /// Returns the nanoseconds spent waiting (0 when granted immediately).
    pub fn lock_exclusive(&self, txn_id: TxnId, table: &str, key: &Key) -> TxnResult<u64> {
        let target: LockTarget = (table.to_string(), key.clone());
        let shard = self.shard_for(&target);
        let deadline = Instant::now() + self.wait_timeout;
        let started = Instant::now();
        let mut guard = shard.table.lock();
        loop {
            match guard.get(&target) {
                None => {
                    guard.insert(target.clone(), LockEntry { holder: txn_id });
                    drop(guard);
                    self.held.lock().entry(txn_id).or_default().push(target);
                    self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
                    let waited = started.elapsed().as_nanos() as u64;
                    self.stats.wait_nanos.fetch_add(waited, Ordering::Relaxed);
                    return Ok(waited);
                }
                Some(entry) if entry.holder == txn_id => {
                    // Re-entrant acquisition.
                    let waited = started.elapsed().as_nanos() as u64;
                    self.stats.wait_nanos.fetch_add(waited, Ordering::Relaxed);
                    return Ok(waited);
                }
                Some(entry) => {
                    self.stats.contended.fetch_add(1, Ordering::Relaxed);
                    // Wait-die: only an older transaction (smaller id) may wait.
                    if txn_id > entry.holder {
                        self.stats.wait_die_aborts.fetch_add(1, Ordering::Relaxed);
                        let waited = started.elapsed().as_nanos() as u64;
                        self.stats.wait_nanos.fetch_add(waited, Ordering::Relaxed);
                        return Err(TxnError::Aborted {
                            table: table.to_string(),
                            key: key.to_string(),
                        });
                    }
                    let timed_out = shard.released.wait_until(&mut guard, deadline).timed_out();
                    if timed_out {
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        let waited = started.elapsed().as_nanos() as u64;
                        self.stats.wait_nanos.fetch_add(waited, Ordering::Relaxed);
                        return Err(TxnError::LockTimeout {
                            table: table.to_string(),
                            key: key.to_string(),
                        });
                    }
                }
            }
        }
    }

    /// Release every lock held by `txn_id`.
    pub fn release_all(&self, txn_id: TxnId) {
        let targets = self.held.lock().remove(&txn_id).unwrap_or_default();
        for target in targets {
            let shard = self.shard_for(&target);
            let mut guard = shard.table.lock();
            if guard.get(&target).map(|e| e.holder) == Some(txn_id) {
                guard.remove(&target);
            }
            shard.released.notify_all();
        }
    }

    /// Number of locks currently held by `txn_id` (for tests/metrics).
    pub fn held_by(&self, txn_id: TxnId) -> usize {
        self.held.lock().get(&txn_id).map_or(0, Vec::len)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LockStatsSnapshot {
        self.stats.snapshot()
    }
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new()
    }
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager")
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn uncontended_lock_is_granted() {
        let lm = LockManager::new();
        let waited = lm.lock_exclusive(1, "ITEM", &Key::int(5)).unwrap();
        assert!(waited < Duration::from_millis(100).as_nanos() as u64);
        assert_eq!(lm.held_by(1), 1);
        assert_eq!(lm.stats().acquisitions, 1);
        lm.release_all(1);
        assert_eq!(lm.held_by(1), 0);
    }

    #[test]
    fn reentrant_lock_is_granted() {
        let lm = LockManager::new();
        lm.lock_exclusive(1, "ITEM", &Key::int(5)).unwrap();
        lm.lock_exclusive(1, "ITEM", &Key::int(5)).unwrap();
        assert_eq!(lm.held_by(1), 1);
    }

    #[test]
    fn younger_transaction_dies_on_conflict() {
        let lm = LockManager::new();
        lm.lock_exclusive(1, "ITEM", &Key::int(5)).unwrap();
        let err = lm.lock_exclusive(2, "ITEM", &Key::int(5)).unwrap_err();
        assert!(matches!(err, TxnError::Aborted { .. }));
        assert_eq!(lm.stats().wait_die_aborts, 1);
    }

    #[test]
    fn older_transaction_waits_until_release() {
        let lm = Arc::new(LockManager::new());
        lm.lock_exclusive(5, "ITEM", &Key::int(9)).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = thread::spawn(move || lm2.lock_exclusive(1, "ITEM", &Key::int(9)));
        thread::sleep(Duration::from_millis(30));
        lm.release_all(5);
        let waited = waiter.join().unwrap().unwrap();
        assert!(waited >= Duration::from_millis(10).as_nanos() as u64);
        assert!(lm.stats().wait_nanos >= waited);
        assert_eq!(lm.stats().contended, 1);
    }

    #[test]
    fn older_transaction_times_out_eventually() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.lock_exclusive(5, "ITEM", &Key::int(9)).unwrap();
        let err = lm.lock_exclusive(1, "ITEM", &Key::int(9)).unwrap_err();
        assert!(matches!(err, TxnError::LockTimeout { .. }));
        assert_eq!(lm.stats().timeouts, 1);
    }

    #[test]
    fn locks_on_different_keys_do_not_conflict() {
        let lm = LockManager::new();
        lm.lock_exclusive(1, "ITEM", &Key::int(1)).unwrap();
        lm.lock_exclusive(2, "ITEM", &Key::int(2)).unwrap();
        lm.lock_exclusive(3, "STOCK", &Key::int(1)).unwrap();
        assert_eq!(lm.stats().contended, 0);
    }

    #[test]
    fn release_wakes_all_waiters() {
        let lm = Arc::new(LockManager::new());
        lm.lock_exclusive(10, "T", &Key::int(1)).unwrap();
        let mut handles = Vec::new();
        for waiter_id in 1..=3u64 {
            let lm = Arc::clone(&lm);
            handles.push(thread::spawn(move || {
                lm.lock_exclusive(waiter_id, "T", &Key::int(1)).is_ok()
            }));
        }
        thread::sleep(Duration::from_millis(30));
        lm.release_all(10);
        let successes = handles
            .into_iter()
            .filter(|h| matches!(h, _))
            .map(|h| h.join().unwrap())
            .filter(|ok| *ok)
            .count();
        // At least one waiter must eventually obtain the lock; the others may
        // be serialised behind it or die by wait-die, both acceptable.
        assert!(successes >= 1);
    }
}

//! Transaction handles and write sets.

use crate::isolation::IsolationLevel;
use crate::TxnId;
use olxp_storage::{Key, Row, Timestamp};
use std::collections::HashMap;

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Running; statements may still be executed.
    Active,
    /// Successfully committed at `commit_ts`.
    Committed,
    /// Rolled back (either explicitly or by a conflict).
    Aborted,
}

/// One buffered mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert a new row.
    Insert {
        /// Target table.
        table: String,
        /// Primary key of the new row.
        key: Key,
        /// The row image.
        row: Row,
    },
    /// Replace an existing row.
    Update {
        /// Target table.
        table: String,
        /// Primary key of the row.
        key: Key,
        /// The new row image.
        row: Row,
    },
    /// Delete a row.
    Delete {
        /// Target table.
        table: String,
        /// Primary key of the row.
        key: Key,
    },
}

impl WriteOp {
    /// Target table of the operation.
    pub fn table(&self) -> &str {
        match self {
            WriteOp::Insert { table, .. }
            | WriteOp::Update { table, .. }
            | WriteOp::Delete { table, .. } => table,
        }
    }

    /// Primary key of the affected row.
    pub fn key(&self) -> &Key {
        match self {
            WriteOp::Insert { key, .. }
            | WriteOp::Update { key, .. }
            | WriteOp::Delete { key, .. } => key,
        }
    }

    /// The new row image, if any (none for deletes).
    pub fn row(&self) -> Option<&Row> {
        match self {
            WriteOp::Insert { row, .. } | WriteOp::Update { row, .. } => Some(row),
            WriteOp::Delete { .. } => None,
        }
    }
}

/// The ordered list of buffered writes of one transaction, with an index for
/// read-your-own-writes lookups.
#[derive(Debug, Default, Clone)]
pub struct WriteSet {
    ops: Vec<WriteOp>,
    /// (table, key) -> index of the latest op touching that row.
    latest: HashMap<(String, Key), usize>,
}

impl WriteSet {
    /// Create an empty write set.
    pub fn new() -> WriteSet {
        WriteSet::default()
    }

    /// Append an operation.
    pub fn push(&mut self, op: WriteOp) {
        let entry = (op.table().to_string(), op.key().clone());
        self.ops.push(op);
        self.latest.insert(entry, self.ops.len() - 1);
    }

    /// All operations in execution order.
    pub fn ops(&self) -> &[WriteOp] {
        &self.ops
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Read-your-own-writes: the effect of this transaction on `(table, key)`.
    ///
    /// * `None` — the transaction has not touched the row.
    /// * `Some(None)` — the transaction deleted the row.
    /// * `Some(Some(row))` — the transaction wrote this image.
    pub fn effective_row(&self, table: &str, key: &Key) -> Option<Option<&Row>> {
        self.latest
            .get(&(table.to_string(), key.clone()))
            .map(|&idx| self.ops[idx].row())
    }

    /// Distinct (table, key) pairs written — the lock footprint.
    pub fn touched_keys(&self) -> impl Iterator<Item = (&str, &Key)> {
        self.latest.keys().map(|(t, k)| (t.as_str(), k))
    }
}

/// A transaction handle.
///
/// The handle is a passive record: it owns the snapshot timestamp, the write
/// set and bookkeeping counters; the engine session drives reads, writes and
/// commit against it.
#[derive(Debug)]
pub struct Transaction {
    id: TxnId,
    isolation: IsolationLevel,
    begin_read_ts: Timestamp,
    state: TxnState,
    write_set: WriteSet,
    lock_wait_nanos: u64,
    /// Number of statements executed (used by the engine to charge per-statement overhead).
    statements: u64,
}

impl Transaction {
    /// Create an active transaction (used by the manager).
    pub fn new(id: TxnId, isolation: IsolationLevel, begin_read_ts: Timestamp) -> Transaction {
        Transaction {
            id,
            isolation,
            begin_read_ts,
            state: TxnState::Active,
            write_set: WriteSet::new(),
            lock_wait_nanos: 0,
            statements: 0,
        }
    }

    /// Transaction id (also its wait-die age: smaller is older).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Snapshot timestamp taken at begin.
    pub fn begin_read_ts(&self) -> Timestamp {
        self.begin_read_ts
    }

    /// Current state.
    pub fn state(&self) -> TxnState {
        self.state
    }

    /// True while statements may still run.
    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// The buffered writes.
    pub fn write_set(&self) -> &WriteSet {
        &self.write_set
    }

    /// Mutable access to the buffered writes (engine only).
    pub fn write_set_mut(&mut self) -> &mut WriteSet {
        &mut self.write_set
    }

    /// Record lock wait time charged to this transaction.
    pub fn add_lock_wait(&mut self, nanos: u64) {
        self.lock_wait_nanos += nanos;
    }

    /// Total lock wait time charged so far.
    pub fn lock_wait_nanos(&self) -> u64 {
        self.lock_wait_nanos
    }

    /// Record one executed statement.
    pub fn note_statement(&mut self) {
        self.statements += 1;
    }

    /// Number of statements executed.
    pub fn statements(&self) -> u64 {
        self.statements
    }

    /// Mark committed (manager only).
    pub fn mark_committed(&mut self) {
        self.state = TxnState::Committed;
    }

    /// Mark aborted (manager only).
    pub fn mark_aborted(&mut self) {
        self.state = TxnState::Aborted;
    }

    /// Human-readable state name (for errors).
    pub fn state_name(&self) -> &'static str {
        match self.state {
            TxnState::Active => "active",
            TxnState::Committed => "committed",
            TxnState::Aborted => "aborted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_storage::Value;

    fn row(v: i64) -> Row {
        Row::new(vec![Value::Int(v)])
    }

    #[test]
    fn write_set_tracks_latest_image_per_key() {
        let mut ws = WriteSet::new();
        ws.push(WriteOp::Insert {
            table: "T".into(),
            key: Key::int(1),
            row: row(10),
        });
        ws.push(WriteOp::Update {
            table: "T".into(),
            key: Key::int(1),
            row: row(20),
        });
        assert_eq!(ws.len(), 2);
        let effective = ws.effective_row("T", &Key::int(1)).unwrap().unwrap();
        assert_eq!(effective[0], Value::Int(20));
        assert!(ws.effective_row("T", &Key::int(2)).is_none());
    }

    #[test]
    fn delete_shows_as_some_none() {
        let mut ws = WriteSet::new();
        ws.push(WriteOp::Insert {
            table: "T".into(),
            key: Key::int(1),
            row: row(10),
        });
        ws.push(WriteOp::Delete {
            table: "T".into(),
            key: Key::int(1),
        });
        assert_eq!(ws.effective_row("T", &Key::int(1)), Some(None));
    }

    #[test]
    fn touched_keys_deduplicates() {
        let mut ws = WriteSet::new();
        for _ in 0..3 {
            ws.push(WriteOp::Update {
                table: "T".into(),
                key: Key::int(7),
                row: row(1),
            });
        }
        assert_eq!(ws.touched_keys().count(), 1);
    }

    #[test]
    fn transaction_lifecycle_bookkeeping() {
        let mut txn = Transaction::new(3, IsolationLevel::RepeatableRead, 42);
        assert!(txn.is_active());
        assert_eq!(txn.begin_read_ts(), 42);
        txn.note_statement();
        txn.add_lock_wait(1_000);
        assert_eq!(txn.statements(), 1);
        assert_eq!(txn.lock_wait_nanos(), 1_000);
        txn.mark_committed();
        assert_eq!(txn.state(), TxnState::Committed);
        assert!(!txn.is_active());
    }
}

//! Isolation levels.

use serde::{Deserialize, Serialize};

/// Isolation level of a transaction.
///
/// The paper runs TiDB at repeatable read (snapshot) isolation and notes that
/// "MemSQL only supports a read committed isolation level" (§V-A2), so these
/// two levels are what the engine implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum IsolationLevel {
    /// Each statement reads the newest committed data (MemSQL-like).
    ReadCommitted,
    /// The whole transaction reads from the snapshot taken at `begin`
    /// (TiDB's repeatable read / snapshot isolation).
    #[default]
    RepeatableRead,
}

impl IsolationLevel {
    /// Whether the read timestamp is fixed at transaction begin (`true`) or
    /// refreshed per statement (`false`).
    pub fn snapshot_per_transaction(self) -> bool {
        matches!(self, IsolationLevel::RepeatableRead)
    }

    /// Whether commit-time write-write conflict validation is required.
    ///
    /// Under snapshot isolation two transactions that both update a row one of
    /// them read from an older snapshot must not both commit ("first committer
    /// wins").  Read committed relies on locks alone.
    pub fn validates_write_conflicts(self) -> bool {
        matches!(self, IsolationLevel::RepeatableRead)
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "read-committed",
            IsolationLevel::RepeatableRead => "repeatable-read",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_semantics_follow_level() {
        assert!(IsolationLevel::RepeatableRead.snapshot_per_transaction());
        assert!(!IsolationLevel::ReadCommitted.snapshot_per_transaction());
        assert!(IsolationLevel::RepeatableRead.validates_write_conflicts());
        assert!(!IsolationLevel::ReadCommitted.validates_write_conflicts());
    }

    #[test]
    fn default_is_repeatable_read() {
        assert_eq!(IsolationLevel::default(), IsolationLevel::RepeatableRead);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(IsolationLevel::ReadCommitted.name(), "read-committed");
        assert_eq!(IsolationLevel::RepeatableRead.name(), "repeatable-read");
    }
}

//! Logical timestamp oracle.

use olxp_storage::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};

/// Issues monotonically increasing logical timestamps.
///
/// A single oracle is shared by all sessions of an engine (in TiDB this role is
/// played by the Placement Driver).  Read timestamps and commit timestamps are
/// drawn from the same sequence so that a snapshot taken at time `t` sees
/// exactly the transactions that committed with `commit_ts <= t`.
#[derive(Debug)]
pub struct TimestampOracle {
    next: AtomicU64,
}

impl Default for TimestampOracle {
    fn default() -> Self {
        TimestampOracle::new()
    }
}

impl TimestampOracle {
    /// Create an oracle starting at timestamp 1 (0 means "before all
    /// transactions" and is reserved for data loading).
    pub fn new() -> TimestampOracle {
        TimestampOracle {
            next: AtomicU64::new(1),
        }
    }

    /// Current timestamp without advancing the clock: the snapshot a new
    /// reader should use (sees everything committed so far).
    pub fn read_ts(&self) -> Timestamp {
        self.next.load(Ordering::SeqCst).saturating_sub(1)
    }

    /// Allocate a fresh commit timestamp (strictly greater than every
    /// previously returned read or commit timestamp).
    pub fn commit_ts(&self) -> Timestamp {
        self.next.fetch_add(1, Ordering::SeqCst)
    }

    /// Allocate a timestamp used for bulk-loading data before the benchmark
    /// starts; identical to [`Self::commit_ts`] but named for clarity.
    pub fn load_ts(&self) -> Timestamp {
        self.commit_ts()
    }

    /// Fast-forward the clock so that `ts` is in the past: after this call,
    /// [`Self::read_ts`] returns at least `ts` and no future commit timestamp
    /// collides with one already durable.  Used by crash recovery to resume
    /// the timeline above the newest recovered commit; never moves backwards.
    pub fn advance_to(&self, ts: Timestamp) {
        self.next.fetch_max(ts.saturating_add(1), Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn commit_timestamps_are_strictly_increasing() {
        let oracle = TimestampOracle::new();
        let a = oracle.commit_ts();
        let b = oracle.commit_ts();
        assert!(b > a);
    }

    #[test]
    fn read_ts_sees_previous_commits_only() {
        let oracle = TimestampOracle::new();
        let before = oracle.read_ts();
        let commit = oracle.commit_ts();
        let after = oracle.read_ts();
        assert!(before < commit);
        assert!(after >= commit);
    }

    #[test]
    fn advance_to_fast_forwards_but_never_rewinds() {
        let oracle = TimestampOracle::new();
        oracle.advance_to(100);
        assert_eq!(oracle.read_ts(), 100);
        assert!(oracle.commit_ts() > 100);
        oracle.advance_to(5); // stale advance is a no-op
        assert!(oracle.read_ts() >= 100);
        oracle.advance_to(Timestamp::MAX); // saturates instead of wrapping
        assert_eq!(oracle.read_ts(), Timestamp::MAX - 1);
    }

    #[test]
    fn concurrent_allocation_yields_unique_timestamps() {
        let oracle = Arc::new(TimestampOracle::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let oracle = Arc::clone(&oracle);
            handles.push(thread::spawn(move || {
                (0..1000).map(|_| oracle.commit_ts()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "timestamps must be unique");
    }
}

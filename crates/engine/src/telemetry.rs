//! Live telemetry: a background metrics sampler and embedded HTTP scrape
//! endpoints.
//!
//! Two optional background services ride on [`HybridDatabase`]:
//!
//! * **Sampler** — when [`crate::EngineConfig::telemetry_interval_ms`] is
//!   non-zero (the default is 250 ms), a dedicated thread snapshots the
//!   engine metrics every interval, diffs against the previous snapshot and
//!   appends one [`TelemetryPoint`] per interval to a fixed-capacity
//!   [`TimeSeriesRing`].  The ring feeds the per-interval timeline table in
//!   benchmark reports and the `/timeseries` endpoint.
//! * **HTTP listener** — when [`crate::EngineConfig::telemetry_addr`] (or
//!   `OLXP_TELEMETRY_ADDR`) is set, a dependency-free HTTP/1.1 listener
//!   serves `GET /metrics` (Prometheus text exposition), `/healthz` (SLO
//!   health checks, 200/503), `/snapshot` (full counter snapshot as JSON)
//!   and `/timeseries` (the sampler's ring as JSON).
//!
//! Both threads hold only a [`Weak`] reference to the database, so an open
//! database with telemetry enabled can still be dropped normally; the
//! threads observe the dead weak reference and exit, and
//! [`HybridDatabase`]'s drop shuts them down explicitly first.

use crate::database::HybridDatabase;
use crate::metrics::MetricsSnapshot;
use olxp_storage::SyncPolicy;
use olxp_trace::{
    prometheus_counter, prometheus_gauge, prometheus_histogram, Handler, HttpResponse,
    LogHistogram, SpanCategory, TelemetryPoint, TelemetryServer, TimeSeriesRing,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Per-interval points retained by the sampler ring: at the default 250 ms
/// interval this is ~17 minutes of history, bounded at ~700 KiB.
const TIMELINE_CAPACITY: usize = 4096;

/// Longest single sleep inside the sampler loop, so shutdown is never
/// delayed by more than this even under second-scale sampling intervals.
const SHUTDOWN_POLL: Duration = Duration::from_millis(25);

/// Live telemetry state shared between the sampler thread, the HTTP handler
/// and the report path.  Owned by the database via `Arc` and referenced by
/// the background threads through it (they hold the database weakly).
pub struct TelemetryState {
    started: Instant,
    ring: Mutex<TimeSeriesRing>,
    /// Set while the newest WAL LSN is ahead of the durable LSN and the
    /// durable LSN did not advance across a whole sampling interval — the
    /// signature of a wedged fsync path, surfaced by `/healthz`.
    wal_stalled: AtomicBool,
}

impl TelemetryState {
    pub(crate) fn new() -> TelemetryState {
        TelemetryState {
            started: Instant::now(),
            ring: Mutex::new(TimeSeriesRing::with_capacity(TIMELINE_CAPACITY)),
            wal_stalled: AtomicBool::new(false),
        }
    }

    /// Milliseconds since the database was opened (the sampler's time axis).
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Copy of every retained timeline point, oldest first.
    pub fn timeline(&self) -> Vec<TelemetryPoint> {
        self.ring.lock().points().to_vec()
    }

    /// Copy of the retained points sampled at or after `t_ms`.
    pub fn timeline_since(&self, t_ms: u64) -> Vec<TelemetryPoint> {
        self.ring.lock().points_since(t_ms).to_vec()
    }

    /// The ring rendered as a JSON document (the `/timeseries` body).
    pub fn timeline_json(&self) -> String {
        self.ring.lock().to_json()
    }

    /// True while the sampler believes the WAL fsync path is wedged.
    pub fn wal_stalled(&self) -> bool {
        self.wal_stalled.load(Ordering::Relaxed)
    }

    fn push(&self, point: TelemetryPoint) {
        self.ring.lock().push(point);
    }
}

impl std::fmt::Debug for TelemetryState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryState")
            .field("points", &self.ring.lock().len())
            .field("wal_stalled", &self.wal_stalled())
            .finish()
    }
}

/// The background metrics-sampler thread and its shutdown plumbing.
pub(crate) struct TelemetrySampler {
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) handle: Option<std::thread::JoinHandle<()>>,
}

/// Spawn the sampler thread.  It holds the database weakly: every tick
/// upgrades, snapshots, diffs and appends one point; when the database is
/// gone (or shutdown is flagged) the thread exits.
pub(crate) fn spawn_sampler(db: &Arc<HybridDatabase>) -> TelemetrySampler {
    let interval = Duration::from_millis(db.config().telemetry_interval_ms.max(1));
    let weak: Weak<HybridDatabase> = Arc::downgrade(db);
    let state = Arc::clone(db.telemetry_state_arc());
    let mut prev = db.metrics_snapshot();
    let mut prev_t = state.elapsed_ms();
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("olxp-telemetry-sampler".to_string())
        .spawn(move || loop {
            // Sleep the interval in small slices so shutdown (and drop) never
            // waits a full sampling period.
            let tick_deadline = Instant::now() + interval;
            while Instant::now() < tick_deadline {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(SHUTDOWN_POLL.min(tick_deadline - Instant::now()));
            }
            if stop.load(Ordering::Acquire) {
                return;
            }
            let Some(db) = weak.upgrade() else { return };
            let now = db.metrics_snapshot();
            let t_ms = state.elapsed_ms();
            let delta = now.delta_since(&prev);
            // The durable LSN failing to advance across a whole interval
            // while commits are waiting on it means the fsync path is
            // wedged.  `SyncPolicy::Never` legitimately leaves the durable
            // LSN behind, so it never counts as a stall.
            let syncing = db.is_durable() && db.config().durability.sync != SyncPolicy::Never;
            let stalled = syncing
                && now.wal.last_lsn > now.wal.durable_lsn
                && now.wal.durable_lsn == prev.wal.durable_lsn;
            state.wal_stalled.store(stalled, Ordering::Relaxed);
            state.push(sample_point(
                t_ms,
                t_ms.saturating_sub(prev_t).max(1),
                &delta,
                db.replication_lag(),
            ));
            prev = now;
            prev_t = t_ms;
            // Dropped before the next sleep: the sampler must not keep the
            // database alive across an interval while everyone else is done
            // with it.
            drop(db);
        })
        .expect("spawning the telemetry sampler thread succeeds");
    TelemetrySampler {
        shutdown,
        handle: Some(handle),
    }
}

/// Build one timeline point from an interval's metrics delta.
fn sample_point(
    t_ms: u64,
    interval_ms: u64,
    delta: &MetricsSnapshot,
    replication_lag: u64,
) -> TelemetryPoint {
    let p_us = |hist: &LogHistogram, q: f64| -> f64 {
        if hist.is_empty() {
            0.0
        } else {
            hist.value_at_quantile(q) as f64 / 1_000.0
        }
    };
    let commit = delta.stages.get(SpanCategory::Commit);
    let freshness = delta.stages.get(SpanCategory::FreshnessWait);
    TelemetryPoint {
        t_ms,
        interval_ms,
        commits: delta.commits,
        aborts: delta.aborts,
        oltp_statements: delta.statements[0],
        olap_statements: delta.statements[1],
        hybrid_statements: delta.statements[2],
        replication_applied: delta.replication_applied,
        replication_errors: delta.replication_errors,
        replication_lag,
        wal_appends: delta.wal.appends,
        wal_fsyncs: delta.wal.fsyncs,
        wal_bytes: delta.wal.bytes_written,
        chunks_compacted: delta.chunks_compacted,
        chunks_scanned: delta.chunks_scanned,
        chunks_pruned: delta.chunks_pruned_zonemap + delta.chunks_pruned_filter,
        freshness_timeouts: delta.freshness_timeouts,
        commit_p50_us: p_us(commit, 0.50),
        commit_p95_us: p_us(commit, 0.95),
        freshness_p50_us: p_us(freshness, 0.50),
        freshness_p95_us: p_us(freshness, 0.95),
    }
}

/// Bind the embedded HTTP listener on `addr` and route the four telemetry
/// endpoints to `db` (held weakly: scrapes after the database is gone get
/// 503, and the listener never keeps the engine alive).
pub(crate) fn serve(db: &Arc<HybridDatabase>, addr: &str) -> std::io::Result<TelemetryServer> {
    TelemetryServer::bind(addr, handler_for(db))
}

/// The endpoint router used by [`serve`] (separated so tests can drive it
/// without a live socket).
pub(crate) fn handler_for(db: &Arc<HybridDatabase>) -> Handler {
    let weak: Weak<HybridDatabase> = Arc::downgrade(db);
    Arc::new(move |path: &str| {
        let Some(db) = weak.upgrade() else {
            return HttpResponse::json(503, "{\"error\":\"database is shut down\"}");
        };
        match path {
            "/metrics" => HttpResponse::text(200, render_prometheus(&db)),
            "/healthz" => {
                let report = health_report(&db);
                let status = if report.healthy() { 200 } else { 503 };
                HttpResponse::json(status, report.to_json())
            }
            "/snapshot" => HttpResponse::json(200, render_snapshot_json(&db)),
            "/timeseries" => HttpResponse::json(200, db.telemetry_state().timeline_json()),
            other => HttpResponse::not_found(other),
        }
    })
}

/// One SLO health check evaluated by `/healthz`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthCheck {
    /// Stable check identifier (e.g. `replication_errors`).
    pub name: &'static str,
    /// Whether the check passed.
    pub healthy: bool,
    /// Human-readable evidence for the verdict.
    pub detail: String,
}

/// The `/healthz` verdict: every check with its evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// All evaluated checks, stable order.
    pub checks: Vec<HealthCheck>,
}

impl HealthReport {
    /// True when every check passed (the endpoint returns 200).
    pub fn healthy(&self) -> bool {
        self.checks.iter().all(|c| c.healthy)
    }

    /// The `/healthz` JSON body.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"healthy\":");
        out.push_str(if self.healthy() { "true" } else { "false" });
        out.push_str(",\"checks\":[");
        for (i, check) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            out.push_str(&json_string(check.name));
            out.push_str(",\"healthy\":");
            out.push_str(if check.healthy { "true" } else { "false" });
            out.push_str(",\"detail\":");
            out.push_str(&json_string(&check.detail));
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Replication apply-error rate above which `/healthz` degrades (1%).
const MAX_REPLICATION_ERROR_RATE: f64 = 0.01;

/// Evaluate the SLO health checks against the live engine: background-thread
/// liveness, freshness-timeout count, replication error rate and WAL fsync
/// progress.
pub fn health_report(db: &HybridDatabase) -> HealthReport {
    let snapshot = db.metrics_snapshot();
    let mut checks = Vec::new();

    let applier_expected = db.config().background_applier;
    let applier_ok = !applier_expected || db.has_background_applier();
    checks.push(HealthCheck {
        name: "replication_applier",
        healthy: applier_ok,
        detail: if !applier_expected {
            "not configured".to_string()
        } else if applier_ok {
            "running".to_string()
        } else {
            "configured but not running".to_string()
        },
    });

    let compactor_expected = db.config().compression;
    let compactor_ok = !compactor_expected || db.has_background_compactor();
    checks.push(HealthCheck {
        name: "delta_compactor",
        healthy: compactor_ok,
        detail: if !compactor_expected {
            "not configured".to_string()
        } else if compactor_ok {
            "running".to_string()
        } else {
            "configured but not running".to_string()
        },
    });

    let error_rate =
        snapshot.replication_errors as f64 / (snapshot.replication_applied.max(1)) as f64;
    checks.push(HealthCheck {
        name: "replication_errors",
        healthy: error_rate <= MAX_REPLICATION_ERROR_RATE,
        detail: format!(
            "{} errors / {} applied ({:.2}%)",
            snapshot.replication_errors,
            snapshot.replication_applied,
            error_rate * 100.0
        ),
    });

    checks.push(HealthCheck {
        name: "freshness_timeouts",
        healthy: snapshot.freshness_timeouts == 0,
        detail: format!("{} timed-out bounded reads", snapshot.freshness_timeouts),
    });

    let stalled = db.telemetry_state().wal_stalled();
    checks.push(HealthCheck {
        name: "wal_progress",
        healthy: !stalled,
        detail: if stalled {
            format!(
                "durable LSN stuck at {} with last LSN {}",
                snapshot.wal.durable_lsn, snapshot.wal.last_lsn
            )
        } else {
            "durable LSN advancing (or nothing pending)".to_string()
        },
    });

    HealthReport { checks }
}

/// Render the full Prometheus text exposition for `/metrics`.
pub(crate) fn render_prometheus(db: &HybridDatabase) -> String {
    let s = db.metrics_snapshot();
    let mut out = String::with_capacity(4096);
    prometheus_gauge(&mut out, "olxp_up", "Engine liveness.", &[(&[], 1.0)]);
    prometheus_counter(
        &mut out,
        "olxp_commits",
        "Transactions committed through the engine.",
        &[(&[], s.commits as f64)],
    );
    prometheus_counter(
        &mut out,
        "olxp_aborts",
        "Transactions aborted through the engine.",
        &[(&[], s.aborts as f64)],
    );
    prometheus_counter(
        &mut out,
        "olxp_statements",
        "Statements executed, by work class.",
        &[
            (&[("class", "oltp")], s.statements[0] as f64),
            (&[("class", "olap")], s.statements[1] as f64),
            (&[("class", "hybrid")], s.statements[2] as f64),
            (&[("class", "load")], s.statements[3] as f64),
        ],
    );
    prometheus_counter(
        &mut out,
        "olxp_replication_applied_records",
        "Replication log records applied to columnar replicas.",
        &[(&[], s.replication_applied as f64)],
    );
    prometheus_counter(
        &mut out,
        "olxp_replication_errors",
        "Failed replication apply attempts.",
        &[(&[], s.replication_errors as f64)],
    );
    prometheus_counter(
        &mut out,
        "olxp_freshness_timeouts",
        "Freshness-bounded analytical reads that timed out.",
        &[(&[], s.freshness_timeouts as f64)],
    );
    prometheus_counter(
        &mut out,
        "olxp_wal_appends",
        "WAL records appended across every shard stream.",
        &[(&[], s.wal.appends as f64)],
    );
    prometheus_counter(
        &mut out,
        "olxp_wal_fsyncs",
        "fsync calls issued by the WAL streams.",
        &[(&[], s.wal.fsyncs as f64)],
    );
    prometheus_counter(
        &mut out,
        "olxp_wal_written_bytes",
        "Bytes written to WAL segment files.",
        &[(&[], s.wal.bytes_written as f64)],
    );
    prometheus_counter(
        &mut out,
        "olxp_checkpoints",
        "Checkpoints taken.",
        &[(&[], s.wal.checkpoints as f64)],
    );
    prometheus_counter(
        &mut out,
        "olxp_chunks_scanned",
        "Column-store chunks whose rows were scanned.",
        &[(&[], s.chunks_scanned as f64)],
    );
    prometheus_counter(
        &mut out,
        "olxp_chunks_pruned",
        "Column-store chunks skipped before row access, by pruning mechanism.",
        &[
            (&[("reason", "zonemap")], s.chunks_pruned_zonemap as f64),
            (&[("reason", "filter")], s.chunks_pruned_filter as f64),
        ],
    );
    prometheus_counter(
        &mut out,
        "olxp_chunks_compacted",
        "Delta chunks sealed into the compressed main tier.",
        &[(&[], s.chunks_compacted as f64)],
    );
    prometheus_gauge(
        &mut out,
        "olxp_shards",
        "Hash-partitioned storage shards.",
        &[(&[], s.shards as f64)],
    );
    prometheus_gauge(
        &mut out,
        "olxp_replication_lag_records",
        "Appended-but-unapplied replication records, summed across shards.",
        &[(&[], db.replication_lag() as f64)],
    );
    prometheus_gauge(
        &mut out,
        "olxp_columnar_bytes",
        "Columnar replica footprint, resident (encoded) vs plain (unencoded).",
        &[
            (&[("tier", "resident")], s.col_bytes_resident as f64),
            (&[("tier", "plain")], s.col_bytes_plain as f64),
        ],
    );
    let stage_series: Vec<(&str, &LogHistogram)> = s
        .stages
        .iter_nonempty()
        .map(|(category, hist)| (category.as_str(), hist))
        .collect();
    if !stage_series.is_empty() {
        out.push_str(&prometheus_histogram(
            "olxp_stage_nanos",
            "Per-lifecycle-stage latency in nanoseconds (tracing required).",
            &stage_series,
        ));
    }
    out
}

/// Render the `/snapshot` JSON body: the full counter snapshot plus the
/// retained slow-transaction and slow-query records (copied, not drained —
/// scraping must never steal the benchmark report's data).
pub(crate) fn render_snapshot_json(db: &HybridDatabase) -> String {
    let s = db.metrics_snapshot();
    let mut out = String::with_capacity(2048);
    out.push('{');
    push_field(&mut out, "uptime_ms", db.telemetry_state().elapsed_ms());
    push_field(&mut out, "commits", s.commits);
    push_field(&mut out, "aborts", s.aborts);
    push_field(&mut out, "oltp_statements", s.statements[0]);
    push_field(&mut out, "olap_statements", s.statements[1]);
    push_field(&mut out, "hybrid_statements", s.statements[2]);
    push_field(&mut out, "load_statements", s.statements[3]);
    push_field(&mut out, "replication_applied", s.replication_applied);
    push_field(&mut out, "replication_errors", s.replication_errors);
    push_field(&mut out, "replication_lag_records", db.replication_lag());
    push_field(&mut out, "freshness_observations", s.freshness_observations);
    push_field(&mut out, "freshness_timeouts", s.freshness_timeouts);
    push_field(&mut out, "distributed_commits", s.distributed_commits);
    push_field(&mut out, "wal_appends", s.wal.appends);
    push_field(&mut out, "wal_fsyncs", s.wal.fsyncs);
    push_field(&mut out, "wal_bytes_written", s.wal.bytes_written);
    push_field(&mut out, "wal_last_lsn", s.wal.last_lsn);
    push_field(&mut out, "wal_durable_lsn", s.wal.durable_lsn);
    push_field(&mut out, "checkpoints", s.wal.checkpoints);
    push_field(&mut out, "chunks_scanned", s.chunks_scanned);
    push_field(&mut out, "chunks_pruned_zonemap", s.chunks_pruned_zonemap);
    push_field(&mut out, "chunks_pruned_filter", s.chunks_pruned_filter);
    push_field(&mut out, "chunks_compacted", s.chunks_compacted);
    push_field(&mut out, "shards", s.shards);
    push_field(&mut out, "col_bytes_resident", s.col_bytes_resident);
    push_field(&mut out, "col_bytes_plain", s.col_bytes_plain);
    out.push_str("\"slow_txns\":[");
    for (i, record) in db.slow_txn_log().records().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(&record.format()));
    }
    out.push_str("],\"slow_queries\":[");
    for (i, record) in db.slow_query_log().records().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(&record.format()));
    }
    out.push_str("]}");
    out
}

fn push_field(out: &mut String, name: &str, value: u64) {
    out.push_str(&json_string(name));
    out.push(':');
    out.push_str(&value.to_string());
    out.push(',');
}

/// Minimal JSON string encoder for the hand-rolled bodies above.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_trace::StageBreakdown;

    #[test]
    fn sample_point_derives_interval_fields() {
        let mut delta = MetricsSnapshot {
            commits: 50,
            aborts: 2,
            replication_applied: 40,
            chunks_pruned_zonemap: 3,
            chunks_pruned_filter: 4,
            freshness_timeouts: 1,
            ..MetricsSnapshot::default()
        };
        delta.statements = [100, 10, 5, 0];
        delta.wal.appends = 70;
        let mut stages = StageBreakdown::new();
        stages.record(SpanCategory::Commit, 2_000_000);
        delta.stages = stages;
        let point = sample_point(1_250, 250, &delta, 9);
        assert_eq!(point.commits, 50);
        assert_eq!(point.oltp_statements, 100);
        assert_eq!(point.chunks_pruned, 7);
        assert_eq!(point.replication_lag, 9);
        assert_eq!(point.freshness_timeouts, 1);
        assert!((point.commit_tps() - 200.0).abs() < 1e-9);
        assert!(point.commit_p50_us >= 1_900.0, "p50 ≈ 2ms in µs");
        assert_eq!(point.freshness_p50_us, 0.0, "empty histogram reads zero");
    }

    #[test]
    fn health_report_json_shape() {
        let report = HealthReport {
            checks: vec![
                HealthCheck {
                    name: "a",
                    healthy: true,
                    detail: "fine \"quoted\"".to_string(),
                },
                HealthCheck {
                    name: "b",
                    healthy: false,
                    detail: "broken".to_string(),
                },
            ],
        };
        assert!(!report.healthy());
        let json = report.to_json();
        assert!(json.starts_with("{\"healthy\":false,"));
        assert!(json.contains("\"fine \\\"quoted\\\"\""), "{json}");
        let healthy = HealthReport {
            checks: vec![HealthCheck {
                name: "a",
                healthy: true,
                detail: String::new(),
            }],
        };
        assert!(healthy.healthy());
        assert!(healthy.to_json().starts_with("{\"healthy\":true,"));
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}

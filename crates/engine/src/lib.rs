//! # olxp-engine
//!
//! The HTAP database substrate OLxPBench-RS benchmarks against.
//!
//! The paper evaluates two commercial distributed HTAP DBMSs — TiDB (a
//! dual-engine system: TiKV row store + asynchronously replicated TiFlash
//! column store, snapshot isolation, SSD storage) and MemSQL (a single-engine
//! in-memory system restricted to read-committed isolation) — plus OceanBase
//! for the scalability study.  None of those systems is available here, so this
//! crate implements the three architectural archetypes from scratch on top of
//! the `olxp-storage`, `olxp-txn` and `olxp-query` substrates:
//!
//! * [`config::EngineArchitecture::SingleEngine`] — MemSQL-like: memory-speed
//!   storage, read-committed isolation, OLTP and OLAP competing inside the same
//!   engine, and a vertical-partitioning penalty for the relationship queries
//!   inside hybrid transactions;
//! * [`config::EngineArchitecture::DualEngine`] — TiDB-like: SSD-speed row
//!   store, repeatable-read snapshot isolation, standalone analytical queries
//!   served by columnar replicas fed through an asynchronous replication log,
//!   hybrid transactions pinned to the row store;
//! * [`config::EngineArchitecture::SharedNothing`] — OceanBase-like
//!   configuration used only by the scalability experiment.
//!
//! A [`cluster::Cluster`] models the distributed deployment (hash
//! partitioning, per-node worker pools, two-phase commit, scatter-gather) and
//! the [`olxp_storage::CostParams`] service-time model converts the physical
//! work reported by the executor into latency, so that the *shape* of every
//! result in the paper's evaluation can be reproduced on one host.
//!
//! The public entry point is [`database::HybridDatabase`]; benchmark driver
//! threads obtain a [`session::Session`] each and execute online transactions,
//! standalone analytical queries and hybrid transactions through it.

pub mod cluster;
pub mod config;
pub mod database;
pub mod error;
pub mod metrics;
pub mod session;
pub mod slowlog;
pub mod telemetry;

pub use cluster::{Cluster, NodeId};
pub use config::{DurabilityConfig, EngineArchitecture, EngineConfig, FreshnessPolicy};
pub use database::{shard_of, AnalyticalRoute, HybridDatabase, RecoveryReport};
pub use error::{EngineError, EngineResult};
pub use metrics::{
    EngineMetrics, FreshnessSample, MetricsSnapshot, ShardBreakdown, WalMetrics, WorkClass,
};
pub use olxp_storage::SyncPolicy;
pub use session::{Session, TxnHandle};
pub use slowlog::{SlowQueryLog, SlowQueryRecord, SlowTxnLog, SlowTxnRecord};
pub use telemetry::{HealthCheck, HealthReport, TelemetryState};

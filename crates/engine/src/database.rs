//! The HTAP database facade.
//!
//! Since the sharding refactor the write path is hash-partitioned into N
//! engine [`Shard`]s.  Each shard owns its own `RowTable` partition of every
//! table, its own lock table (held by the transaction manager), its own
//! replication log + applier feeding the shared columnar replicas, its own
//! segmented WAL stream (`wal-shard<K>-<seq>.seg`) and its own commit gate.
//! The timestamp oracle stays global: it is the single commit-timestamp
//! authority, so snapshots remain consistent across shards.  `shards = 1`
//! is behaviorally identical to the unsharded engine (including WAL file
//! names), which keeps the seed configuration and all existing tests valid.

use crate::cluster::Cluster;
use crate::config::{EngineArchitecture, EngineConfig};
use crate::error::{EngineError, EngineResult};
use crate::metrics::{EngineMetrics, MetricsSnapshot, WalMetrics, WorkClass};
use crate::session::Session;
use crate::slowlog::{SlowQueryLog, SlowTxnLog};
use crate::telemetry::{self, HealthReport, TelemetrySampler, TelemetryState};
use olxp_storage::checkpoint::{load_latest_checkpoint, write_checkpoint};
use olxp_storage::wal::{ReplayedRecord, WalReplay};
use olxp_storage::{
    Catalog, CheckpointData, ColumnTable, Key, MemoryFootprint, MutationOp, ReplicationLog,
    Replicator, Row, RowTable, StorageError, TableCheckpoint, TableSchema, Timestamp, Wal, WalOp,
    WalRecord,
};
use olxp_trace::{TelemetryPoint, TelemetryServer};
use olxp_txn::TransactionManager;
use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which physical store a standalone analytical query is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyticalRoute {
    /// Served by the row store (TiKV-style scan).
    RowStore,
    /// Served by the columnar replicas (TiFlash-style scan).
    ColumnStore,
}

/// The dedicated replication applier thread and its shutdown plumbing.
struct BackgroundApplier {
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The dedicated delta-compactor thread and its shutdown plumbing.
struct BackgroundCompactor {
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Wake-up signal between the writers that grow delta tails (the replication
/// appliers and opportunistic catch-up) and the background compactor.
///
/// A plain `Mutex<bool>` + condvar rather than a queue: the compactor sweeps
/// every table anyway, so all a notification needs to convey is "something
/// was applied since your last sweep".  The flag absorbs notifications that
/// arrive while the compactor is mid-sweep, so work is never missed, and the
/// timed wait bounds staleness if a notification is ever lost.
struct CompactionSignal {
    pending: Mutex<bool>,
    condvar: Condvar,
}

impl CompactionSignal {
    fn new() -> CompactionSignal {
        CompactionSignal {
            pending: Mutex::new(false),
            condvar: Condvar::new(),
        }
    }

    /// Record that delta tails may have grown and wake the compactor.
    fn notify(&self) {
        *self.pending.lock() = true;
        self.condvar.notify_one();
    }

    /// Park until notified (or `timeout`), consuming the pending flag.
    fn wait(&self, timeout: Duration) {
        let mut pending = self.pending.lock();
        if !*pending {
            self.condvar
                .wait_until(&mut pending, std::time::Instant::now() + timeout);
        }
        *pending = false;
    }
}

/// The shard owning `(table, key)` among `shard_count` hash partitions.
///
/// Deterministic across processes (SipHash with fixed keys), so checkpoint
/// rows and WAL records re-route to the same shard on recovery, and tests can
/// predict key placement.
pub fn shard_of(table: &str, key: &Key, shard_count: usize) -> usize {
    if shard_count <= 1 {
        return 0;
    }
    let mut hasher = DefaultHasher::new();
    table.hash(&mut hasher);
    key.hash(&mut hasher);
    (hasher.finish() as usize) % shard_count
}

/// WAL stream name for one shard.  A single-shard engine keeps the legacy
/// plain `wal` stream so its on-disk layout is byte-identical to the
/// unsharded engine; sharded engines use one `wal-shard<K>` stream each
/// (segment files `wal-shard<K>-<seq>.seg`).
fn wal_stream(shard: usize, shard_count: usize) -> String {
    if shard_count == 1 {
        "wal".to_string()
    } else {
        format!("wal-shard{shard}")
    }
}

/// One hash partition of the engine's write path: a `RowTable` partition per
/// table, a replication log + applier feeding the shared columnar replicas,
/// an optional WAL stream and the commit gate coordinating commits with
/// checkpoints on this shard.
struct Shard {
    row_tables: RwLock<Arc<HashMap<String, Arc<RowTable>>>>,
    replication: Arc<ReplicationLog>,
    replicator: Arc<Mutex<Replicator>>,
    applier: Mutex<Option<BackgroundApplier>>,
    wal: Option<Arc<Wal>>,
    /// Commits hold this for read across [WAL append .. commit marker]; the
    /// checkpointer takes every shard's gate for write to pick a consistent
    /// `(commit_ts, per-shard LSN)` cut with no transaction mid-flight.
    commit_gate: RwLock<()>,
    /// Simulated log device for the cost model: a WAL stream is a serial
    /// resource, so modelled log-force time is paid while holding this lock
    /// and commits to the same shard queue behind each other (commits to
    /// different shards proceed in parallel).  Uncontended and delay-free at
    /// `time_scale 0`.
    wal_device: Mutex<()>,
}

/// What crash recovery found and rebuilt when a durable database was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Checkpoint ordering key (sum of the per-shard WAL cuts; 0 when no
    /// checkpoint existed).
    pub checkpoint_lsn: u64,
    /// Commit timestamp the checkpoint snapshot was taken at.
    pub checkpoint_commit_ts: Timestamp,
    /// Rows loaded from the checkpoint.
    pub checkpoint_rows: u64,
    /// WAL records scanned during replay across all shard streams (including
    /// ones the checkpoint already covered).
    pub wal_records_scanned: u64,
    /// Committed transactions replayed from the WAL tails.  A cross-shard
    /// transaction counts once, however many shards it touched.
    pub wal_txns_replayed: u64,
    /// Mutations applied while replaying those transactions.
    pub wal_mutations_replayed: u64,
    /// Bytes of torn WAL tail truncated (a crash mid-write leaves these).
    pub torn_bytes_truncated: u64,
    /// Tables rebuilt (from the checkpoint catalog plus replayed DDL).
    pub tables_recovered: u64,
    /// Replication records re-seeded into the columnar replicas so freshness
    /// watermarks resume correctly.
    pub replication_reseeded: u64,
    /// Cross-shard transactions resolved from an in-doubt prepared state: a
    /// shard held Prepare + mutations without its own Commit marker, and
    /// another shard's Commit marker decided the outcome as committed.
    pub in_doubt_committed: u64,
}

/// An in-process HTAP database instance configured as one of the paper's
/// architectural archetypes.
///
/// The database owns the catalog, the sharded row store, the columnar
/// replicas, the per-shard replication pipelines, the transaction manager,
/// the simulated cluster and the engine metrics.  Benchmark threads interact
/// with it through [`Session`]s obtained from [`HybridDatabase::session`].
///
/// When [`EngineConfig::background_applier`] is set (the default), opening the
/// database spawns one dedicated applier thread per shard that continuously
/// drains the shard's replication log into the columnar replicas — the
/// "background process" behind TiDB's asynchronous log replication.  Each
/// thread parks when its log is empty, wakes on append, and is joined when
/// the last reference to the database is dropped.
/// Shared columnar replica map (see `HybridDatabase::col_tables` for why the
/// container itself is reference-counted).
type SharedColumnTables = Arc<RwLock<Arc<HashMap<String, Arc<ColumnTable>>>>>;

pub struct HybridDatabase {
    config: EngineConfig,
    catalog: Catalog,
    shards: Vec<Shard>,
    /// Shared columnar replicas.  The outer `Arc` lets the background
    /// compactor hold the *container* without holding the database (no
    /// `Arc` cycle), so tables installed after the thread starts are still
    /// picked up on its next sweep.
    col_tables: SharedColumnTables,
    txn_mgr: TransactionManager,
    cluster: Cluster,
    metrics: Arc<EngineMetrics>,
    olap_route_counter: AtomicU64,
    commit_counter: AtomicU64,
    /// Global WAL transaction-id allocator.  Ids must be unique across every
    /// shard's WAL stream: recovery keys its committed-transaction map by
    /// them, and a cross-shard transaction logs the same id on every shard it
    /// touches.  Seeded past the newest replayed id on open.
    txn_ids: AtomicU64,
    /// What recovery rebuilt when this database was opened (durable engines).
    recovery: Mutex<Option<RecoveryReport>>,
    /// WAL records logged since the last checkpoint (drives auto-checkpoints).
    wal_records_since_ckpt: AtomicU64,
    /// Guards against concurrent auto-checkpoints.
    checkpointing: AtomicBool,
    checkpoints_taken: AtomicU64,
    checkpoint_failures: AtomicU64,
    /// Wakes the background compactor when replication grows a delta tail.
    compaction: Arc<CompactionSignal>,
    /// The background delta-compactor thread (when
    /// [`EngineConfig::compression`] is on).
    compactor: Mutex<Option<BackgroundCompactor>>,
    /// Commits slower than [`EngineConfig::slow_txn_threshold_ms`], retained
    /// with their per-stage breakdown while tracing is enabled.
    slow_log: SlowTxnLog,
    /// Analytical queries slower than
    /// [`EngineConfig::slow_query_threshold_ms`], retained with their
    /// per-operator breakdown (operators need tracing).
    slow_query_log: SlowQueryLog,
    /// Sampler ring, SLO flags and the telemetry time axis.  Always present —
    /// idle when the sampler is disabled.
    telemetry_state: Arc<TelemetryState>,
    /// The background metrics-sampler thread (when
    /// [`EngineConfig::telemetry_interval_ms`] is non-zero).
    telemetry: Mutex<Option<TelemetrySampler>>,
    /// The embedded HTTP scrape listener (when
    /// [`EngineConfig::telemetry_addr`] is set).
    telemetry_http: Mutex<Option<TelemetryServer>>,
}

impl HybridDatabase {
    /// Create a database with the given configuration.
    ///
    /// Alias for [`HybridDatabase::open`]: when the configuration enables
    /// durability, any existing state in the data directory is recovered.
    pub fn new(config: EngineConfig) -> EngineResult<Arc<HybridDatabase>> {
        HybridDatabase::open(config)
    }

    /// Open a database.
    ///
    /// For in-memory configurations this simply constructs an empty engine.
    /// For durable configurations it loads the newest checkpoint, replays
    /// every shard's WAL tail above that shard's checkpoint cut (tolerating —
    /// and truncating — a torn final record, the signature of a crash
    /// mid-write), rebuilds the sharded row store and catalog, resolves
    /// in-doubt cross-shard transactions (a prepared transaction replays iff
    /// *any* shard logged its Commit marker), re-seeds the replication
    /// pipelines so the columnar replicas and freshness watermarks resume
    /// correctly, and fast-forwards the timestamp oracle past the newest
    /// recovered commit.
    ///
    /// A durable directory must be reopened with the shard count it was
    /// written with: shard streams are named by shard index and checkpoint
    /// cuts are recorded per shard.
    pub fn open(config: EngineConfig) -> EngineResult<Arc<HybridDatabase>> {
        config.validate()?;
        // The span-recording gate is process-wide (background threads and the
        // storage/query crates all consult it), so opening a tracing engine
        // raises it; it is never lowered here — a caller comparing traced and
        // untraced runs in one process lowers it explicitly between them with
        // `olxp_trace::set_enabled(false)`.
        if config.tracing {
            olxp_trace::set_enabled(true);
        }
        let shard_count = config.shards;
        let mut shards = Vec::with_capacity(shard_count);
        let mut replays: Vec<WalReplay> = Vec::new();
        let checkpoint = match config.durability.data_dir.as_deref() {
            Some(dir) => load_latest_checkpoint(Path::new(dir))?,
            None => None,
        };
        for shard in 0..shard_count {
            let wal = match config.durability.data_dir.as_deref() {
                Some(dir) => {
                    let (wal, replay) = Wal::open_named(
                        dir,
                        &wal_stream(shard, shard_count),
                        config.durability.sync,
                        config.durability.segment_bytes,
                    )?;
                    replays.push(replay);
                    Some(Arc::new(wal))
                }
                None => None,
            };
            let replication = Arc::new(ReplicationLog::new());
            let replicator = Arc::new(Mutex::new(Replicator::new(Arc::clone(&replication))));
            shards.push(Shard {
                row_tables: RwLock::new(Arc::new(HashMap::new())),
                replication,
                replicator,
                applier: Mutex::new(None),
                wal,
                commit_gate: RwLock::new(()),
                wal_device: Mutex::new(()),
            });
        }
        let metrics = Arc::new(EngineMetrics::with_shards(shard_count));
        let cluster = Cluster::from_config(&config);
        let txn_mgr = TransactionManager::with_shards(
            Duration::from_millis(config.lock_wait_timeout_ms),
            shard_count,
        );
        let max_replayed_id = replays.iter().map(|r| r.max_txn_id).max().unwrap_or(0);
        let slow_log = SlowTxnLog::new(config.slow_txn_threshold_ms);
        let slow_query_log = SlowQueryLog::new(config.slow_query_threshold_ms);
        let db = Arc::new(HybridDatabase {
            config,
            catalog: Catalog::new(),
            shards,
            col_tables: Arc::new(RwLock::new(Arc::new(HashMap::new()))),
            txn_mgr,
            cluster,
            metrics,
            olap_route_counter: AtomicU64::new(0),
            commit_counter: AtomicU64::new(0),
            txn_ids: AtomicU64::new(max_replayed_id + 1),
            recovery: Mutex::new(None),
            wal_records_since_ckpt: AtomicU64::new(0),
            checkpointing: AtomicBool::new(false),
            checkpoints_taken: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
            compaction: Arc::new(CompactionSignal::new()),
            compactor: Mutex::new(None),
            slow_log,
            slow_query_log,
            telemetry_state: Arc::new(TelemetryState::new()),
            telemetry: Mutex::new(None),
            telemetry_http: Mutex::new(None),
        });
        if db.is_durable() {
            let report = db.recover(checkpoint, replays)?;
            *db.recovery.lock() = Some(report);
        }
        if db.config.background_applier {
            for (shard, state) in db.shards.iter().enumerate() {
                *state.applier.lock() = Some(spawn_applier(
                    shard,
                    Arc::clone(&state.replication),
                    Arc::clone(&state.replicator),
                    Arc::clone(&db.metrics),
                    db.config.replication_batch,
                    Duration::from_micros(db.config.applier_idle_wait_us),
                    Arc::clone(&db.compaction),
                ));
            }
        }
        if db.config.compression {
            *db.compactor.lock() = Some(spawn_compactor(
                Arc::clone(&db.col_tables),
                Arc::clone(&db.compaction),
                Arc::clone(&db.metrics),
                Duration::from_micros(db.config.compactor_idle_wait_us),
            ));
        }
        if db.config.telemetry_interval_ms > 0 {
            *db.telemetry.lock() = Some(telemetry::spawn_sampler(&db));
        }
        if let Some(addr) = db.config.telemetry_addr.clone() {
            // A scrape endpoint that cannot bind (port taken, no permission)
            // must not take the database down with it: log and run without.
            match telemetry::serve(&db, &addr) {
                Ok(server) => *db.telemetry_http.lock() = Some(server),
                Err(e) => eprintln!("olxp: telemetry listener on {addr} unavailable: {e}"),
            }
        }
        Ok(db)
    }

    /// Convenience constructor for the MemSQL-like archetype.
    pub fn single_engine() -> Arc<HybridDatabase> {
        HybridDatabase::new(EngineConfig::single_engine()).expect("default config is valid")
    }

    /// Convenience constructor for the TiDB-like archetype.
    pub fn dual_engine() -> Arc<HybridDatabase> {
        HybridDatabase::new(EngineConfig::dual_engine()).expect("default config is valid")
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The transaction manager.
    pub fn txn_manager(&self) -> &TransactionManager {
        &self.txn_mgr
    }

    /// Engine metrics.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The slow-transaction log (populated only while tracing is enabled and
    /// [`EngineConfig::slow_txn_threshold_ms`] is non-zero).
    pub fn slow_txn_log(&self) -> &SlowTxnLog {
        &self.slow_log
    }

    /// The slow-query log (populated when
    /// [`EngineConfig::slow_query_threshold_ms`] is non-zero; per-operator
    /// breakdowns additionally need tracing).
    pub fn slow_query_log(&self) -> &SlowQueryLog {
        &self.slow_query_log
    }

    /// Live telemetry state: the sampler's time-series ring and SLO flags.
    pub fn telemetry_state(&self) -> &TelemetryState {
        &self.telemetry_state
    }

    /// The shared telemetry state, for the sampler thread to hold without
    /// holding the database.
    pub(crate) fn telemetry_state_arc(&self) -> &Arc<TelemetryState> {
        &self.telemetry_state
    }

    /// Address the embedded telemetry HTTP listener is bound on, when one is
    /// running (resolves `:0` requests to the actual ephemeral port).
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.telemetry_http.lock().as_ref().map(|s| s.local_addr())
    }

    /// True while the background metrics sampler is running.
    pub fn has_telemetry_sampler(&self) -> bool {
        self.telemetry.lock().is_some()
    }

    /// Copy of every retained per-interval timeline point, oldest first.
    pub fn telemetry_timeline(&self) -> Vec<TelemetryPoint> {
        self.telemetry_state.timeline()
    }

    /// Copy of the timeline points sampled at or after `t_ms` on the
    /// telemetry time axis (see [`Self::telemetry_elapsed_ms`]).
    pub fn telemetry_points_since(&self, t_ms: u64) -> Vec<TelemetryPoint> {
        self.telemetry_state.timeline_since(t_ms)
    }

    /// Milliseconds since the database was opened — the time axis of the
    /// sampler's timeline points.
    pub fn telemetry_elapsed_ms(&self) -> u64 {
        self.telemetry_state.elapsed_ms()
    }

    /// Evaluate the `/healthz` SLO checks against the live engine.
    pub fn health_report(&self) -> HealthReport {
        telemetry::health_report(self)
    }

    /// Snapshot of engine metrics (durable engines include live WAL counters
    /// aggregated across every shard's stream).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        snapshot.wal = self.wal_metrics();
        snapshot.shards = self.shards.len() as u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let Some(wal) = &shard.wal else { continue };
            let Some(entry) = snapshot.per_shard.get_mut(i) else {
                continue;
            };
            let stats = wal.stats();
            entry.wal_appends = stats.appends;
            entry.wal_fsyncs = stats.fsyncs;
        }
        let footprint = self.columnar_footprint();
        snapshot.col_bytes_resident = footprint.bytes_resident as u64;
        snapshot.col_bytes_plain = footprint.bytes_plain as u64;
        snapshot
    }

    /// Aggregate resident-memory footprint of every columnar replica.
    pub fn columnar_footprint(&self) -> MemoryFootprint {
        let mut footprint = MemoryFootprint::default();
        for table in self.col_tables.read().values() {
            footprint.merge(&table.memory_footprint());
        }
        footprint
    }

    /// Durability counters (all-zero for in-memory engines).  Counters are
    /// summed across the per-shard WAL streams; group-commit batch
    /// percentiles report the largest observed on any shard.
    pub fn wal_metrics(&self) -> WalMetrics {
        if !self.is_durable() {
            return WalMetrics::default();
        }
        let mut m = WalMetrics {
            checkpoints: self.checkpoints_taken.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            ..WalMetrics::default()
        };
        for shard in &self.shards {
            let Some(wal) = &shard.wal else { continue };
            let stats = wal.stats();
            m.appends += stats.appends;
            m.fsyncs += stats.fsyncs;
            m.bytes_written += stats.bytes_written;
            m.synced_commits += stats.synced_commits;
            m.group_batch_p50 = m.group_batch_p50.max(stats.batch_p50);
            m.group_batch_p90 = m.group_batch_p90.max(stats.batch_p90);
            m.group_batch_p99 = m.group_batch_p99.max(stats.batch_p99);
            m.group_batch_max = m.group_batch_max.max(stats.batch_max);
            m.last_lsn += stats.last_lsn;
            m.durable_lsn += stats.durable_lsn;
        }
        m
    }

    /// What recovery rebuilt when this database was opened, or `None` for an
    /// in-memory engine.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        *self.recovery.lock()
    }

    /// True when this engine writes a WAL.
    pub fn is_durable(&self) -> bool {
        self.shards.iter().any(|s| s.wal.is_some())
    }

    // ------------------------------------------------------------------
    // Sharding
    // ------------------------------------------------------------------

    /// Number of hash-partitioned storage shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `(table, key)`.
    pub fn shard_for(&self, table: &str, key: &Key) -> usize {
        shard_of(table, key, self.shards.len())
    }

    /// One shard's partition of a table.
    fn row_partition(&self, shard: usize, table: &str) -> EngineResult<Arc<RowTable>> {
        self.shards[shard]
            .row_tables
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))
    }

    /// The row-table partition owning `key` of `table`.
    pub fn row_table_for(&self, table: &str, key: &Key) -> EngineResult<Arc<RowTable>> {
        self.row_partition(self.shard_for(table, key), table)
    }

    /// Every shard's partition of `table`, in shard order.
    pub fn row_partitions(&self, table: &str) -> EngineResult<Vec<Arc<RowTable>>> {
        let parts: Vec<Arc<RowTable>> = self
            .shards
            .iter()
            .filter_map(|s| s.row_tables.read().get(table).cloned())
            .collect();
        if parts.is_empty() {
            return Err(EngineError::UnknownTable(table.to_string()));
        }
        Ok(parts)
    }

    /// Scan every shard's partition of `table` at `ts`, calling `f` for each
    /// visible row (shard-major order).  Returns rows examined.
    pub fn scan_table(
        &self,
        table: &str,
        ts: Timestamp,
        mut f: impl FnMut(&Key, &Arc<Row>),
    ) -> EngineResult<usize> {
        let mut examined = 0;
        for part in self.row_partitions(table)? {
            examined += part.scan(ts, &mut f);
        }
        Ok(examined)
    }

    /// Live rows of `table` across all shards at the current read timestamp.
    pub fn table_live_row_count(&self, table: &str) -> EngineResult<usize> {
        let ts = self.txn_mgr.oracle().read_ts();
        Ok(self
            .row_partitions(table)?
            .iter()
            .map(|p| p.live_row_count(ts))
            .sum())
    }

    /// Per-shard row-table maps, in shard order (feeds the sharded query
    /// source).
    pub fn sharded_row_tables(&self) -> Vec<Arc<HashMap<String, Arc<RowTable>>>> {
        self.shards
            .iter()
            .map(|s| Arc::clone(&s.row_tables.read()))
            .collect()
    }

    /// Allocate a WAL transaction id (unique across all shard streams).
    pub(crate) fn allocate_txn_id(&self) -> u64 {
        self.txn_ids.fetch_add(1, Ordering::SeqCst)
    }

    /// One shard's write-ahead log, when durability is enabled.
    pub(crate) fn wal_for_shard(&self, shard: usize) -> Option<&Arc<Wal>> {
        self.shards[shard].wal.as_ref()
    }

    /// Shared hold on one shard's commit gate.  Committers keep it across
    /// [WAL mutation append .. commit marker append] on that shard so the
    /// checkpointer's exclusive hold observes no transaction mid-flight.
    /// Multi-gate holders (cross-shard commits, the checkpointer) always
    /// acquire in ascending shard order.
    pub(crate) fn commit_gate_read_for(&self, shard: usize) -> RwLockReadGuard<'_, ()> {
        self.shards[shard].commit_gate.read()
    }

    /// One shard's replication log.
    pub(crate) fn replication_for(&self, shard: usize) -> &Arc<ReplicationLog> {
        &self.shards[shard].replication
    }

    /// Every shard's replication log, in shard order (freshness checks).
    pub(crate) fn replication_logs(&self) -> Vec<Arc<ReplicationLog>> {
        self.shards
            .iter()
            .map(|s| Arc::clone(&s.replication))
            .collect()
    }

    // ------------------------------------------------------------------
    // Tables
    // ------------------------------------------------------------------

    /// Create a table: a row-table partition in every shard, plus one shared
    /// columnar replica registered with every shard's replication pipeline.
    /// Durable engines log the DDL to shard 0's WAL (and sync it per the
    /// policy) so the schema survives a crash even before the first
    /// checkpoint.
    pub fn create_table(&self, schema: TableSchema) -> EngineResult<()> {
        if let Some(wal) = &self.shards[0].wal {
            // Log before installing: if the WAL refuses the record, nothing
            // was registered and the call can simply be retried.  The rare
            // spurious record (logged but install lost to a concurrent
            // duplicate) is harmless — recovery skips CreateTable records
            // for tables that already exist.  Both steps share one gate hold
            // so a checkpoint cut cannot fall between them.
            if self.catalog.contains(schema.name()) {
                return Err(StorageError::TableExists(schema.name().to_string()).into());
            }
            let lsn = {
                let _gate = self.shards[0].commit_gate.read();
                let lsn = wal.log_create_table(&schema)?;
                self.install_table(schema)?;
                lsn
            };
            let wal = Arc::clone(wal);
            wal.sync_to(lsn)?;
            self.note_wal_records(1);
            Ok(())
        } else {
            self.install_table(schema)
        }
    }

    /// Register a table with the catalog, stores and replication pipelines
    /// without touching the WAL (shared by [`Self::create_table`] and
    /// recovery, which must not re-log what it replays).
    fn install_table(&self, schema: TableSchema) -> EngineResult<()> {
        let schema = self.catalog.create_table(schema)?;
        let col_table = Arc::new(ColumnTable::new(Arc::clone(&schema)));
        for shard in &self.shards {
            let row_table = Arc::new(RowTable::new(Arc::clone(&schema)));
            {
                let mut map = shard.row_tables.write();
                let mut new_map = HashMap::clone(map.as_ref());
                new_map.insert(schema.name().to_string(), row_table);
                *map = Arc::new(new_map);
            }
            shard
                .replicator
                .lock()
                .register(schema.name().to_string(), Arc::clone(&col_table));
        }
        {
            let mut map = self.col_tables.write();
            let mut new_map = HashMap::clone(map.as_ref());
            new_map.insert(schema.name().to_string(), col_table);
            *map = Arc::new(new_map);
        }
        Ok(())
    }

    /// Shard 0's snapshot of the row tables (cheap to clone).  With more than
    /// one shard this is only that shard's partition; use
    /// [`Self::sharded_row_tables`] or [`Self::scan_table`] for whole-table
    /// access.
    pub fn row_tables(&self) -> Arc<HashMap<String, Arc<RowTable>>> {
        Arc::clone(&self.shards[0].row_tables.read())
    }

    /// Shared snapshot of the columnar replicas.
    pub fn col_tables(&self) -> Arc<HashMap<String, Arc<ColumnTable>>> {
        Arc::clone(&self.col_tables.read())
    }

    /// Shard 0's partition of the row table for `name`.  With one shard (the
    /// default) this is the whole table; sharded callers wanting a key's
    /// partition use [`Self::row_table_for`].
    pub fn row_table(&self, name: &str) -> EngineResult<Arc<RowTable>> {
        self.row_partition(0, name)
    }

    /// The columnar replica for `name`.
    pub fn col_table(&self, name: &str) -> EngineResult<Arc<ColumnTable>> {
        self.col_tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Open a session.  Each benchmark driver thread owns one session.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Load a row outside of any transaction (benchmark data population).
    ///
    /// Loading bypasses the cost model and the cluster so that experiment
    /// setup time does not pollute measurements; the rows are still shipped
    /// through the owning shard's replication log so the columnar replicas
    /// converge.  On a durable engine each load is logged as a one-mutation
    /// transaction on the owning shard's WAL, but the fsync is deferred to
    /// [`Self::finish_load`] so bulk loading is not throttled to one fsync
    /// per row.
    pub fn load_row(&self, table: &str, row: Row) -> EngineResult<()> {
        let schema = self.catalog.table(table)?;
        let key = schema.primary_key_of(&row);
        let shard_idx = self.shard_for(table, &key);
        let row_table = self.row_partition(shard_idx, table)?;
        let shard = &self.shards[shard_idx];
        let ts = if let Some(wal) = &shard.wal {
            // The gate is taken before the timestamp is allocated, so a
            // checkpoint's `(commit_ts, LSN)` cut can never land between
            // this load's timestamp and its WAL records (same invariant as
            // `Session::commit`).
            let _gate = shard.commit_gate.read();
            let ts = self.txn_mgr.oracle().load_ts();
            let txn_id = self.allocate_txn_id();
            let op = WalOp {
                table: table.to_string(),
                op: MutationOp::Insert,
                key: key.clone(),
                row: Some(row.clone()),
            };
            wal.log_mutations(txn_id, std::slice::from_ref(&op), ts)?;
            row_table.insert(row.clone(), ts)?;
            wal.log_commit(txn_id, ts)?;
            self.note_wal_records(3);
            ts
        } else {
            let ts = self.txn_mgr.oracle().load_ts();
            row_table.insert(row.clone(), ts)?;
            ts
        };
        shard
            .replication
            .append(table, MutationOp::Insert, key, Some(row), ts);
        Ok(())
    }

    /// Finish bulk loading: apply all pending replication on every shard so
    /// the columnar replicas are complete before measurement starts, and (on
    /// a durable engine) make the loaded data durable with one fsync per
    /// shard stream.
    pub fn finish_load(&self) -> EngineResult<usize> {
        let mut applied = 0;
        for shard in &self.shards {
            applied += shard.replicator.lock().catch_up()?;
        }
        self.metrics.add_replication_applied(applied as u64);
        if self.is_durable() {
            for shard in &self.shards {
                if let Some(wal) = &shard.wal {
                    wal.flush_and_fsync()?;
                }
            }
            self.maybe_checkpoint();
        }
        Ok(applied)
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    /// Apply one batch of pending replication records on every shard
    /// (asynchronous log replication step).  Called opportunistically by
    /// sessions when no background applier is running; failures are counted
    /// in the engine metrics and surfaced to the caller.
    pub fn replicate_step(&self) -> EngineResult<usize> {
        let mut total = 0;
        for shard in &self.shards {
            let result = shard
                .replicator
                .lock()
                .apply_pending(self.config.replication_batch);
            match result {
                Ok(applied) => total += applied,
                Err(e) => {
                    if total > 0 {
                        self.metrics.add_replication_applied(total as u64);
                    }
                    self.metrics.add_replication_error();
                    return Err(e.into());
                }
            }
        }
        if total > 0 {
            self.metrics.add_replication_applied(total as u64);
            self.compaction.notify();
        }
        Ok(total)
    }

    /// True while any shard's dedicated background applier thread is running.
    pub fn has_background_applier(&self) -> bool {
        self.shards.iter().any(|s| s.applier.lock().is_some())
    }

    /// Stop every shard's background applier thread and wait for it to exit.
    /// Further replication is applied opportunistically (or via
    /// [`Self::finish_load`]).  Idempotent; also invoked on drop.
    pub fn shutdown_applier(&self) {
        for shard in &self.shards {
            let Some(mut applier) = shard.applier.lock().take() else {
                continue;
            };
            applier.shutdown.store(true, Ordering::Release);
            shard.replication.notify_waiters();
            if let Some(handle) = applier.handle.take() {
                let _ = handle.join();
            }
        }
    }

    /// True while the background delta-compactor thread is running.
    pub fn has_background_compactor(&self) -> bool {
        self.compactor.lock().is_some()
    }

    /// Stop the background delta-compactor thread and wait for it to exit.
    /// Delta chunks stop migrating to the compressed main tier (explicit
    /// [`Self::compact_columnar`] calls still work).  Idempotent; also
    /// invoked on drop.
    pub fn shutdown_compactor(&self) {
        let Some(mut compactor) = self.compactor.lock().take() else {
            return;
        };
        compactor.shutdown.store(true, Ordering::Release);
        self.compaction.notify();
        if let Some(handle) = compactor.handle.take() {
            let _ = handle.join();
        }
    }

    /// Stop the telemetry sampler thread and the embedded HTTP listener.
    /// The retained timeline stays readable.  Idempotent; also invoked on
    /// drop.
    pub fn shutdown_telemetry(&self) {
        if let Some(mut server) = self.telemetry_http.lock().take() {
            server.shutdown();
        }
        let sampler = self.telemetry.lock().take();
        if let Some(mut sampler) = sampler {
            sampler.shutdown.store(true, Ordering::Release);
            if let Some(handle) = sampler.handle.take() {
                if handle.thread().id() == std::thread::current().id() {
                    // The sampler's own upgraded Arc can be the last one, in
                    // which case this drop runs *on* the sampler thread:
                    // detach instead of self-joining — the thread exits at
                    // its next shutdown check.
                    drop(handle);
                } else {
                    let _ = handle.join();
                }
            }
        }
    }

    /// Synchronously seal every full delta chunk of every columnar replica
    /// into the compressed main tier — the same migration the background
    /// compactor performs continuously.  Returns the number of chunks sealed.
    /// Used by benchmarks that want a settled store before measuring and by
    /// engines running with the compactor disabled.
    pub fn compact_columnar(&self) -> u64 {
        let tables: Vec<Arc<ColumnTable>> = self.col_tables.read().values().cloned().collect();
        let mut sealed = 0u64;
        for table in tables {
            sealed += table.compact() as u64;
        }
        self.metrics.add_chunks_compacted(sealed);
        sealed
    }

    /// Records appended to the replication logs but not yet applied, summed
    /// across shards.
    pub fn replication_lag(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.replication.lag_records())
            .sum()
    }

    /// Shard 0's replication log (the only one in unsharded setups; used by
    /// tests and metrics).
    pub fn replication_log(&self) -> &Arc<ReplicationLog> {
        &self.shards[0].replication
    }

    // ------------------------------------------------------------------
    // Durability: WAL plumbing, checkpoints and crash recovery
    // ------------------------------------------------------------------

    /// Account WAL records toward the automatic checkpoint threshold.
    pub(crate) fn note_wal_records(&self, records: u64) {
        self.wal_records_since_ckpt
            .fetch_add(records, Ordering::Relaxed);
    }

    /// Take an automatic checkpoint when the configured record threshold has
    /// been crossed.  At most one checkpoint runs at a time; a failure is
    /// counted and retried at the next trigger (durability is unaffected —
    /// the WALs retain everything a failed checkpoint did not truncate).
    ///
    /// Must not be called while holding any commit gate (the checkpoint takes
    /// them all exclusively).
    pub(crate) fn maybe_checkpoint(&self) {
        let every = self.config.durability.checkpoint_every_records;
        if every == 0 || !self.is_durable() {
            return;
        }
        if self.wal_records_since_ckpt.load(Ordering::Relaxed) < every {
            return;
        }
        if self
            .checkpointing
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        if self.checkpoint().is_err() {
            self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
        }
        self.checkpointing.store(false, Ordering::Release);
    }

    /// Write a checkpoint: a consistent snapshot of the catalog and of every
    /// row visible at one commit timestamp (merged across shards), tagged
    /// with the WAL cut of every shard stream.  Each shard's WAL segments
    /// wholly below its own cut are truncated afterwards.
    ///
    /// The `(commit_ts, per-shard LSN)` cut is taken while holding *every*
    /// shard's commit gate exclusively (acquired in ascending shard order,
    /// the same order cross-shard commits use, so the two cannot deadlock):
    /// no transaction is between its WAL append and its commit marker on any
    /// shard at that instant, so every transaction — including a cross-shard
    /// one — is either fully below the cut on all its shards (and visible at
    /// the timestamp) or fully above it (and replayed from the WAL tails on
    /// recovery).
    pub fn checkpoint(&self) -> EngineResult<u64> {
        if !self.is_durable() {
            return Err(EngineError::Config("durability is disabled".into()));
        }
        let data_dir = self
            .config
            .durability
            .data_dir
            .as_deref()
            .ok_or_else(|| EngineError::Config("durability is disabled".into()))?;
        let (ckpt_ts, shard_cuts) = {
            let _gates: Vec<_> = self.shards.iter().map(|s| s.commit_gate.write()).collect();
            let cuts: Vec<(u32, u64)> = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, s.wal.as_ref().map_or(0, |w| w.last_lsn())))
                .collect();
            (self.txn_mgr.oracle().read_ts(), cuts)
        };
        // The MVCC snapshot at `ckpt_ts` is stable after the gates are
        // released: later commits carry strictly larger timestamps.
        let mut tables = Vec::new();
        for schema in self.catalog.tables() {
            let mut rows = Vec::new();
            for part in self.row_partitions(schema.name())? {
                part.scan(ckpt_ts, |_, row| rows.push(Row::clone(row)));
            }
            tables.push(TableCheckpoint {
                schema: TableSchema::clone(&schema),
                rows,
            });
        }
        let lsn_sum: u64 = shard_cuts.iter().map(|&(_, lsn)| lsn).sum();
        let data = CheckpointData {
            lsn: lsn_sum,
            commit_ts: ckpt_ts,
            tables,
            shard_cuts: shard_cuts.clone(),
        };
        write_checkpoint(Path::new(data_dir), &data)?;
        for &(shard, cut) in &shard_cuts {
            if let Some(wal) = &self.shards[shard as usize].wal {
                wal.truncate_up_to(cut)?;
            }
        }
        self.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
        self.wal_records_since_ckpt.store(0, Ordering::Relaxed);
        Ok(lsn_sum)
    }

    /// Simulate a crash: stop the appliers and discard all process state the
    /// OS would lose on a kill — nothing buffered in any WAL is flushed, and
    /// the clean-shutdown flush on drop is suppressed.  Everything a
    /// [`crate::Session::commit`] acknowledged under a syncing policy is
    /// already on disk and survives a subsequent [`HybridDatabase::open`].
    pub fn simulate_crash(&self) {
        self.shutdown_applier();
        self.shutdown_compactor();
        for shard in &self.shards {
            if let Some(wal) = &shard.wal {
                wal.mark_crashed();
            }
        }
    }

    /// Rebuild the stores from a checkpoint plus every shard's replayed WAL
    /// tail.
    ///
    /// Replay runs in two passes.  The collection pass walks every shard
    /// stream, installing DDL beyond that shard's cut and gathering each
    /// transaction's mutations, Prepare LSN and Commit marker per shard —
    /// plus a *global* committed map from every Commit marker on any shard.
    /// The apply pass then resolves each shard's transactions in LSN order:
    /// a transaction's effects on a shard are applied iff it is globally
    /// committed and its resolution LSN on that shard (its own Commit marker
    /// if present, else its Prepare) lies beyond the shard's checkpoint cut.
    /// That rule is what makes cross-shard atomicity survive a crash between
    /// one shard's Commit marker and another's: the shard that never logged
    /// its marker still replays the transaction because *some* shard proved
    /// the commit was decided, and a prepared transaction with no marker
    /// anywhere is presumed aborted.
    fn recover(
        &self,
        checkpoint: Option<CheckpointData>,
        replays: Vec<WalReplay>,
    ) -> EngineResult<RecoveryReport> {
        let shard_count = self.shards.len();
        let mut report = RecoveryReport {
            torn_bytes_truncated: replays.iter().map(|r| r.truncated_bytes).sum(),
            ..RecoveryReport::default()
        };
        let cuts: Vec<u64> = (0..shard_count)
            .map(|s| checkpoint.as_ref().map_or(0, |c| c.cut_for_shard(s as u32)))
            .collect();
        let mut max_ts: Timestamp = 0;
        if let Some(checkpoint) = checkpoint {
            report.checkpoint_lsn = checkpoint.lsn;
            report.checkpoint_commit_ts = checkpoint.commit_ts;
            max_ts = checkpoint.commit_ts;
            // Checkpointed rows do not carry per-row timestamps; they are all
            // installed at the snapshot timestamp, which preserves visibility
            // for every read at or above it (and the WAL tails only hold
            // transactions committed after the snapshot).  Rows re-route to
            // their shard by the same hash the write path uses, so a
            // checkpoint taken at this shard count reloads into identical
            // partitions.
            let load_ts = checkpoint.commit_ts.max(1);
            for table in checkpoint.tables {
                self.install_table(table.schema.clone())?;
                let schema = self.catalog.table(table.schema.name())?;
                for row in table.rows {
                    let key = schema.primary_key_of(&row);
                    let shard = shard_of(schema.name(), &key, shard_count);
                    self.row_partition(shard, schema.name())?
                        .insert(row, load_ts)?;
                    report.checkpoint_rows += 1;
                }
            }
        }

        // Collection pass.
        #[derive(Default)]
        struct ShardTxn {
            ops: Vec<(WalOp, Timestamp)>,
            commit: Option<(u64, Timestamp)>,
            prepare_lsn: Option<u64>,
        }
        let mut per_shard: Vec<HashMap<u64, ShardTxn>> = Vec::with_capacity(shard_count);
        let mut committed: HashMap<u64, Timestamp> = HashMap::new();
        for (shard, replay) in replays.into_iter().enumerate() {
            let mut txns: HashMap<u64, ShardTxn> = HashMap::new();
            for ReplayedRecord { lsn, record } in replay.records {
                report.wal_records_scanned += 1;
                match record {
                    WalRecord::CreateTable { schema } => {
                        if lsn > cuts[shard] && !self.catalog.contains(schema.name()) {
                            self.install_table(schema)?;
                        }
                    }
                    WalRecord::Begin { txn_id } => {
                        txns.entry(txn_id).or_default();
                    }
                    WalRecord::Mutation {
                        txn_id,
                        op,
                        commit_ts,
                    } => {
                        txns.entry(txn_id).or_default().ops.push((op, commit_ts));
                    }
                    WalRecord::Prepare { txn_id } => {
                        txns.entry(txn_id).or_default().prepare_lsn = Some(lsn);
                    }
                    WalRecord::Commit {
                        txn_id, commit_ts, ..
                    } => {
                        txns.entry(txn_id).or_default().commit = Some((lsn, commit_ts));
                        // A marker below the cut still proves the global
                        // decision for other shards' in-doubt prepares.
                        committed.insert(txn_id, commit_ts);
                    }
                }
            }
            per_shard.push(txns);
        }

        // Apply pass: per shard, in resolution-LSN order (matching original
        // commit order for any given key, since row locks are held across the
        // commit's whole WAL window).
        // (resolution LSN, txn id, commit ts, buffered ops, resolved in doubt).
        type Resolved = (u64, u64, Timestamp, Vec<(WalOp, Timestamp)>, bool);
        let mut replayed: HashSet<u64> = HashSet::new();
        let mut in_doubt: HashSet<u64> = HashSet::new();
        for (shard, txns) in per_shard.into_iter().enumerate() {
            let mut resolved: Vec<Resolved> = txns
                .into_iter()
                .filter_map(|(txn_id, st)| match (st.commit, st.prepare_lsn) {
                    (Some((lsn, ts)), _) => Some((lsn, txn_id, ts, st.ops, false)),
                    (None, Some(prepare_lsn)) => committed
                        .get(&txn_id)
                        .map(|&ts| (prepare_lsn, txn_id, ts, st.ops, true)),
                    // No marker anywhere and no prepare: a crash before the
                    // commit decision — presumed aborted, never replayed.
                    (None, None) => None,
                })
                .collect();
            resolved.sort_by_key(|&(lsn, ..)| lsn);
            for (resolution_lsn, txn_id, commit_ts, ops, was_in_doubt) in resolved {
                if resolution_lsn <= cuts[shard] {
                    continue; // fully contained in the checkpoint on this shard
                }
                if replayed.insert(txn_id) {
                    report.wal_txns_replayed += 1;
                }
                // Counted separately from the unique-txn tally: the shard
                // holding the Commit marker replays the txn normally, and it
                // is some *other* shard that resolves it in doubt.
                if was_in_doubt && in_doubt.insert(txn_id) {
                    report.in_doubt_committed += 1;
                }
                max_ts = max_ts.max(commit_ts);
                for (op, op_ts) in ops {
                    self.recover_apply(&op, op_ts)?;
                    report.wal_mutations_replayed += 1;
                }
            }
        }

        // Resume the timeline above the newest recovered commit, then re-seed
        // the replication pipelines: every recovered row is shipped to its
        // shard's columnar-replica feed and applied synchronously, so the
        // database opens with appended == applied watermarks and
        // Strict-freshness reads see every pre-crash commit immediately.
        self.txn_mgr.oracle().advance_to(max_ts);
        let reseed_ts = self.txn_mgr.oracle().read_ts();
        for schema in self.catalog.tables() {
            for (shard, part) in self.row_partitions(schema.name())?.iter().enumerate() {
                part.scan(reseed_ts, |key, row| {
                    self.shards[shard].replication.append(
                        schema.name(),
                        MutationOp::Insert,
                        key.clone(),
                        Some(Row::clone(row)),
                        reseed_ts,
                    );
                });
            }
        }
        let mut applied = 0;
        for shard in &self.shards {
            applied += shard.replicator.lock().catch_up()?;
        }
        self.metrics.add_replication_applied(applied as u64);
        report.replication_reseeded = applied as u64;
        report.tables_recovered = self.catalog.len() as u64;
        Ok(report)
    }

    /// Apply one replayed mutation at its original commit timestamp to the
    /// shard partition owning its key.
    ///
    /// Idempotent against checkpoint overlap: a key whose newest version is
    /// already at or above the mutation's timestamp is left untouched (the
    /// checkpoint captured that transaction's effect), an update of a key the
    /// snapshot never saw becomes an insert, and a delete of an absent key is
    /// a no-op.
    fn recover_apply(&self, op: &WalOp, commit_ts: Timestamp) -> EngineResult<()> {
        let row_table = self.row_table_for(&op.table, &op.key)?;
        if row_table
            .latest_commit_ts(&op.key)
            .is_some_and(|latest| latest >= commit_ts)
        {
            return Ok(());
        }
        match op.op {
            MutationOp::Insert | MutationOp::Update => {
                let row = op.row.clone().ok_or_else(|| {
                    StorageError::Internal("WAL mutation record without row image".into())
                })?;
                match row_table.update(&op.key, row.clone(), commit_ts) {
                    Err(StorageError::KeyNotFound { .. }) => {
                        row_table.insert(row, commit_ts)?;
                    }
                    other => other?,
                }
            }
            MutationOp::Delete => match row_table.delete(&op.key, commit_ts) {
                Err(StorageError::KeyNotFound { .. }) => {}
                other => other?,
            },
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Routing and accounting (used by `Session`)
    // ------------------------------------------------------------------

    /// Decide where the next standalone analytical query runs.
    ///
    /// The dual engine routes `analytical_rowstore_percent` of queries to the
    /// row store (the optimizer's choice in TiDB, §V-B1) and the remainder to
    /// the columnar replicas on dedicated analytical nodes.  The single engine
    /// and the shared-nothing configuration always compete with OLTP on the
    /// same nodes, which is the point of the comparison.
    pub fn route_analytical(&self) -> AnalyticalRoute {
        let n = self.olap_route_counter.fetch_add(1, Ordering::Relaxed);
        let percent = self.config.analytical_rowstore_percent;
        // Bresenham-style spread: exactly `percent` of every 100 consecutive
        // queries hit the row store, interleaved rather than front-loaded so
        // short runs exercise both paths in the configured proportion.
        if (n * percent) % 100 < percent {
            AnalyticalRoute::RowStore
        } else {
            AnalyticalRoute::ColumnStore
        }
    }

    /// Charge `service_nanos` of simulated work of `class` to `node`,
    /// blocking for queueing plus scaled service time.
    pub fn charge(&self, node: usize, class: WorkClass, service_nanos: u64) {
        let occupation = self.cluster.occupy(node, service_nanos);
        self.metrics.add_busy(class, occupation.service_nanos);
        self.metrics
            .add_queue_wait(class, occupation.queue_wait_nanos);
    }

    /// Occupy `shard`'s simulated WAL device for `service_nanos` of modelled
    /// log-force time.  Unlike [`HybridDatabase::charge`], which draws from a
    /// node's multi-worker pool, a log stream admits one force at a time:
    /// commits to the same shard serialise here while other shards' streams
    /// proceed in parallel — the modelled counterpart of one fsync queue per
    /// `wal-shard<K>` stream.  At `time_scale 0` the delay is zero and the
    /// lock is uncontended for longer than the metrics bookkeeping.
    pub(crate) fn occupy_wal_device(&self, shard: usize, class: WorkClass, service_nanos: u64) {
        let started = std::time::Instant::now();
        let _stream = self.shards[shard].wal_device.lock();
        let queue_wait_nanos = started.elapsed().as_nanos() as u64;
        let real = (service_nanos as f64 * self.config.time_scale) as u64;
        crate::cluster::precise_delay(Duration::from_nanos(real));
        self.metrics.add_busy(class, service_nanos);
        self.metrics.add_queue_wait(class, queue_wait_nanos);
    }

    /// Record a commit.  Without a background applier, trigger an
    /// opportunistic replication step every few commits so the columnar
    /// replicas keep up; with the appliers running, the append itself already
    /// woke the owning shard's applier thread.
    pub fn note_commit(&self) {
        self.metrics.add_commit();
        let n = self.commit_counter.fetch_add(1, Ordering::Relaxed);
        if n % 32 == 0 && !self.has_background_applier() {
            // A failure is counted in the metrics by replicate_step and the
            // records stay queued; the next analytical read surfaces it.
            let _ = self.replicate_step();
        }
    }

    /// Record an abort.
    pub fn note_abort(&self) {
        self.metrics.add_abort();
    }

    // ------------------------------------------------------------------
    // Derived metrics
    // ------------------------------------------------------------------

    /// Lock overhead: time spent blocked (row-lock waits across every shard's
    /// lock table plus worker-queue waits) relative to the simulated busy
    /// time.  This is the quantity the paper measures with `perf` lock
    /// samples in Figure 4.
    pub fn lock_overhead(&self) -> f64 {
        let snapshot = self.metrics.snapshot();
        let busy = snapshot.total_busy_nanos() as f64;
        if busy == 0.0 {
            return 0.0;
        }
        let lock_wait = self.txn_mgr.stats().locks.wait_nanos as f64;
        let queue_wait = snapshot.total_queue_wait_nanos() as f64;
        (lock_wait + queue_wait) / busy
    }

    /// Whether this database models the MemSQL-like single engine.
    pub fn is_single_engine(&self) -> bool {
        self.config.architecture == EngineArchitecture::SingleEngine
    }

    /// Total number of live rows across all shards and row tables (for
    /// sanity checks).
    pub fn total_live_rows(&self) -> usize {
        let ts = self.txn_mgr.oracle().read_ts();
        self.shards
            .iter()
            .map(|s| {
                s.row_tables
                    .read()
                    .values()
                    .map(|t| t.live_row_count(ts))
                    .sum::<usize>()
            })
            .sum()
    }

    /// Approximate number of keys in a table's row store across all shards
    /// (physical size used by the cost model for full scans).
    pub fn table_key_count(&self, table: &str) -> usize {
        self.shards
            .iter()
            .map(|s| s.row_tables.read().get(table).map_or(0, |t| t.key_count()))
            .sum()
    }

    /// Look up the partition (storage node) owning a key.
    pub fn partition_for(&self, table: &str, key: &Key) -> usize {
        self.cluster.partition_for(table, key)
    }
}

impl Drop for HybridDatabase {
    fn drop(&mut self) {
        // Telemetry first: no scrape or sample should observe a half-torn-
        // down engine.
        self.shutdown_telemetry();
        self.shutdown_applier();
        self.shutdown_compactor();
    }
}

/// Spawn one shard's dedicated applier thread.
///
/// The thread drains the shard's replication log in `batch`-sized steps,
/// parking on the log's condition variable when it is empty (appends wake
/// it).  Apply failures are counted and retried with a capped backoff — the
/// failed batch stays queued (see [`Replicator::apply_pending`]), so
/// committed mutations are never lost while the pipeline is unhealthy.
fn spawn_applier(
    shard: usize,
    log: Arc<ReplicationLog>,
    replicator: Arc<Mutex<Replicator>>,
    metrics: Arc<EngineMetrics>,
    batch: usize,
    idle_wait: Duration,
    compaction: Arc<CompactionSignal>,
) -> BackgroundApplier {
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name(format!("olxp-replication-applier-{shard}"))
        .spawn(move || {
            // Error backoff is independent of the idle park time: it must
            // start small so transient failures retry quickly (a parked
            // freshness-bounded reader is waiting on this thread), growing
            // only while failures persist.
            let initial_backoff = Duration::from_micros(100);
            let max_backoff = Duration::from_millis(5);
            let mut backoff = initial_backoff;
            while !stop.load(Ordering::Acquire) {
                // The replication-apply span covers append→apply for the
                // batch: it starts when the oldest record in the batch was
                // appended (the lag a freshness-bounded reader would wait
                // out), not when the applier picked it up.
                let trace_from = if olxp_trace::enabled() {
                    let now = olxp_trace::now_nanos();
                    let age = log
                        .oldest_pending_age()
                        .map_or(0, |age| age.as_nanos() as u64);
                    Some(now.saturating_sub(age))
                } else {
                    None
                };
                let result = replicator.lock().apply_pending(batch);
                match result {
                    Ok(0) => {
                        log.wait_for_pending(idle_wait);
                    }
                    Ok(applied) => {
                        metrics.add_replication_applied(applied as u64);
                        if let Some(start) = trace_from {
                            olxp_trace::record_span(
                                olxp_trace::SpanCategory::ReplicationApply,
                                shard as u32,
                                applied as u64,
                                start,
                            );
                            metrics.record_stage(
                                olxp_trace::SpanCategory::ReplicationApply,
                                olxp_trace::now_nanos().saturating_sub(start),
                            );
                        }
                        // Applied mutations grow delta tails: give the
                        // compactor a chance to seal any chunk they filled.
                        compaction.notify();
                        backoff = initial_backoff;
                    }
                    Err(_) => {
                        metrics.add_replication_error();
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(max_backoff);
                    }
                }
            }
        })
        .expect("spawning the replication applier thread succeeds");
    BackgroundApplier {
        shutdown,
        handle: Some(handle),
    }
}

/// Spawn the database's delta-compactor thread.
///
/// Each sweep snapshots the current table map (so tables installed later are
/// picked up) and seals every full delta chunk into the compressed main tier.
/// A sweep that sealed nothing parks on the [`CompactionSignal`] until the
/// replication appliers apply more mutations (or the idle timeout elapses —
/// the self-poll fallback that bounds staleness when writes bypass the
/// appliers, e.g. opportunistic catch-up with the background applier off).
fn spawn_compactor(
    col_tables: SharedColumnTables,
    signal: Arc<CompactionSignal>,
    metrics: Arc<EngineMetrics>,
    idle_wait: Duration,
) -> BackgroundCompactor {
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("olxp-delta-compactor".to_string())
        .spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let tables: Vec<Arc<ColumnTable>> = col_tables.read().values().cloned().collect();
                let mut sealed = 0u64;
                for table in tables {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    // One `compact_chunk` call per chunk: each takes the
                    // table's write lock once, so readers and the applier
                    // interleave with the rewrite — and each seal/encode
                    // gets its own stage-histogram entry while tracing.
                    let mut chunks = 0u64;
                    loop {
                        let trace_from = if olxp_trace::enabled() {
                            Some(olxp_trace::now_nanos())
                        } else {
                            None
                        };
                        if !table.compact_chunk() {
                            break;
                        }
                        if let Some(start) = trace_from {
                            metrics.record_stage(
                                olxp_trace::SpanCategory::Compaction,
                                olxp_trace::now_nanos().saturating_sub(start),
                            );
                        }
                        chunks += 1;
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    metrics.add_chunks_compacted(chunks);
                    sealed += chunks;
                }
                if sealed == 0 {
                    signal.wait(idle_wait);
                }
            }
        })
        .expect("spawning the delta compactor thread succeeds");
    BackgroundCompactor {
        shutdown,
        handle: Some(handle),
    }
}

impl std::fmt::Debug for HybridDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridDatabase")
            .field("architecture", &self.config.architecture)
            .field("nodes", &self.config.nodes)
            .field("shards", &self.shards.len())
            .field("tables", &self.catalog.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_storage::{ColumnDef, DataType, Value};

    fn item_schema() -> TableSchema {
        TableSchema::new(
            "ITEM",
            vec![
                ColumnDef::new("i_id", DataType::Int, false),
                ColumnDef::new("i_price", DataType::Decimal, false),
            ],
            vec!["i_id"],
        )
        .unwrap()
    }

    #[test]
    fn create_table_registers_row_and_column_stores() {
        let db = HybridDatabase::dual_engine();
        db.create_table(item_schema()).unwrap();
        assert!(db.row_table("ITEM").is_ok());
        assert!(db.col_table("ITEM").is_ok());
        assert!(matches!(
            db.row_table("NOPE"),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn load_rows_replicate_to_column_store() {
        // Disable the background applier so the pre-finish_load lag is
        // deterministic.
        let db = HybridDatabase::new(EngineConfig::dual_engine().with_background_applier(false))
            .unwrap();
        db.create_table(item_schema()).unwrap();
        for i in 0..100 {
            db.load_row(
                "ITEM",
                Row::new(vec![Value::Int(i), Value::Decimal(i * 10)]),
            )
            .unwrap();
        }
        assert!(!db.has_background_applier());
        assert!(db.replication_lag() > 0);
        let applied = db.finish_load().unwrap();
        assert_eq!(applied, 100);
        assert_eq!(db.replication_lag(), 0);
        assert_eq!(db.col_table("ITEM").unwrap().live_row_count(), 100);
        assert_eq!(db.total_live_rows(), 100);
        assert_eq!(db.table_key_count("ITEM"), 100);
    }

    #[test]
    fn sharded_engine_partitions_rows_and_merges_scans() {
        let db = HybridDatabase::new(
            EngineConfig::dual_engine()
                .with_shards(4)
                .with_background_applier(false),
        )
        .unwrap();
        assert_eq!(db.shard_count(), 4);
        db.create_table(item_schema()).unwrap();
        for i in 0..200 {
            db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                .unwrap();
        }
        db.finish_load().unwrap();
        // Every key lives on exactly one shard, and the hash spreads them.
        let mut per_shard = vec![0usize; 4];
        let ts = db.txn_manager().oracle().read_ts();
        for (shard, part) in db.row_partitions("ITEM").unwrap().iter().enumerate() {
            per_shard[shard] = part.live_row_count(ts);
        }
        assert_eq!(per_shard.iter().sum::<usize>(), 200);
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "hash partitioning leaves no shard empty at this size: {per_shard:?}"
        );
        // Routed partition agrees with the hash.
        for i in 0..200i64 {
            let key = Key::int(i);
            let shard = db.shard_for("ITEM", &key);
            assert!(db
                .row_table_for("ITEM", &key)
                .unwrap()
                .get(&key, ts)
                .is_some());
            assert_eq!(shard, shard_of("ITEM", &key, 4), "routing is deterministic");
        }
        // Merged scan sees everything; the shared columnar replica converged.
        assert_eq!(db.scan_table("ITEM", ts, |_, _| {}).unwrap(), 200);
        assert_eq!(db.table_live_row_count("ITEM").unwrap(), 200);
        assert_eq!(db.col_table("ITEM").unwrap().live_row_count(), 200);
        assert_eq!(db.replication_lag(), 0);
        assert_eq!(db.metrics_snapshot().shards, 4);
    }

    #[test]
    fn background_applier_drains_the_log_without_explicit_steps() {
        let db = HybridDatabase::dual_engine();
        assert!(db.has_background_applier());
        db.create_table(item_schema()).unwrap();
        for i in 0..500 {
            db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                .unwrap();
        }
        // No finish_load: the applier threads must converge on their own.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while db.replication_lag() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "applier failed to drain the log (lag {})",
                db.replication_lag()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(db.col_table("ITEM").unwrap().live_row_count(), 500);
        assert!(db.metrics_snapshot().replication_applied >= 500);
    }

    #[test]
    fn applier_shuts_down_cleanly_and_idempotently() {
        let db = HybridDatabase::dual_engine();
        assert!(db.has_background_applier());
        db.shutdown_applier();
        assert!(!db.has_background_applier());
        db.shutdown_applier(); // idempotent
                               // Dropping the database after an explicit shutdown must not hang.
        drop(db);
    }

    #[test]
    fn compactor_shuts_down_cleanly_and_idempotently() {
        let db = HybridDatabase::new(EngineConfig::dual_engine().with_compression(true)).unwrap();
        assert!(db.has_background_compactor());
        db.shutdown_compactor();
        assert!(!db.has_background_compactor());
        db.shutdown_compactor(); // idempotent
        drop(db);

        let off = HybridDatabase::new(EngineConfig::dual_engine().with_compression(false)).unwrap();
        assert!(!off.has_background_compactor());
    }

    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        use std::io::{Read as _, Write as _};
        let mut stream = std::net::TcpStream::connect(addr).expect("connect to telemetry listener");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn telemetry_sampler_appends_interval_points() {
        let db =
            HybridDatabase::new(EngineConfig::dual_engine().with_telemetry_interval_ms(5)).unwrap();
        assert!(db.has_telemetry_sampler());
        db.create_table(item_schema()).unwrap();
        for i in 0..50 {
            db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                .unwrap();
        }
        db.finish_load().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while db.telemetry_timeline().len() < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "sampler produced no points"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let points = db.telemetry_timeline();
        for pair in points.windows(2) {
            assert!(pair[0].t_ms <= pair[1].t_ms, "time axis is monotonic");
        }
        assert!(points.iter().all(|p| p.interval_ms > 0));
        assert!(
            points.iter().map(|p| p.replication_applied).sum::<u64>() >= 50,
            "the bulk load's replication shows up in some interval"
        );
        assert!(db.telemetry_points_since(points[1].t_ms).len() <= points.len());

        db.shutdown_telemetry();
        assert!(!db.has_telemetry_sampler());
        let frozen = db.telemetry_timeline().len();
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(
            db.telemetry_timeline().len(),
            frozen,
            "no points after shutdown; the retained timeline stays readable"
        );
        db.shutdown_telemetry(); // idempotent

        let off =
            HybridDatabase::new(EngineConfig::dual_engine().with_telemetry_interval_ms(0)).unwrap();
        assert!(!off.has_telemetry_sampler());
        assert!(off.telemetry_addr().is_none());
        assert!(off.telemetry_timeline().is_empty());
    }

    #[test]
    fn telemetry_http_serves_live_scrapes_on_an_ephemeral_port() {
        let config = EngineConfig::dual_engine()
            .with_telemetry_addr("127.0.0.1:0")
            .with_telemetry_interval_ms(5);
        let db = HybridDatabase::new(config).unwrap();
        db.create_table(item_schema()).unwrap();
        for i in 0..100 {
            db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                .unwrap();
        }
        db.finish_load().unwrap();
        let addr = db.telemetry_addr().expect("listener bound on :0");

        // /metrics: Prometheus text exposition, parse every sample back.
        let (status, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        let mut samples = 0;
        for line in body.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value: {line}"
            );
            assert!(series.starts_with("olxp_"), "unprefixed series: {line}");
            samples += 1;
        }
        assert!(samples >= 10, "a real exposition: {body}");
        assert!(body.contains("# TYPE olxp_commits_total counter"));
        assert!(body.contains("# TYPE olxp_shards gauge"));
        assert!(body.contains("olxp_statements_total{class=\"oltp\"}"));

        // /healthz: a fresh engine passes every SLO check.
        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200, "{body}");
        assert!(body.starts_with("{\"healthy\":true"));

        // /snapshot: the full counter snapshot with both slow logs.
        let (status, body) = http_get(addr, "/snapshot");
        assert_eq!(status, 200);
        assert!(body.contains("\"commits\":"));
        assert!(body.contains("\"slow_txns\":["));
        assert!(body.contains("\"slow_queries\":["));

        // /timeseries: wait for the sampler, then fetch the ring.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while db.telemetry_timeline().is_empty() {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(2));
        }
        let (status, body) = http_get(addr, "/timeseries");
        assert_eq!(status, 200);
        assert!(body.contains("\"points\":[{"), "ring has points: {body}");

        let (status, _) = http_get(addr, "/nope");
        assert_eq!(status, 404);

        db.shutdown_telemetry();
        assert!(db.telemetry_addr().is_none());
    }

    #[test]
    fn health_degrades_when_slos_are_violated() {
        let db = HybridDatabase::dual_engine();
        assert!(db.health_report().healthy());

        // Stopping a configured background thread flips its liveness check.
        db.shutdown_applier();
        let report = db.health_report();
        assert!(!report.healthy());
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "replication_applier" && !c.healthy));

        // The endpoint router mirrors the verdict as 503 without a socket.
        let handler = telemetry::handler_for(&db);
        let resp = handler("/healthz");
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("\"replication_applier\""));
        assert_eq!(handler("/metrics").status, 200, "metrics always serve");

        // A freshness timeout is an SLO violation on its own.
        let db2 = HybridDatabase::dual_engine();
        db2.metrics().add_freshness_timeout();
        let report = db2.health_report();
        assert!(!report.healthy());
        assert!(report
            .checks
            .iter()
            .any(|c| c.name == "freshness_timeouts" && !c.healthy));
    }

    #[test]
    fn background_compactor_seals_replicated_chunks() {
        // Small time budget: load enough rows to fill several default-size
        // chunks and wait for the compactor to migrate them to main.
        let db = HybridDatabase::new(EngineConfig::dual_engine().with_compression(true)).unwrap();
        db.create_table(item_schema()).unwrap();
        let rows = 3 * olxp_storage::DEFAULT_PRUNE_CHUNK_SIZE as i64;
        for i in 0..rows {
            db.load_row(
                "ITEM",
                Row::new(vec![Value::Int(i), Value::Decimal(i % 16)]),
            )
            .unwrap();
        }
        let table = db.col_table("ITEM").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        // Poll the metric (charged after the seal) so every assertion below
        // observes a settled state.
        while db.metrics_snapshot().chunks_compacted < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "compactor failed to seal full chunks (sealed {})",
                table.main_chunk_count()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(table.main_chunk_count() >= 3);
        assert_eq!(table.live_row_count(), rows as usize);
        let snapshot = db.metrics_snapshot();
        assert!(
            snapshot.col_bytes_resident < snapshot.col_bytes_plain,
            "encoded main chunks shrink the resident footprint"
        );
        assert!(snapshot.col_compression_ratio() > 1.0);
    }

    #[test]
    fn explicit_compaction_works_with_the_compactor_disabled() {
        let db = HybridDatabase::new(EngineConfig::dual_engine().with_compression(false)).unwrap();
        db.create_table(item_schema()).unwrap();
        let rows = 2 * olxp_storage::DEFAULT_PRUNE_CHUNK_SIZE as i64;
        for i in 0..rows {
            db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i % 4)]))
                .unwrap();
        }
        db.finish_load().unwrap();
        assert_eq!(db.col_table("ITEM").unwrap().main_chunk_count(), 0);
        assert_eq!(db.compact_columnar(), 2);
        assert_eq!(db.col_table("ITEM").unwrap().main_chunk_count(), 2);
        assert_eq!(db.metrics_snapshot().chunks_compacted, 2);
    }

    #[test]
    fn analytical_routing_follows_configured_percentage() {
        let mut config = EngineConfig::dual_engine();
        config.analytical_rowstore_percent = 25;
        let db = HybridDatabase::new(config).unwrap();
        let row_routed = (0..100)
            .filter(|_| db.route_analytical() == AnalyticalRoute::RowStore)
            .count();
        assert_eq!(row_routed, 25);
        let single = HybridDatabase::single_engine();
        assert_eq!(single.route_analytical(), AnalyticalRoute::RowStore);
    }

    #[test]
    fn charge_accumulates_metrics() {
        let db = HybridDatabase::new(
            EngineConfig::single_engine()
                .with_nodes(1)
                .with_time_scale(0.0),
        )
        .unwrap();
        db.charge(0, WorkClass::Oltp, 5_000);
        db.charge(0, WorkClass::Olap, 10_000);
        let snapshot = db.metrics_snapshot();
        assert_eq!(snapshot.busy_nanos[0], 5_000);
        assert_eq!(snapshot.busy_nanos[1], 10_000);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = EngineConfig::dual_engine().with_nodes(0);
        assert!(HybridDatabase::new(bad).is_err());
        let bad = EngineConfig::dual_engine().with_shards(0);
        assert!(HybridDatabase::new(bad).is_err());
    }

    #[test]
    fn lock_overhead_is_zero_without_work() {
        let db = HybridDatabase::single_engine();
        assert_eq!(db.lock_overhead(), 0.0);
    }

    fn temp_dir(tag: &str) -> String {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        let dir =
            std::env::temp_dir().join(format!("olxp-db-{tag}-{}-{nanos}", std::process::id()));
        dir.display().to_string()
    }

    fn durable_config(dir: &str) -> EngineConfig {
        crate::config::EngineConfig::dual_engine()
            .with_time_scale(0.0)
            .with_durability(crate::config::DurabilityConfig::at(dir))
    }

    #[test]
    fn durable_load_crash_reopen_recovers_rows() {
        let dir = temp_dir("load");
        {
            let db = HybridDatabase::open(durable_config(&dir)).unwrap();
            assert!(db.is_durable());
            db.create_table(item_schema()).unwrap();
            for i in 0..50 {
                db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                    .unwrap();
            }
            db.finish_load().unwrap();
            db.simulate_crash();
        }
        let db = HybridDatabase::open(durable_config(&dir)).unwrap();
        let report = db.recovery_report().expect("durable open reports recovery");
        assert_eq!(db.total_live_rows(), 50);
        assert_eq!(report.tables_recovered, 1);
        assert_eq!(report.replication_reseeded, 50);
        assert_eq!(db.replication_lag(), 0, "replicas converge during open");
        assert_eq!(db.col_table("ITEM").unwrap().live_row_count(), 50);
        assert!(
            report.wal_records_scanned > 0,
            "recovery scanned the WAL tail"
        );
        // New work after recovery keeps appending above the replayed LSNs.
        db.load_row("ITEM", Row::new(vec![Value::Int(50), Value::Decimal(50)]))
            .unwrap();
        assert!(db.metrics_snapshot().wal.appends > 0);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_durable_crash_reopen_recovers_every_partition() {
        let dir = temp_dir("shardload");
        let config = || durable_config(&dir).with_shards(4);
        {
            let db = HybridDatabase::open(config()).unwrap();
            db.create_table(item_schema()).unwrap();
            for i in 0..60 {
                db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                    .unwrap();
            }
            db.finish_load().unwrap();
            db.simulate_crash();
        }
        let db = HybridDatabase::open(config()).unwrap();
        let report = db.recovery_report().unwrap();
        assert_eq!(db.total_live_rows(), 60);
        assert_eq!(report.wal_txns_replayed, 60);
        assert_eq!(report.replication_reseeded, 60);
        assert_eq!(db.col_table("ITEM").unwrap().live_row_count(), 60);
        let ts = db.txn_manager().oracle().read_ts();
        for i in 0..60i64 {
            let key = Key::int(i);
            assert!(
                db.row_table_for("ITEM", &key)
                    .unwrap()
                    .get(&key, ts)
                    .is_some(),
                "row {i} recovered into its owning shard"
            );
        }
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reopen() {
        let dir = temp_dir("ckpt");
        {
            let db = HybridDatabase::open(durable_config(&dir)).unwrap();
            db.create_table(item_schema()).unwrap();
            for i in 0..20 {
                db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                    .unwrap();
            }
            db.finish_load().unwrap();
            let lsn = db.checkpoint().unwrap();
            assert!(lsn > 0);
            assert_eq!(db.metrics_snapshot().wal.checkpoints, 1);
            db.simulate_crash();
        }
        let db = HybridDatabase::open(durable_config(&dir)).unwrap();
        let report = db.recovery_report().unwrap();
        assert_eq!(report.checkpoint_rows, 20, "rows come from the checkpoint");
        assert_eq!(report.wal_txns_replayed, 0, "nothing after the checkpoint");
        assert_eq!(db.total_live_rows(), 20);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_checkpoint_records_every_shards_cut() {
        let dir = temp_dir("shardckpt");
        let config = || durable_config(&dir).with_shards(2);
        {
            let db = HybridDatabase::open(config()).unwrap();
            db.create_table(item_schema()).unwrap();
            for i in 0..30 {
                db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                    .unwrap();
            }
            db.finish_load().unwrap();
            db.checkpoint().unwrap();
            // Post-checkpoint writes replay from the per-shard WAL tails.
            for i in 30..40 {
                db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                    .unwrap();
            }
            db.finish_load().unwrap();
            db.simulate_crash();
        }
        let db = HybridDatabase::open(config()).unwrap();
        let report = db.recovery_report().unwrap();
        assert_eq!(report.checkpoint_rows, 30);
        assert_eq!(report.wal_txns_replayed, 10);
        assert_eq!(db.total_live_rows(), 40);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_requires_durability() {
        let db = HybridDatabase::single_engine();
        assert!(!db.is_durable());
        assert!(db.recovery_report().is_none());
        assert!(matches!(db.checkpoint(), Err(EngineError::Config(_))));
        assert_eq!(db.wal_metrics(), crate::metrics::WalMetrics::default());
    }
}

//! The HTAP database facade.

use crate::cluster::Cluster;
use crate::config::{EngineArchitecture, EngineConfig};
use crate::error::{EngineError, EngineResult};
use crate::metrics::{EngineMetrics, MetricsSnapshot, WalMetrics, WorkClass};
use crate::session::Session;
use olxp_storage::checkpoint::{load_latest_checkpoint, write_checkpoint};
use olxp_storage::wal::{ReplayedRecord, WalReplay};
use olxp_storage::{
    Catalog, CheckpointData, ColumnTable, Key, MutationOp, ReplicationLog, Replicator, Row,
    RowTable, StorageError, TableCheckpoint, TableSchema, Timestamp, Wal, WalOp, WalRecord,
};
use olxp_txn::TransactionManager;
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which physical store a standalone analytical query is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyticalRoute {
    /// Served by the row store (TiKV-style scan).
    RowStore,
    /// Served by the columnar replicas (TiFlash-style scan).
    ColumnStore,
}

/// The dedicated replication applier thread and its shutdown plumbing.
struct BackgroundApplier {
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// What crash recovery found and rebuilt when a durable database was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// WAL LSN the loaded checkpoint covered (0 when no checkpoint existed).
    pub checkpoint_lsn: u64,
    /// Commit timestamp the checkpoint snapshot was taken at.
    pub checkpoint_commit_ts: Timestamp,
    /// Rows loaded from the checkpoint.
    pub checkpoint_rows: u64,
    /// WAL records scanned during replay (including ones the checkpoint
    /// already covered).
    pub wal_records_scanned: u64,
    /// Committed transactions replayed from the WAL tail.
    pub wal_txns_replayed: u64,
    /// Mutations applied while replaying those transactions.
    pub wal_mutations_replayed: u64,
    /// Bytes of torn WAL tail truncated (a crash mid-write leaves these).
    pub torn_bytes_truncated: u64,
    /// Tables rebuilt (from the checkpoint catalog plus replayed DDL).
    pub tables_recovered: u64,
    /// Replication records re-seeded into the columnar replicas so freshness
    /// watermarks resume correctly.
    pub replication_reseeded: u64,
}

/// An in-process HTAP database instance configured as one of the paper's
/// architectural archetypes.
///
/// The database owns the catalog, the row tables, the columnar replicas, the
/// replication pipeline between them, the transaction manager, the simulated
/// cluster and the engine metrics.  Benchmark threads interact with it through
/// [`Session`]s obtained from [`HybridDatabase::session`].
///
/// When [`EngineConfig::background_applier`] is set (the default), opening the
/// database spawns a dedicated applier thread that continuously drains the
/// replication log into the columnar replicas — the "background process"
/// behind TiDB's asynchronous log replication — so analytical freshness no
/// longer depends on sessions opportunistically stepping replication.  The
/// thread parks when the log is empty, wakes on append, and is joined when the
/// last reference to the database is dropped.
pub struct HybridDatabase {
    config: EngineConfig,
    catalog: Catalog,
    row_tables: RwLock<Arc<HashMap<String, Arc<RowTable>>>>,
    col_tables: RwLock<Arc<HashMap<String, Arc<ColumnTable>>>>,
    txn_mgr: TransactionManager,
    replication: Arc<ReplicationLog>,
    replicator: Arc<Mutex<Replicator>>,
    cluster: Cluster,
    metrics: Arc<EngineMetrics>,
    applier: Mutex<Option<BackgroundApplier>>,
    olap_route_counter: AtomicU64,
    commit_counter: AtomicU64,
    /// Write-ahead log (durable engines only).
    wal: Option<Arc<Wal>>,
    /// Commits hold this for read across [WAL append .. commit marker]; the
    /// checkpointer takes it for write to pick a consistent `(commit_ts, LSN)`
    /// cut with no transaction mid-flight between the two.
    commit_gate: RwLock<()>,
    /// What recovery rebuilt when this database was opened (durable engines).
    recovery: Mutex<Option<RecoveryReport>>,
    /// WAL records logged since the last checkpoint (drives auto-checkpoints).
    wal_records_since_ckpt: AtomicU64,
    /// Guards against concurrent auto-checkpoints.
    checkpointing: AtomicBool,
    checkpoints_taken: AtomicU64,
    checkpoint_failures: AtomicU64,
}

impl HybridDatabase {
    /// Create a database with the given configuration.
    ///
    /// Alias for [`HybridDatabase::open`]: when the configuration enables
    /// durability, any existing state in the data directory is recovered.
    pub fn new(config: EngineConfig) -> EngineResult<Arc<HybridDatabase>> {
        HybridDatabase::open(config)
    }

    /// Open a database.
    ///
    /// For in-memory configurations this simply constructs an empty engine.
    /// For durable configurations it loads the newest checkpoint, replays the
    /// WAL tail above the checkpoint's LSN (tolerating — and truncating — a
    /// torn final record, the signature of a crash mid-write), rebuilds the
    /// row store and catalog, re-seeds the replication pipeline so the
    /// columnar replicas and freshness watermarks resume correctly, and
    /// fast-forwards the timestamp oracle past the newest recovered commit.
    pub fn open(config: EngineConfig) -> EngineResult<Arc<HybridDatabase>> {
        config.validate()?;
        let (wal, checkpoint, replay) = match config.durability.data_dir.as_deref() {
            Some(dir) => {
                let checkpoint = load_latest_checkpoint(Path::new(dir))?;
                let (wal, replay) =
                    Wal::open(dir, config.durability.sync, config.durability.segment_bytes)?;
                (Some(Arc::new(wal)), checkpoint, Some(replay))
            }
            None => (None, None, None),
        };
        let replication = Arc::new(ReplicationLog::new());
        let replicator = Arc::new(Mutex::new(Replicator::new(Arc::clone(&replication))));
        let metrics = Arc::new(EngineMetrics::new());
        let cluster = Cluster::from_config(&config);
        let txn_mgr = TransactionManager::with_lock_timeout(Duration::from_millis(
            config.lock_wait_timeout_ms,
        ));
        let db = Arc::new(HybridDatabase {
            config,
            catalog: Catalog::new(),
            row_tables: RwLock::new(Arc::new(HashMap::new())),
            col_tables: RwLock::new(Arc::new(HashMap::new())),
            txn_mgr,
            replication,
            replicator,
            cluster,
            metrics,
            applier: Mutex::new(None),
            olap_route_counter: AtomicU64::new(0),
            commit_counter: AtomicU64::new(0),
            wal,
            commit_gate: RwLock::new(()),
            recovery: Mutex::new(None),
            wal_records_since_ckpt: AtomicU64::new(0),
            checkpointing: AtomicBool::new(false),
            checkpoints_taken: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
        });
        if let Some(replay) = replay {
            let report = db.recover(checkpoint, replay)?;
            *db.recovery.lock() = Some(report);
        }
        if db.config.background_applier {
            *db.applier.lock() = Some(spawn_applier(
                Arc::clone(&db.replication),
                Arc::clone(&db.replicator),
                Arc::clone(&db.metrics),
                db.config.replication_batch,
                Duration::from_micros(db.config.applier_idle_wait_us),
            ));
        }
        Ok(db)
    }

    /// Convenience constructor for the MemSQL-like archetype.
    pub fn single_engine() -> Arc<HybridDatabase> {
        HybridDatabase::new(EngineConfig::single_engine()).expect("default config is valid")
    }

    /// Convenience constructor for the TiDB-like archetype.
    pub fn dual_engine() -> Arc<HybridDatabase> {
        HybridDatabase::new(EngineConfig::dual_engine()).expect("default config is valid")
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The transaction manager.
    pub fn txn_manager(&self) -> &TransactionManager {
        &self.txn_mgr
    }

    /// Engine metrics.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Snapshot of engine metrics (durable engines include live WAL counters).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        snapshot.wal = self.wal_metrics();
        snapshot
    }

    /// Durability counters (all-zero for in-memory engines).
    pub fn wal_metrics(&self) -> WalMetrics {
        let Some(wal) = &self.wal else {
            return WalMetrics::default();
        };
        let stats = wal.stats();
        WalMetrics {
            appends: stats.appends,
            fsyncs: stats.fsyncs,
            bytes_written: stats.bytes_written,
            synced_commits: stats.synced_commits,
            checkpoints: self.checkpoints_taken.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            group_batch_p50: stats.batch_p50,
            group_batch_p90: stats.batch_p90,
            group_batch_p99: stats.batch_p99,
            group_batch_max: stats.batch_max,
            last_lsn: stats.last_lsn,
            durable_lsn: stats.durable_lsn,
        }
    }

    /// What recovery rebuilt when this database was opened, or `None` for an
    /// in-memory engine.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        *self.recovery.lock()
    }

    /// True when this engine writes a WAL.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Create a table: a row table always, plus a columnar replica registered
    /// with the replication pipeline.  Durable engines log the DDL to the WAL
    /// (and sync it per the policy) so the schema survives a crash even before
    /// the first checkpoint.
    pub fn create_table(&self, schema: TableSchema) -> EngineResult<()> {
        if let Some(wal) = &self.wal {
            // Log before installing: if the WAL refuses the record, nothing
            // was registered and the call can simply be retried.  The rare
            // spurious record (logged but install lost to a concurrent
            // duplicate) is harmless — recovery skips CreateTable records
            // for tables that already exist.  Both steps share one gate hold
            // so a checkpoint cut cannot fall between them.
            if self.catalog.contains(schema.name()) {
                return Err(StorageError::TableExists(schema.name().to_string()).into());
            }
            let lsn = {
                let _gate = self.commit_gate.read();
                let lsn = wal.log_create_table(&schema)?;
                self.install_table(schema)?;
                lsn
            };
            wal.sync_to(lsn)?;
            self.note_wal_records(1);
            Ok(())
        } else {
            self.install_table(schema)
        }
    }

    /// Register a table with the catalog, stores and replication pipeline
    /// without touching the WAL (shared by [`Self::create_table`] and
    /// recovery, which must not re-log what it replays).
    fn install_table(&self, schema: TableSchema) -> EngineResult<()> {
        let schema = self.catalog.create_table(schema)?;
        let row_table = Arc::new(RowTable::new(Arc::clone(&schema)));
        let col_table = Arc::new(ColumnTable::new(Arc::clone(&schema)));
        {
            let mut map = self.row_tables.write();
            let mut new_map = HashMap::clone(map.as_ref());
            new_map.insert(schema.name().to_string(), Arc::clone(&row_table));
            *map = Arc::new(new_map);
        }
        {
            let mut map = self.col_tables.write();
            let mut new_map = HashMap::clone(map.as_ref());
            new_map.insert(schema.name().to_string(), Arc::clone(&col_table));
            *map = Arc::new(new_map);
        }
        self.replicator
            .lock()
            .register(schema.name().to_string(), col_table);
        Ok(())
    }

    /// Shared snapshot of the row tables (cheap to clone, used by query sources).
    pub fn row_tables(&self) -> Arc<HashMap<String, Arc<RowTable>>> {
        Arc::clone(&self.row_tables.read())
    }

    /// Shared snapshot of the columnar replicas.
    pub fn col_tables(&self) -> Arc<HashMap<String, Arc<ColumnTable>>> {
        Arc::clone(&self.col_tables.read())
    }

    /// The row table for `name`.
    pub fn row_table(&self, name: &str) -> EngineResult<Arc<RowTable>> {
        self.row_tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// The columnar replica for `name`.
    pub fn col_table(&self, name: &str) -> EngineResult<Arc<ColumnTable>> {
        self.col_tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Open a session.  Each benchmark driver thread owns one session.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Load a row outside of any transaction (benchmark data population).
    ///
    /// Loading bypasses the cost model and the cluster so that experiment
    /// setup time does not pollute measurements; the rows are still shipped
    /// through the replication log so the columnar replicas converge.  On a
    /// durable engine each load is logged as a one-mutation transaction, but
    /// the fsync is deferred to [`Self::finish_load`] so bulk loading is not
    /// throttled to one fsync per row.
    pub fn load_row(&self, table: &str, row: Row) -> EngineResult<()> {
        let row_table = self.row_table(table)?;
        let key = row_table.schema().primary_key_of(&row);
        let ts = if let Some(wal) = &self.wal {
            // The gate is taken before the timestamp is allocated, so a
            // checkpoint's `(commit_ts, LSN)` cut can never land between
            // this load's timestamp and its WAL records (same invariant as
            // `Session::commit`).
            let _gate = self.commit_gate.read();
            let ts = self.txn_mgr.oracle().load_ts();
            let txn_id = wal.allocate_txn_id();
            let op = WalOp {
                table: table.to_string(),
                op: MutationOp::Insert,
                key: key.clone(),
                row: Some(row.clone()),
            };
            wal.log_mutations(txn_id, std::slice::from_ref(&op), ts)?;
            row_table.insert(row.clone(), ts)?;
            wal.log_commit(txn_id, ts)?;
            self.note_wal_records(3);
            ts
        } else {
            let ts = self.txn_mgr.oracle().load_ts();
            row_table.insert(row.clone(), ts)?;
            ts
        };
        self.replication
            .append(table, MutationOp::Insert, key, Some(row), ts);
        Ok(())
    }

    /// Finish bulk loading: apply all pending replication so the columnar
    /// replicas are complete before measurement starts, and (on a durable
    /// engine) make the loaded data durable with one fsync.
    pub fn finish_load(&self) -> EngineResult<usize> {
        let applied = self.replicator.lock().catch_up()?;
        self.metrics.add_replication_applied(applied as u64);
        if let Some(wal) = &self.wal {
            wal.flush_and_fsync()?;
            self.maybe_checkpoint();
        }
        Ok(applied)
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    /// Apply one batch of pending replication records (asynchronous log
    /// replication step).  Called opportunistically by sessions when no
    /// background applier is running; failures are counted in the engine
    /// metrics and surfaced to the caller.
    pub fn replicate_step(&self) -> EngineResult<usize> {
        let result = self
            .replicator
            .lock()
            .apply_pending(self.config.replication_batch);
        match result {
            Ok(applied) => {
                if applied > 0 {
                    self.metrics.add_replication_applied(applied as u64);
                }
                Ok(applied)
            }
            Err(e) => {
                self.metrics.add_replication_error();
                Err(e.into())
            }
        }
    }

    /// True while the dedicated background applier thread is running.
    pub fn has_background_applier(&self) -> bool {
        self.applier.lock().is_some()
    }

    /// Stop the background applier thread and wait for it to exit.  Further
    /// replication is applied opportunistically (or via [`Self::finish_load`]).
    /// Idempotent; also invoked on drop.
    pub fn shutdown_applier(&self) {
        let Some(mut applier) = self.applier.lock().take() else {
            return;
        };
        applier.shutdown.store(true, Ordering::Release);
        self.replication.notify_waiters();
        if let Some(handle) = applier.handle.take() {
            let _ = handle.join();
        }
    }

    /// Records appended to the replication log but not yet applied.
    pub fn replication_lag(&self) -> u64 {
        self.replication.lag_records()
    }

    /// The shared replication log (used by tests and metrics).
    pub fn replication_log(&self) -> &Arc<ReplicationLog> {
        &self.replication
    }

    // ------------------------------------------------------------------
    // Durability: WAL plumbing, checkpoints and crash recovery
    // ------------------------------------------------------------------

    /// The write-ahead log, when durability is enabled.
    pub(crate) fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Shared hold on the commit gate.  Committers keep it across
    /// [WAL mutation append .. commit marker append] so the checkpointer's
    /// exclusive hold observes no transaction mid-flight.
    pub(crate) fn commit_gate_read(&self) -> RwLockReadGuard<'_, ()> {
        self.commit_gate.read()
    }

    /// Account WAL records toward the automatic checkpoint threshold.
    pub(crate) fn note_wal_records(&self, records: u64) {
        self.wal_records_since_ckpt
            .fetch_add(records, Ordering::Relaxed);
    }

    /// Take an automatic checkpoint when the configured record threshold has
    /// been crossed.  At most one checkpoint runs at a time; a failure is
    /// counted and retried at the next trigger (durability is unaffected —
    /// the WAL retains everything a failed checkpoint did not truncate).
    ///
    /// Must not be called while holding the commit gate (the checkpoint takes
    /// it exclusively).
    pub(crate) fn maybe_checkpoint(&self) {
        let every = self.config.durability.checkpoint_every_records;
        if every == 0 || self.wal.is_none() {
            return;
        }
        if self.wal_records_since_ckpt.load(Ordering::Relaxed) < every {
            return;
        }
        if self
            .checkpointing
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        if self.checkpoint().is_err() {
            self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
        }
        self.checkpointing.store(false, Ordering::Release);
    }

    /// Write a checkpoint: a consistent snapshot of the catalog and of every
    /// row visible at one commit timestamp, tagged with the WAL LSN it
    /// covers.  WAL segments wholly below that LSN are truncated afterwards.
    ///
    /// The `(commit_ts, lsn)` cut is taken under an exclusive hold of the
    /// commit gate, so no transaction is between its WAL append and its
    /// commit marker at that instant: every transaction is either fully below
    /// the LSN (and visible at the timestamp) or fully above it (and replayed
    /// from the WAL on recovery).
    pub fn checkpoint(&self) -> EngineResult<u64> {
        let wal = self
            .wal
            .as_ref()
            .ok_or_else(|| EngineError::Config("durability is disabled".into()))?;
        let data_dir = self
            .config
            .durability
            .data_dir
            .as_deref()
            .ok_or_else(|| EngineError::Config("durability is disabled".into()))?;
        let (ckpt_ts, ckpt_lsn) = {
            let _gate = self.commit_gate.write();
            (self.txn_mgr.oracle().read_ts(), wal.last_lsn())
        };
        // The MVCC snapshot at `ckpt_ts` is stable after the gate is
        // released: later commits carry strictly larger timestamps.
        let mut tables = Vec::new();
        for schema in self.catalog.tables() {
            let row_table = self.row_table(schema.name())?;
            let mut rows = Vec::new();
            row_table.scan(ckpt_ts, |_, row| rows.push(Row::clone(row)));
            tables.push(TableCheckpoint {
                schema: TableSchema::clone(&schema),
                rows,
            });
        }
        let data = CheckpointData {
            lsn: ckpt_lsn,
            commit_ts: ckpt_ts,
            tables,
        };
        write_checkpoint(Path::new(data_dir), &data)?;
        wal.truncate_up_to(ckpt_lsn)?;
        self.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
        self.wal_records_since_ckpt.store(0, Ordering::Relaxed);
        Ok(ckpt_lsn)
    }

    /// Simulate a crash: stop the applier and discard all process state the
    /// OS would lose on a kill — nothing buffered in the WAL is flushed, and
    /// the clean-shutdown flush on drop is suppressed.  Everything a
    /// [`crate::Session::commit`] acknowledged under a syncing policy is
    /// already on disk and survives a subsequent [`HybridDatabase::open`].
    pub fn simulate_crash(&self) {
        self.shutdown_applier();
        if let Some(wal) = &self.wal {
            wal.mark_crashed();
        }
    }

    /// Rebuild the stores from a checkpoint plus the replayed WAL tail.
    fn recover(
        &self,
        checkpoint: Option<CheckpointData>,
        replay: WalReplay,
    ) -> EngineResult<RecoveryReport> {
        let mut report = RecoveryReport {
            torn_bytes_truncated: replay.truncated_bytes,
            ..RecoveryReport::default()
        };
        let mut max_ts: Timestamp = 0;
        if let Some(checkpoint) = checkpoint {
            report.checkpoint_lsn = checkpoint.lsn;
            report.checkpoint_commit_ts = checkpoint.commit_ts;
            max_ts = checkpoint.commit_ts;
            // Checkpointed rows do not carry per-row timestamps; they are all
            // installed at the snapshot timestamp, which preserves visibility
            // for every read at or above it (and the WAL tail only holds
            // transactions committed after the snapshot).
            let load_ts = checkpoint.commit_ts.max(1);
            for table in checkpoint.tables {
                self.install_table(table.schema.clone())?;
                let row_table = self.row_table(table.schema.name())?;
                for row in table.rows {
                    row_table.insert(row, load_ts)?;
                    report.checkpoint_rows += 1;
                }
            }
        }

        // Replay committed transactions above the checkpoint's LSN, buffering
        // mutations until their commit marker proves the commit was
        // acknowledged (a crash between the two must not resurrect it).
        let ckpt_lsn = report.checkpoint_lsn;
        let mut pending: HashMap<u64, Vec<(WalOp, Timestamp)>> = HashMap::new();
        for ReplayedRecord { lsn, record } in replay.records {
            report.wal_records_scanned += 1;
            match record {
                WalRecord::CreateTable { schema } => {
                    if lsn > ckpt_lsn && !self.catalog.contains(schema.name()) {
                        self.install_table(schema)?;
                    }
                }
                WalRecord::Begin { txn_id } => {
                    pending.entry(txn_id).or_default();
                }
                WalRecord::Mutation {
                    txn_id,
                    op,
                    commit_ts,
                } => {
                    pending.entry(txn_id).or_default().push((op, commit_ts));
                }
                WalRecord::Commit {
                    txn_id, commit_ts, ..
                } => {
                    let ops = pending.remove(&txn_id).unwrap_or_default();
                    if lsn <= ckpt_lsn {
                        continue; // fully contained in the checkpoint
                    }
                    report.wal_txns_replayed += 1;
                    max_ts = max_ts.max(commit_ts);
                    for (op, op_ts) in ops {
                        self.recover_apply(&op, op_ts)?;
                        report.wal_mutations_replayed += 1;
                    }
                }
            }
        }

        // Resume the timeline above the newest recovered commit, then re-seed
        // the replication pipeline: every recovered row is shipped to its
        // columnar replica and applied synchronously, so the database opens
        // with appended == applied watermarks and Strict-freshness reads see
        // every pre-crash commit immediately.
        self.txn_mgr.oracle().advance_to(max_ts);
        let reseed_ts = self.txn_mgr.oracle().read_ts();
        for schema in self.catalog.tables() {
            let row_table = self.row_table(schema.name())?;
            row_table.scan(reseed_ts, |key, row| {
                self.replication.append(
                    schema.name(),
                    MutationOp::Insert,
                    key.clone(),
                    Some(Row::clone(row)),
                    reseed_ts,
                );
            });
        }
        let applied = self.replicator.lock().catch_up()?;
        self.metrics.add_replication_applied(applied as u64);
        report.replication_reseeded = applied as u64;
        report.tables_recovered = self.catalog.len() as u64;
        Ok(report)
    }

    /// Apply one replayed mutation at its original commit timestamp.
    ///
    /// Idempotent against checkpoint overlap: a key whose newest version is
    /// already at or above the mutation's timestamp is left untouched (the
    /// checkpoint captured that transaction's effect), an update of a key the
    /// snapshot never saw becomes an insert, and a delete of an absent key is
    /// a no-op.
    fn recover_apply(&self, op: &WalOp, commit_ts: Timestamp) -> EngineResult<()> {
        let row_table = self.row_table(&op.table)?;
        if row_table
            .latest_commit_ts(&op.key)
            .is_some_and(|latest| latest >= commit_ts)
        {
            return Ok(());
        }
        match op.op {
            MutationOp::Insert | MutationOp::Update => {
                let row = op.row.clone().ok_or_else(|| {
                    StorageError::Internal("WAL mutation record without row image".into())
                })?;
                match row_table.update(&op.key, row.clone(), commit_ts) {
                    Err(StorageError::KeyNotFound { .. }) => {
                        row_table.insert(row, commit_ts)?;
                    }
                    other => other?,
                }
            }
            MutationOp::Delete => match row_table.delete(&op.key, commit_ts) {
                Err(StorageError::KeyNotFound { .. }) => {}
                other => other?,
            },
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Routing and accounting (used by `Session`)
    // ------------------------------------------------------------------

    /// Decide where the next standalone analytical query runs.
    ///
    /// The dual engine routes `analytical_rowstore_percent` of queries to the
    /// row store (the optimizer's choice in TiDB, §V-B1) and the remainder to
    /// the columnar replicas on dedicated analytical nodes.  The single engine
    /// and the shared-nothing configuration always compete with OLTP on the
    /// same nodes, which is the point of the comparison.
    pub fn route_analytical(&self) -> AnalyticalRoute {
        let n = self.olap_route_counter.fetch_add(1, Ordering::Relaxed);
        let percent = self.config.analytical_rowstore_percent;
        if (n % 100) < percent {
            AnalyticalRoute::RowStore
        } else {
            AnalyticalRoute::ColumnStore
        }
    }

    /// Charge `service_nanos` of simulated work of `class` to `node`,
    /// blocking for queueing plus scaled service time.
    pub fn charge(&self, node: usize, class: WorkClass, service_nanos: u64) {
        let occupation = self.cluster.occupy(node, service_nanos);
        self.metrics.add_busy(class, occupation.service_nanos);
        self.metrics
            .add_queue_wait(class, occupation.queue_wait_nanos);
    }

    /// Record a commit.  Without a background applier, trigger an
    /// opportunistic replication step every few commits so the columnar
    /// replicas keep up; with the applier running, the append itself already
    /// woke the applier thread.
    pub fn note_commit(&self) {
        self.metrics.add_commit();
        let n = self.commit_counter.fetch_add(1, Ordering::Relaxed);
        if n % 32 == 0 && !self.has_background_applier() {
            // A failure is counted in the metrics by replicate_step and the
            // records stay queued; the next analytical read surfaces it.
            let _ = self.replicate_step();
        }
    }

    /// Record an abort.
    pub fn note_abort(&self) {
        self.metrics.add_abort();
    }

    // ------------------------------------------------------------------
    // Derived metrics
    // ------------------------------------------------------------------

    /// Lock overhead: time spent blocked (row-lock waits plus worker-queue
    /// waits) relative to the simulated busy time.  This is the quantity the
    /// paper measures with `perf` lock samples in Figure 4.
    pub fn lock_overhead(&self) -> f64 {
        let snapshot = self.metrics.snapshot();
        let busy = snapshot.total_busy_nanos() as f64;
        if busy == 0.0 {
            return 0.0;
        }
        let lock_wait = self.txn_mgr.locks().stats().wait_nanos as f64;
        let queue_wait = snapshot.total_queue_wait_nanos() as f64;
        (lock_wait + queue_wait) / busy
    }

    /// Whether this database models the MemSQL-like single engine.
    pub fn is_single_engine(&self) -> bool {
        self.config.architecture == EngineArchitecture::SingleEngine
    }

    /// Total number of live rows across all row tables (for sanity checks).
    pub fn total_live_rows(&self) -> usize {
        let ts = self.txn_mgr.oracle().read_ts();
        self.row_tables
            .read()
            .values()
            .map(|t| t.live_row_count(ts))
            .sum()
    }

    /// Approximate number of keys in a table's row store (physical size used
    /// by the cost model for full scans).
    pub fn table_key_count(&self, table: &str) -> usize {
        self.row_tables
            .read()
            .get(table)
            .map_or(0, |t| t.key_count())
    }

    /// Look up the partition (storage node) owning a key.
    pub fn partition_for(&self, table: &str, key: &Key) -> usize {
        self.cluster.partition_for(table, key)
    }
}

impl Drop for HybridDatabase {
    fn drop(&mut self) {
        self.shutdown_applier();
    }
}

/// Spawn the dedicated applier thread.
///
/// The thread drains the replication log in `batch`-sized steps, parking on
/// the log's condition variable when it is empty (appends wake it).  Apply
/// failures are counted and retried with a capped backoff — the failed batch
/// stays queued (see [`Replicator::apply_pending`]), so committed mutations
/// are never lost while the pipeline is unhealthy.
fn spawn_applier(
    log: Arc<ReplicationLog>,
    replicator: Arc<Mutex<Replicator>>,
    metrics: Arc<EngineMetrics>,
    batch: usize,
    idle_wait: Duration,
) -> BackgroundApplier {
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("olxp-replication-applier".to_string())
        .spawn(move || {
            // Error backoff is independent of the idle park time: it must
            // start small so transient failures retry quickly (a parked
            // freshness-bounded reader is waiting on this thread), growing
            // only while failures persist.
            let initial_backoff = Duration::from_micros(100);
            let max_backoff = Duration::from_millis(5);
            let mut backoff = initial_backoff;
            while !stop.load(Ordering::Acquire) {
                let result = replicator.lock().apply_pending(batch);
                match result {
                    Ok(0) => {
                        log.wait_for_pending(idle_wait);
                    }
                    Ok(applied) => {
                        metrics.add_replication_applied(applied as u64);
                        backoff = initial_backoff;
                    }
                    Err(_) => {
                        metrics.add_replication_error();
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(max_backoff);
                    }
                }
            }
        })
        .expect("spawning the replication applier thread succeeds");
    BackgroundApplier {
        shutdown,
        handle: Some(handle),
    }
}

impl std::fmt::Debug for HybridDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridDatabase")
            .field("architecture", &self.config.architecture)
            .field("nodes", &self.config.nodes)
            .field("tables", &self.catalog.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_storage::{ColumnDef, DataType, Value};

    fn item_schema() -> TableSchema {
        TableSchema::new(
            "ITEM",
            vec![
                ColumnDef::new("i_id", DataType::Int, false),
                ColumnDef::new("i_price", DataType::Decimal, false),
            ],
            vec!["i_id"],
        )
        .unwrap()
    }

    #[test]
    fn create_table_registers_row_and_column_stores() {
        let db = HybridDatabase::dual_engine();
        db.create_table(item_schema()).unwrap();
        assert!(db.row_table("ITEM").is_ok());
        assert!(db.col_table("ITEM").is_ok());
        assert!(matches!(
            db.row_table("NOPE"),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn load_rows_replicate_to_column_store() {
        // Disable the background applier so the pre-finish_load lag is
        // deterministic.
        let db = HybridDatabase::new(EngineConfig::dual_engine().with_background_applier(false))
            .unwrap();
        db.create_table(item_schema()).unwrap();
        for i in 0..100 {
            db.load_row(
                "ITEM",
                Row::new(vec![Value::Int(i), Value::Decimal(i * 10)]),
            )
            .unwrap();
        }
        assert!(!db.has_background_applier());
        assert!(db.replication_lag() > 0);
        let applied = db.finish_load().unwrap();
        assert_eq!(applied, 100);
        assert_eq!(db.replication_lag(), 0);
        assert_eq!(db.col_table("ITEM").unwrap().live_row_count(), 100);
        assert_eq!(db.total_live_rows(), 100);
        assert_eq!(db.table_key_count("ITEM"), 100);
    }

    #[test]
    fn background_applier_drains_the_log_without_explicit_steps() {
        let db = HybridDatabase::dual_engine();
        assert!(db.has_background_applier());
        db.create_table(item_schema()).unwrap();
        for i in 0..500 {
            db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                .unwrap();
        }
        // No finish_load: the applier thread must converge on its own.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while db.replication_lag() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "applier failed to drain the log (lag {})",
                db.replication_lag()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(db.col_table("ITEM").unwrap().live_row_count(), 500);
        assert!(db.metrics_snapshot().replication_applied >= 500);
    }

    #[test]
    fn applier_shuts_down_cleanly_and_idempotently() {
        let db = HybridDatabase::dual_engine();
        assert!(db.has_background_applier());
        db.shutdown_applier();
        assert!(!db.has_background_applier());
        db.shutdown_applier(); // idempotent
                               // Dropping the database after an explicit shutdown must not hang.
        drop(db);
    }

    #[test]
    fn analytical_routing_follows_configured_percentage() {
        let mut config = EngineConfig::dual_engine();
        config.analytical_rowstore_percent = 25;
        let db = HybridDatabase::new(config).unwrap();
        let row_routed = (0..100)
            .filter(|_| db.route_analytical() == AnalyticalRoute::RowStore)
            .count();
        assert_eq!(row_routed, 25);
        let single = HybridDatabase::single_engine();
        assert_eq!(single.route_analytical(), AnalyticalRoute::RowStore);
    }

    #[test]
    fn charge_accumulates_metrics() {
        let db = HybridDatabase::new(
            EngineConfig::single_engine()
                .with_nodes(1)
                .with_time_scale(0.0),
        )
        .unwrap();
        db.charge(0, WorkClass::Oltp, 5_000);
        db.charge(0, WorkClass::Olap, 10_000);
        let snapshot = db.metrics_snapshot();
        assert_eq!(snapshot.busy_nanos[0], 5_000);
        assert_eq!(snapshot.busy_nanos[1], 10_000);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = EngineConfig::dual_engine().with_nodes(0);
        assert!(HybridDatabase::new(bad).is_err());
    }

    #[test]
    fn lock_overhead_is_zero_without_work() {
        let db = HybridDatabase::single_engine();
        assert_eq!(db.lock_overhead(), 0.0);
    }

    fn temp_dir(tag: &str) -> String {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        let dir =
            std::env::temp_dir().join(format!("olxp-db-{tag}-{}-{nanos}", std::process::id()));
        dir.display().to_string()
    }

    fn durable_config(dir: &str) -> EngineConfig {
        crate::config::EngineConfig::dual_engine()
            .with_time_scale(0.0)
            .with_durability(crate::config::DurabilityConfig::at(dir))
    }

    #[test]
    fn durable_load_crash_reopen_recovers_rows() {
        let dir = temp_dir("load");
        {
            let db = HybridDatabase::open(durable_config(&dir)).unwrap();
            assert!(db.is_durable());
            db.create_table(item_schema()).unwrap();
            for i in 0..50 {
                db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                    .unwrap();
            }
            db.finish_load().unwrap();
            db.simulate_crash();
        }
        let db = HybridDatabase::open(durable_config(&dir)).unwrap();
        let report = db.recovery_report().expect("durable open reports recovery");
        assert_eq!(db.total_live_rows(), 50);
        assert_eq!(report.tables_recovered, 1);
        assert_eq!(report.replication_reseeded, 50);
        assert_eq!(db.replication_lag(), 0, "replicas converge during open");
        assert_eq!(db.col_table("ITEM").unwrap().live_row_count(), 50);
        assert!(
            report.wal_records_scanned > 0,
            "recovery scanned the WAL tail"
        );
        // New work after recovery keeps appending above the replayed LSNs.
        db.load_row("ITEM", Row::new(vec![Value::Int(50), Value::Decimal(50)]))
            .unwrap();
        assert!(db.metrics_snapshot().wal.appends > 0);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reopen() {
        let dir = temp_dir("ckpt");
        {
            let db = HybridDatabase::open(durable_config(&dir)).unwrap();
            db.create_table(item_schema()).unwrap();
            for i in 0..20 {
                db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                    .unwrap();
            }
            db.finish_load().unwrap();
            let lsn = db.checkpoint().unwrap();
            assert!(lsn > 0);
            assert_eq!(db.metrics_snapshot().wal.checkpoints, 1);
            db.simulate_crash();
        }
        let db = HybridDatabase::open(durable_config(&dir)).unwrap();
        let report = db.recovery_report().unwrap();
        assert_eq!(report.checkpoint_rows, 20, "rows come from the checkpoint");
        assert_eq!(report.wal_txns_replayed, 0, "nothing after the checkpoint");
        assert_eq!(db.total_live_rows(), 20);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_requires_durability() {
        let db = HybridDatabase::single_engine();
        assert!(!db.is_durable());
        assert!(db.recovery_report().is_none());
        assert!(matches!(db.checkpoint(), Err(EngineError::Config(_))));
        assert_eq!(db.wal_metrics(), crate::metrics::WalMetrics::default());
    }
}

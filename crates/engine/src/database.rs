//! The HTAP database facade.

use crate::cluster::Cluster;
use crate::config::{EngineArchitecture, EngineConfig};
use crate::error::{EngineError, EngineResult};
use crate::metrics::{EngineMetrics, MetricsSnapshot, WorkClass};
use crate::session::Session;
use olxp_storage::{
    Catalog, ColumnTable, Key, MutationOp, ReplicationLog, Replicator, Row, RowTable, TableSchema,
};
use olxp_txn::TransactionManager;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which physical store a standalone analytical query is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyticalRoute {
    /// Served by the row store (TiKV-style scan).
    RowStore,
    /// Served by the columnar replicas (TiFlash-style scan).
    ColumnStore,
}

/// The dedicated replication applier thread and its shutdown plumbing.
struct BackgroundApplier {
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// An in-process HTAP database instance configured as one of the paper's
/// architectural archetypes.
///
/// The database owns the catalog, the row tables, the columnar replicas, the
/// replication pipeline between them, the transaction manager, the simulated
/// cluster and the engine metrics.  Benchmark threads interact with it through
/// [`Session`]s obtained from [`HybridDatabase::session`].
///
/// When [`EngineConfig::background_applier`] is set (the default), opening the
/// database spawns a dedicated applier thread that continuously drains the
/// replication log into the columnar replicas — the "background process"
/// behind TiDB's asynchronous log replication — so analytical freshness no
/// longer depends on sessions opportunistically stepping replication.  The
/// thread parks when the log is empty, wakes on append, and is joined when the
/// last reference to the database is dropped.
pub struct HybridDatabase {
    config: EngineConfig,
    catalog: Catalog,
    row_tables: RwLock<Arc<HashMap<String, Arc<RowTable>>>>,
    col_tables: RwLock<Arc<HashMap<String, Arc<ColumnTable>>>>,
    txn_mgr: TransactionManager,
    replication: Arc<ReplicationLog>,
    replicator: Arc<Mutex<Replicator>>,
    cluster: Cluster,
    metrics: Arc<EngineMetrics>,
    applier: Mutex<Option<BackgroundApplier>>,
    olap_route_counter: AtomicU64,
    commit_counter: AtomicU64,
}

impl HybridDatabase {
    /// Create a database with the given configuration.
    pub fn new(config: EngineConfig) -> EngineResult<Arc<HybridDatabase>> {
        config.validate()?;
        let replication = Arc::new(ReplicationLog::new());
        let replicator = Arc::new(Mutex::new(Replicator::new(Arc::clone(&replication))));
        let metrics = Arc::new(EngineMetrics::new());
        let cluster = Cluster::from_config(&config);
        let txn_mgr =
            TransactionManager::with_lock_timeout(Duration::from_millis(config.lock_wait_timeout_ms));
        let applier = if config.background_applier {
            Some(spawn_applier(
                Arc::clone(&replication),
                Arc::clone(&replicator),
                Arc::clone(&metrics),
                config.replication_batch,
                Duration::from_micros(config.applier_idle_wait_us),
            ))
        } else {
            None
        };
        Ok(Arc::new(HybridDatabase {
            config,
            catalog: Catalog::new(),
            row_tables: RwLock::new(Arc::new(HashMap::new())),
            col_tables: RwLock::new(Arc::new(HashMap::new())),
            txn_mgr,
            replication,
            replicator,
            cluster,
            metrics,
            applier: Mutex::new(applier),
            olap_route_counter: AtomicU64::new(0),
            commit_counter: AtomicU64::new(0),
        }))
    }

    /// Convenience constructor for the MemSQL-like archetype.
    pub fn single_engine() -> Arc<HybridDatabase> {
        HybridDatabase::new(EngineConfig::single_engine()).expect("default config is valid")
    }

    /// Convenience constructor for the TiDB-like archetype.
    pub fn dual_engine() -> Arc<HybridDatabase> {
        HybridDatabase::new(EngineConfig::dual_engine()).expect("default config is valid")
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The transaction manager.
    pub fn txn_manager(&self) -> &TransactionManager {
        &self.txn_mgr
    }

    /// Engine metrics.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Snapshot of engine metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Create a table: a row table always, plus a columnar replica registered
    /// with the replication pipeline.
    pub fn create_table(&self, schema: TableSchema) -> EngineResult<()> {
        let schema = self.catalog.create_table(schema)?;
        let row_table = Arc::new(RowTable::new(Arc::clone(&schema)));
        let col_table = Arc::new(ColumnTable::new(Arc::clone(&schema)));
        {
            let mut map = self.row_tables.write();
            let mut new_map = HashMap::clone(map.as_ref());
            new_map.insert(schema.name().to_string(), Arc::clone(&row_table));
            *map = Arc::new(new_map);
        }
        {
            let mut map = self.col_tables.write();
            let mut new_map = HashMap::clone(map.as_ref());
            new_map.insert(schema.name().to_string(), Arc::clone(&col_table));
            *map = Arc::new(new_map);
        }
        self.replicator
            .lock()
            .register(schema.name().to_string(), col_table);
        Ok(())
    }

    /// Shared snapshot of the row tables (cheap to clone, used by query sources).
    pub fn row_tables(&self) -> Arc<HashMap<String, Arc<RowTable>>> {
        Arc::clone(&self.row_tables.read())
    }

    /// Shared snapshot of the columnar replicas.
    pub fn col_tables(&self) -> Arc<HashMap<String, Arc<ColumnTable>>> {
        Arc::clone(&self.col_tables.read())
    }

    /// The row table for `name`.
    pub fn row_table(&self, name: &str) -> EngineResult<Arc<RowTable>> {
        self.row_tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// The columnar replica for `name`.
    pub fn col_table(&self, name: &str) -> EngineResult<Arc<ColumnTable>> {
        self.col_tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Open a session.  Each benchmark driver thread owns one session.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Load a row outside of any transaction (benchmark data population).
    ///
    /// Loading bypasses the cost model and the cluster so that experiment
    /// setup time does not pollute measurements; the rows are still shipped
    /// through the replication log so the columnar replicas converge.
    pub fn load_row(&self, table: &str, row: Row) -> EngineResult<()> {
        let row_table = self.row_table(table)?;
        let ts = self.txn_mgr.oracle().load_ts();
        let key = row_table.schema().primary_key_of(&row);
        row_table.insert(row.clone(), ts)?;
        self.replication
            .append(table, MutationOp::Insert, key, Some(row), ts);
        Ok(())
    }

    /// Finish bulk loading: apply all pending replication so the columnar
    /// replicas are complete before measurement starts.
    pub fn finish_load(&self) -> EngineResult<usize> {
        let applied = self.replicator.lock().catch_up()?;
        self.metrics.add_replication_applied(applied as u64);
        Ok(applied)
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    /// Apply one batch of pending replication records (asynchronous log
    /// replication step).  Called opportunistically by sessions when no
    /// background applier is running; failures are counted in the engine
    /// metrics and surfaced to the caller.
    pub fn replicate_step(&self) -> EngineResult<usize> {
        let result = self
            .replicator
            .lock()
            .apply_pending(self.config.replication_batch);
        match result {
            Ok(applied) => {
                if applied > 0 {
                    self.metrics.add_replication_applied(applied as u64);
                }
                Ok(applied)
            }
            Err(e) => {
                self.metrics.add_replication_error();
                Err(e.into())
            }
        }
    }

    /// True while the dedicated background applier thread is running.
    pub fn has_background_applier(&self) -> bool {
        self.applier.lock().is_some()
    }

    /// Stop the background applier thread and wait for it to exit.  Further
    /// replication is applied opportunistically (or via [`Self::finish_load`]).
    /// Idempotent; also invoked on drop.
    pub fn shutdown_applier(&self) {
        let Some(mut applier) = self.applier.lock().take() else {
            return;
        };
        applier.shutdown.store(true, Ordering::Release);
        self.replication.notify_waiters();
        if let Some(handle) = applier.handle.take() {
            let _ = handle.join();
        }
    }

    /// Records appended to the replication log but not yet applied.
    pub fn replication_lag(&self) -> u64 {
        self.replication.lag_records()
    }

    /// The shared replication log (used by tests and metrics).
    pub fn replication_log(&self) -> &Arc<ReplicationLog> {
        &self.replication
    }

    // ------------------------------------------------------------------
    // Routing and accounting (used by `Session`)
    // ------------------------------------------------------------------

    /// Decide where the next standalone analytical query runs.
    ///
    /// The dual engine routes `analytical_rowstore_percent` of queries to the
    /// row store (the optimizer's choice in TiDB, §V-B1) and the remainder to
    /// the columnar replicas on dedicated analytical nodes.  The single engine
    /// and the shared-nothing configuration always compete with OLTP on the
    /// same nodes, which is the point of the comparison.
    pub fn route_analytical(&self) -> AnalyticalRoute {
        let n = self.olap_route_counter.fetch_add(1, Ordering::Relaxed);
        let percent = self.config.analytical_rowstore_percent;
        if (n % 100) < percent {
            AnalyticalRoute::RowStore
        } else {
            AnalyticalRoute::ColumnStore
        }
    }

    /// Charge `service_nanos` of simulated work of `class` to `node`,
    /// blocking for queueing plus scaled service time.
    pub fn charge(&self, node: usize, class: WorkClass, service_nanos: u64) {
        let occupation = self.cluster.occupy(node, service_nanos);
        self.metrics.add_busy(class, occupation.service_nanos);
        self.metrics
            .add_queue_wait(class, occupation.queue_wait_nanos);
    }

    /// Record a commit.  Without a background applier, trigger an
    /// opportunistic replication step every few commits so the columnar
    /// replicas keep up; with the applier running, the append itself already
    /// woke the applier thread.
    pub fn note_commit(&self) {
        self.metrics.add_commit();
        let n = self.commit_counter.fetch_add(1, Ordering::Relaxed);
        if n % 32 == 0 && !self.has_background_applier() {
            // A failure is counted in the metrics by replicate_step and the
            // records stay queued; the next analytical read surfaces it.
            let _ = self.replicate_step();
        }
    }

    /// Record an abort.
    pub fn note_abort(&self) {
        self.metrics.add_abort();
    }

    // ------------------------------------------------------------------
    // Derived metrics
    // ------------------------------------------------------------------

    /// Lock overhead: time spent blocked (row-lock waits plus worker-queue
    /// waits) relative to the simulated busy time.  This is the quantity the
    /// paper measures with `perf` lock samples in Figure 4.
    pub fn lock_overhead(&self) -> f64 {
        let snapshot = self.metrics.snapshot();
        let busy = snapshot.total_busy_nanos() as f64;
        if busy == 0.0 {
            return 0.0;
        }
        let lock_wait = self.txn_mgr.locks().stats().wait_nanos as f64;
        let queue_wait = snapshot.total_queue_wait_nanos() as f64;
        (lock_wait + queue_wait) / busy
    }

    /// Whether this database models the MemSQL-like single engine.
    pub fn is_single_engine(&self) -> bool {
        self.config.architecture == EngineArchitecture::SingleEngine
    }

    /// Total number of live rows across all row tables (for sanity checks).
    pub fn total_live_rows(&self) -> usize {
        let ts = self.txn_mgr.oracle().read_ts();
        self.row_tables
            .read()
            .values()
            .map(|t| t.live_row_count(ts))
            .sum()
    }

    /// Approximate number of keys in a table's row store (physical size used
    /// by the cost model for full scans).
    pub fn table_key_count(&self, table: &str) -> usize {
        self.row_tables
            .read()
            .get(table)
            .map_or(0, |t| t.key_count())
    }

    /// Look up the partition (storage node) owning a key.
    pub fn partition_for(&self, table: &str, key: &Key) -> usize {
        self.cluster.partition_for(table, key)
    }
}

impl Drop for HybridDatabase {
    fn drop(&mut self) {
        self.shutdown_applier();
    }
}

/// Spawn the dedicated applier thread.
///
/// The thread drains the replication log in `batch`-sized steps, parking on
/// the log's condition variable when it is empty (appends wake it).  Apply
/// failures are counted and retried with a capped backoff — the failed batch
/// stays queued (see [`Replicator::apply_pending`]), so committed mutations
/// are never lost while the pipeline is unhealthy.
fn spawn_applier(
    log: Arc<ReplicationLog>,
    replicator: Arc<Mutex<Replicator>>,
    metrics: Arc<EngineMetrics>,
    batch: usize,
    idle_wait: Duration,
) -> BackgroundApplier {
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("olxp-replication-applier".to_string())
        .spawn(move || {
            // Error backoff is independent of the idle park time: it must
            // start small so transient failures retry quickly (a parked
            // freshness-bounded reader is waiting on this thread), growing
            // only while failures persist.
            let initial_backoff = Duration::from_micros(100);
            let max_backoff = Duration::from_millis(5);
            let mut backoff = initial_backoff;
            while !stop.load(Ordering::Acquire) {
                let result = replicator.lock().apply_pending(batch);
                match result {
                    Ok(0) => {
                        log.wait_for_pending(idle_wait);
                    }
                    Ok(applied) => {
                        metrics.add_replication_applied(applied as u64);
                        backoff = initial_backoff;
                    }
                    Err(_) => {
                        metrics.add_replication_error();
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(max_backoff);
                    }
                }
            }
        })
        .expect("spawning the replication applier thread succeeds");
    BackgroundApplier {
        shutdown,
        handle: Some(handle),
    }
}

impl std::fmt::Debug for HybridDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridDatabase")
            .field("architecture", &self.config.architecture)
            .field("nodes", &self.config.nodes)
            .field("tables", &self.catalog.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olxp_storage::{ColumnDef, DataType, Value};

    fn item_schema() -> TableSchema {
        TableSchema::new(
            "ITEM",
            vec![
                ColumnDef::new("i_id", DataType::Int, false),
                ColumnDef::new("i_price", DataType::Decimal, false),
            ],
            vec!["i_id"],
        )
        .unwrap()
    }

    #[test]
    fn create_table_registers_row_and_column_stores() {
        let db = HybridDatabase::dual_engine();
        db.create_table(item_schema()).unwrap();
        assert!(db.row_table("ITEM").is_ok());
        assert!(db.col_table("ITEM").is_ok());
        assert!(matches!(
            db.row_table("NOPE"),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn load_rows_replicate_to_column_store() {
        // Disable the background applier so the pre-finish_load lag is
        // deterministic.
        let db =
            HybridDatabase::new(EngineConfig::dual_engine().with_background_applier(false)).unwrap();
        db.create_table(item_schema()).unwrap();
        for i in 0..100 {
            db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i * 10)]))
                .unwrap();
        }
        assert!(!db.has_background_applier());
        assert!(db.replication_lag() > 0);
        let applied = db.finish_load().unwrap();
        assert_eq!(applied, 100);
        assert_eq!(db.replication_lag(), 0);
        assert_eq!(db.col_table("ITEM").unwrap().live_row_count(), 100);
        assert_eq!(db.total_live_rows(), 100);
        assert_eq!(db.table_key_count("ITEM"), 100);
    }

    #[test]
    fn background_applier_drains_the_log_without_explicit_steps() {
        let db = HybridDatabase::dual_engine();
        assert!(db.has_background_applier());
        db.create_table(item_schema()).unwrap();
        for i in 0..500 {
            db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                .unwrap();
        }
        // No finish_load: the applier thread must converge on its own.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while db.replication_lag() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "applier failed to drain the log (lag {})",
                db.replication_lag()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(db.col_table("ITEM").unwrap().live_row_count(), 500);
        assert!(db.metrics_snapshot().replication_applied >= 500);
    }

    #[test]
    fn applier_shuts_down_cleanly_and_idempotently() {
        let db = HybridDatabase::dual_engine();
        assert!(db.has_background_applier());
        db.shutdown_applier();
        assert!(!db.has_background_applier());
        db.shutdown_applier(); // idempotent
        // Dropping the database after an explicit shutdown must not hang.
        drop(db);
    }

    #[test]
    fn analytical_routing_follows_configured_percentage() {
        let mut config = EngineConfig::dual_engine();
        config.analytical_rowstore_percent = 25;
        let db = HybridDatabase::new(config).unwrap();
        let row_routed = (0..100)
            .filter(|_| db.route_analytical() == AnalyticalRoute::RowStore)
            .count();
        assert_eq!(row_routed, 25);
        let single = HybridDatabase::single_engine();
        assert_eq!(single.route_analytical(), AnalyticalRoute::RowStore);
    }

    #[test]
    fn charge_accumulates_metrics() {
        let db = HybridDatabase::new(
            EngineConfig::single_engine()
                .with_nodes(1)
                .with_time_scale(0.0),
        )
        .unwrap();
        db.charge(0, WorkClass::Oltp, 5_000);
        db.charge(0, WorkClass::Olap, 10_000);
        let snapshot = db.metrics_snapshot();
        assert_eq!(snapshot.busy_nanos[0], 5_000);
        assert_eq!(snapshot.busy_nanos[1], 10_000);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let bad = EngineConfig::dual_engine().with_nodes(0);
        assert!(HybridDatabase::new(bad).is_err());
    }

    #[test]
    fn lock_overhead_is_zero_without_work() {
        let db = HybridDatabase::single_engine();
        assert_eq!(db.lock_overhead(), 0.0);
    }
}

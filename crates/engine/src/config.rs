//! Engine configuration.

use crate::error::{EngineError, EngineResult};
use olxp_storage::{CostParams, PruningMode, StorageMedium, SyncPolicy, DEFAULT_BATCH_SIZE};
use olxp_txn::IsolationLevel;
use serde::{Deserialize, Serialize};

/// The three architectural archetypes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineArchitecture {
    /// MemSQL-like: a single engine serving OLTP and OLAP from memory-resident
    /// storage, read-committed isolation, vertical partitioning.
    SingleEngine,
    /// TiDB-like: SSD-resident row store for transactions, asynchronously
    /// replicated columnar replicas for standalone analytical queries,
    /// repeatable-read snapshot isolation, dedicated analytical nodes.
    DualEngine,
    /// OceanBase-like shared-nothing deployment (used by the scalability
    /// experiment): every node is identical and serves both workloads,
    /// SSD-resident storage, snapshot isolation.
    SharedNothing,
}

impl EngineArchitecture {
    /// Short display name used in reports ("MemSQL-like" / "TiDB-like" /
    /// "OceanBase-like").
    pub fn display_name(self) -> &'static str {
        match self {
            EngineArchitecture::SingleEngine => "single-engine (MemSQL-like)",
            EngineArchitecture::DualEngine => "dual-engine (TiDB-like)",
            EngineArchitecture::SharedNothing => "shared-nothing (OceanBase-like)",
        }
    }
}

/// How stale a columnar analytical read may be relative to the committed
/// transactional history.
///
/// The paper's central claim is that HTAP systems must answer analytical
/// queries over *freshly committed* transactional data; the freshness policy
/// makes that requirement explicit and enforceable.  Before a column-store
/// read executes, the session waits (or synchronously catches the replica up)
/// until the bound holds, and the freshness actually observed is recorded in
/// the query's [`olxp_query::ExecStats`] and in [`crate::EngineMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FreshnessPolicy {
    /// No bound: read whatever the replica currently holds (the seed
    /// behaviour).  Replication still runs, but queries never wait.
    Eventual,
    /// The replica may trail the row store by at most this many committed
    /// mutation records at the moment the read starts.  The bound is
    /// re-evaluated against the *current* appended watermark, so
    /// `BoundedRecords(0)` demands a fully caught-up replica at read time —
    /// stronger than [`FreshnessPolicy::Strict`], which only waits for the
    /// mutations committed before the read started and therefore cannot be
    /// starved by sustained concurrent writers.
    BoundedRecords(u64),
    /// The oldest unapplied committed mutation may be at most this many
    /// wall-clock nanoseconds old at the moment the read starts.
    BoundedNanos(u64),
    /// Every mutation committed before the read started must be applied (a
    /// linearizable-read watermark, TiFlash's "learner read").
    Strict,
}

impl FreshnessPolicy {
    /// Human-readable label used in reports.
    pub fn describe(&self) -> String {
        match self {
            FreshnessPolicy::Eventual => "eventual".to_string(),
            FreshnessPolicy::BoundedRecords(n) => format!("bounded({n} records)"),
            FreshnessPolicy::BoundedNanos(t) => format!("bounded({t} ns)"),
            FreshnessPolicy::Strict => "strict".to_string(),
        }
    }

    /// True when reads under this policy may have to wait for the replica.
    pub fn is_bounded(&self) -> bool {
        !matches!(self, FreshnessPolicy::Eventual)
    }
}

/// Durability settings for the engine's storage.
///
/// The default is pure in-memory operation (the seed behaviour): nothing is
/// written to disk, a crash loses everything, and no recovery happens at
/// startup.  Setting [`DurabilityConfig::data_dir`] turns on the write-ahead
/// log and checkpointing: every commit is logged (and, per the
/// [`SyncPolicy`], fsynced) before it is acknowledged, and
/// [`crate::HybridDatabase::open`] replays the newest checkpoint plus the WAL
/// tail to rebuild the stores after a crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments and checkpoints.  `None` (the default)
    /// disables durability entirely.
    pub data_dir: Option<String>,
    /// How commits are made durable.
    pub sync: SyncPolicy,
    /// Target size of one WAL segment file, in bytes (min 4 KiB).
    pub segment_bytes: u64,
    /// Take a checkpoint (and truncate covered WAL segments) every this many
    /// logged records; `0` disables automatic checkpoints (explicit
    /// [`crate::HybridDatabase::checkpoint`] calls still work).
    pub checkpoint_every_records: u64,
}

impl DurabilityConfig {
    /// In-memory operation: no WAL, no checkpoints, no recovery.
    pub fn disabled() -> DurabilityConfig {
        DurabilityConfig {
            data_dir: None,
            sync: SyncPolicy::group_commit(),
            segment_bytes: 8 * 1024 * 1024,
            checkpoint_every_records: 100_000,
        }
    }

    /// Durable operation rooted at `data_dir` with the default group-commit
    /// sync policy.
    pub fn at(data_dir: impl Into<String>) -> DurabilityConfig {
        DurabilityConfig {
            data_dir: Some(data_dir.into()),
            ..DurabilityConfig::disabled()
        }
    }

    /// Override the sync policy (builder style).
    pub fn with_sync(mut self, sync: SyncPolicy) -> DurabilityConfig {
        self.sync = sync;
        self
    }

    /// Override the segment size (builder style).
    pub fn with_segment_bytes(mut self, bytes: u64) -> DurabilityConfig {
        self.segment_bytes = bytes;
        self
    }

    /// Override the automatic checkpoint interval (builder style).
    pub fn with_checkpoint_every(mut self, records: u64) -> DurabilityConfig {
        self.checkpoint_every_records = records;
        self
    }

    /// True when a data directory is configured.
    pub fn is_enabled(&self) -> bool {
        self.data_dir.is_some()
    }

    /// Validate the durability settings (called from
    /// [`EngineConfig::validate`]).
    pub fn validate(&self) -> EngineResult<()> {
        if !self.is_enabled() {
            return Ok(());
        }
        if self
            .data_dir
            .as_deref()
            .is_some_and(|d| d.trim().is_empty())
        {
            return Err(EngineError::Config(
                "durability data_dir must not be empty".into(),
            ));
        }
        if self.segment_bytes < 4096 {
            return Err(EngineError::Config(
                "durability segment_bytes must be >= 4096".into(),
            ));
        }
        if let SyncPolicy::GroupCommit { max_batch, .. } = self.sync {
            if max_batch == 0 {
                return Err(EngineError::Config(
                    "group commit max_batch must be >= 1".into(),
                ));
            }
        }
        Ok(())
    }
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig::disabled()
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Architecture archetype.
    pub architecture: EngineArchitecture,
    /// Number of cluster nodes (the paper uses 4 for the main experiments and
    /// 4/8/16 for the scalability study).
    pub nodes: usize,
    /// Worker threads modelled per node (the paper's servers expose 24
    /// hardware threads; the default is scaled down with the data sizes).
    pub workers_per_node: usize,
    /// Buffer-pool capacity per node, in pages.
    pub buffer_pool_pages: u64,
    /// Storage service-time model.
    pub cost: CostParams,
    /// Multiplier converting simulated service nanoseconds into real elapsed
    /// nanoseconds.  `1.0` runs the model in real time; smaller values speed
    /// experiments up uniformly without changing any ratio.
    pub time_scale: f64,
    /// Maximum replication records applied per opportunistic catch-up step.
    pub replication_batch: usize,
    /// Fraction (0–100) of standalone analytical queries the dual engine's
    /// optimizer routes to the row store instead of the columnar replica
    /// ("the scan tables operations can occur in the row store of TiKV or the
    /// column store of TiFlash", §V-B1).
    pub analytical_rowstore_percent: u64,
    /// Lock wait timeout in milliseconds.
    pub lock_wait_timeout_ms: u64,
    /// Row slots per column batch flowing through the vectorized query
    /// executor (must be >= 1).  Larger batches amortize per-batch overhead;
    /// smaller ones bound operator working sets.
    pub batch_size: usize,
    /// Run a dedicated background applier thread that continuously drains the
    /// replication log into the columnar replicas.  When disabled, replication
    /// is applied opportunistically by sessions (the seed behaviour), and
    /// freshness-bounded reads catch the replica up synchronously.
    pub background_applier: bool,
    /// How long the background applier parks (microseconds) when the
    /// replication queue is empty before re-checking for shutdown.  Appends
    /// and shutdown wake it immediately; this only bounds the worst-case
    /// shutdown latency when a shutdown notification races the park, so it
    /// can be generous — a short value just makes an idle applier churn the
    /// scheduler.
    pub applier_idle_wait_us: u64,
    /// Freshness bound enforced on column-store analytical reads.
    pub freshness: FreshnessPolicy,
    /// Upper bound (milliseconds) a freshness-bounded read waits for the
    /// replica to catch up before failing with a replication error.  Keeps a
    /// stalled or broken replication pipeline from hanging readers forever.
    pub freshness_timeout_ms: u64,
    /// Durability settings (WAL + checkpoints).  Disabled by default, so the
    /// engine behaves exactly like the in-memory seed unless a data directory
    /// is configured.
    pub durability: DurabilityConfig,
    /// Number of hash-partitioned storage shards.  Each shard owns its own
    /// `RowTable` partition, lock table, replication applier, WAL stream and
    /// commit gate; the timestamp oracle stays global.  `1` (the default) is
    /// behaviorally identical to the unsharded engine.  Constructors honour
    /// the `OLXP_TEST_SHARDS` environment variable so the whole test suite can
    /// be re-run against a sharded engine without code changes.
    pub shards: usize,
    /// Chunk-pruning structures consulted by columnar analytical scans: zone
    /// maps (min/max per chunk and column), per-chunk fingerprint filters for
    /// equality predicates, both (the default), or off.  Pruning never changes
    /// results — it only skips chunks that provably contain no matching live
    /// rows.  Constructors honour the `OLXP_TEST_PRUNING` environment variable
    /// (`off`/`zonemap`/`filter`/`both`) so the whole test suite can be re-run
    /// with pruning disabled without code changes.
    pub pruning: PruningMode,
    /// Run a dedicated background compactor thread that seals full delta
    /// chunks of the columnar replicas into the compressed, immutable main
    /// tier (dictionary / run-length encoded per column, with tight zone maps
    /// and fingerprint filters rebuilt during the rewrite).  Compaction never
    /// changes results — global slot indices are stable and scans read both
    /// tiers — so disabling it only keeps every chunk in the plain delta
    /// format.  Constructors honour the `OLXP_TEST_COMPRESSION` environment
    /// variable (`off`/`0`/`false`/`none` disables) so the whole test suite
    /// can be re-run without compression without code changes.
    pub compression: bool,
    /// How long the background compactor parks (microseconds) between sweeps
    /// when no table has a full delta chunk to seal.  Replication appliers
    /// nudge it after applying mutations; this bounds staleness when writes
    /// arrive while it is parked and the worst-case shutdown latency.
    pub compactor_idle_wait_us: u64,
    /// Record lifecycle spans (lock, WAL append, fsync, install, 2PC,
    /// replication apply, compaction, query operators) and per-stage latency
    /// histograms.  When disabled, every instrumentation site reduces to a
    /// branch on one relaxed atomic.  Constructors honour the `OLXP_TRACE`
    /// environment variable (`on`/`1`/`true`/`yes` enables) so any run can be
    /// traced without code changes.
    pub tracing: bool,
    /// Commits slower than this many milliseconds (end to end) log their full
    /// per-stage span breakdown through the engine's slow-transaction log.
    /// `0` (the default) disables the slow log.  Only active while
    /// [`EngineConfig::tracing`] is on, since the stages are measured by the
    /// tracing instrumentation.
    pub slow_txn_threshold_ms: u64,
    /// Analytical queries slower than this many milliseconds (wall clock,
    /// freshness wait included) log their per-operator time breakdown through
    /// the engine's slow-query log.  `0` (the default) disables it.  The
    /// operator breakdown needs [`EngineConfig::tracing`]; the total and the
    /// freshness lag are recorded either way.
    pub slow_query_threshold_ms: u64,
    /// Address (e.g. `127.0.0.1:9184`, port `0` for ephemeral) the engine's
    /// embedded telemetry HTTP server binds at open, serving `GET /metrics`
    /// (Prometheus text), `/healthz` (readiness + SLO checks), `/snapshot`
    /// (JSON metrics snapshot) and `/timeseries` (sampled ring).  `None` (the
    /// default) serves nothing.  Constructors honour the
    /// `OLXP_TELEMETRY_ADDR` environment variable so any run can be scraped
    /// without code changes.
    pub telemetry_addr: Option<String>,
    /// Cadence in milliseconds of the background telemetry sampler, which
    /// diffs consecutive metrics snapshots into per-interval time-series
    /// points (the source of `/timeseries` and of per-run timeline tables).
    /// `0` disables the sampler (and with it the live time series).
    pub telemetry_interval_ms: u64,
}

/// Default shard count: `OLXP_TEST_SHARDS` if set to a positive integer,
/// otherwise 1.
fn default_shards() -> usize {
    std::env::var("OLXP_TEST_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Default pruning mode: `OLXP_TEST_PRUNING` if set to a recognised mode
/// name, otherwise [`PruningMode::Both`].
fn default_pruning() -> PruningMode {
    std::env::var("OLXP_TEST_PRUNING")
        .ok()
        .and_then(|v| PruningMode::parse(&v))
        .unwrap_or_default()
}

/// Default tracing switch: off unless `OLXP_TRACE` asks for tracing
/// (`on`/`1`/`true`/`yes`).
fn default_tracing() -> bool {
    std::env::var(olxp_trace::ENV_TRACE)
        .map(|v| matches!(v.trim(), "1" | "on" | "true" | "yes"))
        .unwrap_or(false)
}

/// Default telemetry scrape address: `OLXP_TELEMETRY_ADDR` if set to a
/// non-empty value, otherwise no embedded HTTP server.
fn default_telemetry_addr() -> Option<String> {
    std::env::var("OLXP_TELEMETRY_ADDR")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
}

/// Default compression switch: on unless `OLXP_TEST_COMPRESSION` is set to
/// `off`, `0`, `false` or `none`.
fn default_compression() -> bool {
    !std::env::var("OLXP_TEST_COMPRESSION")
        .map(|v| {
            matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "none"
            )
        })
        .unwrap_or(false)
}

impl EngineConfig {
    /// MemSQL-like single engine on the default 4-node cluster.
    pub fn single_engine() -> EngineConfig {
        EngineConfig {
            architecture: EngineArchitecture::SingleEngine,
            nodes: 4,
            workers_per_node: 6,
            buffer_pool_pages: 512,
            cost: CostParams::default(),
            time_scale: 1.0,
            replication_batch: 512,
            analytical_rowstore_percent: 100,
            lock_wait_timeout_ms: 500,
            batch_size: DEFAULT_BATCH_SIZE,
            background_applier: true,
            applier_idle_wait_us: 10_000,
            freshness: FreshnessPolicy::Eventual,
            freshness_timeout_ms: 2_000,
            durability: DurabilityConfig::disabled(),
            shards: default_shards(),
            pruning: default_pruning(),
            compression: default_compression(),
            compactor_idle_wait_us: 10_000,
            tracing: default_tracing(),
            slow_txn_threshold_ms: 0,
            slow_query_threshold_ms: 0,
            telemetry_addr: default_telemetry_addr(),
            telemetry_interval_ms: 250,
        }
    }

    /// TiDB-like dual engine on the default 4-node cluster.
    pub fn dual_engine() -> EngineConfig {
        EngineConfig {
            architecture: EngineArchitecture::DualEngine,
            nodes: 4,
            workers_per_node: 6,
            buffer_pool_pages: 512,
            cost: CostParams::default(),
            time_scale: 1.0,
            replication_batch: 512,
            analytical_rowstore_percent: 40,
            lock_wait_timeout_ms: 500,
            batch_size: DEFAULT_BATCH_SIZE,
            background_applier: true,
            applier_idle_wait_us: 10_000,
            freshness: FreshnessPolicy::Eventual,
            freshness_timeout_ms: 2_000,
            durability: DurabilityConfig::disabled(),
            shards: default_shards(),
            pruning: default_pruning(),
            compression: default_compression(),
            compactor_idle_wait_us: 10_000,
            tracing: default_tracing(),
            slow_txn_threshold_ms: 0,
            slow_query_threshold_ms: 0,
            telemetry_addr: default_telemetry_addr(),
            telemetry_interval_ms: 250,
        }
    }

    /// OceanBase-like shared-nothing cluster (scalability experiment only).
    pub fn shared_nothing() -> EngineConfig {
        EngineConfig {
            architecture: EngineArchitecture::SharedNothing,
            analytical_rowstore_percent: 70,
            ..EngineConfig::dual_engine()
        }
    }

    /// Override the cluster size (builder style).
    pub fn with_nodes(mut self, nodes: usize) -> EngineConfig {
        self.nodes = nodes;
        self
    }

    /// Override the per-node worker count (builder style).
    pub fn with_workers_per_node(mut self, workers: usize) -> EngineConfig {
        self.workers_per_node = workers;
        self
    }

    /// Override the time scale (builder style).
    pub fn with_time_scale(mut self, scale: f64) -> EngineConfig {
        self.time_scale = scale;
        self
    }

    /// Override the cost model (builder style).
    pub fn with_cost(mut self, cost: CostParams) -> EngineConfig {
        self.cost = cost;
        self
    }

    /// Override the executor batch size (builder style).
    pub fn with_batch_size(mut self, batch_size: usize) -> EngineConfig {
        self.batch_size = batch_size;
        self
    }

    /// Override the freshness policy for analytical reads (builder style).
    pub fn with_freshness(mut self, freshness: FreshnessPolicy) -> EngineConfig {
        self.freshness = freshness;
        self
    }

    /// Enable or disable the background replication applier (builder style).
    pub fn with_background_applier(mut self, enabled: bool) -> EngineConfig {
        self.background_applier = enabled;
        self
    }

    /// Override the freshness wait timeout (builder style).
    pub fn with_freshness_timeout_ms(mut self, timeout_ms: u64) -> EngineConfig {
        self.freshness_timeout_ms = timeout_ms;
        self
    }

    /// Override the durability settings (builder style).
    pub fn with_durability(mut self, durability: DurabilityConfig) -> EngineConfig {
        self.durability = durability;
        self
    }

    /// Override the storage shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> EngineConfig {
        self.shards = shards;
        self
    }

    /// Override the chunk-pruning mode for columnar scans (builder style).
    pub fn with_pruning(mut self, pruning: PruningMode) -> EngineConfig {
        self.pruning = pruning;
        self
    }

    /// Enable or disable delta/main compression and the background compactor
    /// (builder style).
    pub fn with_compression(mut self, enabled: bool) -> EngineConfig {
        self.compression = enabled;
        self
    }

    /// Enable or disable lifecycle tracing (builder style).
    pub fn with_tracing(mut self, enabled: bool) -> EngineConfig {
        self.tracing = enabled;
        self
    }

    /// Override the slow-transaction threshold in milliseconds; `0` disables
    /// the slow log (builder style).
    pub fn with_slow_txn_threshold_ms(mut self, threshold_ms: u64) -> EngineConfig {
        self.slow_txn_threshold_ms = threshold_ms;
        self
    }

    /// Override the slow-analytical-query threshold in milliseconds; `0`
    /// disables the slow-query log (builder style).
    pub fn with_slow_query_threshold_ms(mut self, threshold_ms: u64) -> EngineConfig {
        self.slow_query_threshold_ms = threshold_ms;
        self
    }

    /// Serve the telemetry endpoints at this address (builder style).  Pass
    /// port `0` for an ephemeral port, resolvable through
    /// [`crate::HybridDatabase::telemetry_addr`] after open.
    pub fn with_telemetry_addr(mut self, addr: impl Into<String>) -> EngineConfig {
        self.telemetry_addr = Some(addr.into());
        self
    }

    /// Override the telemetry sampling cadence in milliseconds; `0` disables
    /// the background sampler (builder style).
    pub fn with_telemetry_interval_ms(mut self, interval_ms: u64) -> EngineConfig {
        self.telemetry_interval_ms = interval_ms;
        self
    }

    /// Storage medium implied by the architecture.
    pub fn medium(&self) -> StorageMedium {
        match self.architecture {
            EngineArchitecture::SingleEngine => StorageMedium::Memory,
            EngineArchitecture::DualEngine | EngineArchitecture::SharedNothing => {
                StorageMedium::Ssd
            }
        }
    }

    /// Default isolation level implied by the architecture.
    pub fn default_isolation(&self) -> IsolationLevel {
        match self.architecture {
            EngineArchitecture::SingleEngine => IsolationLevel::ReadCommitted,
            EngineArchitecture::DualEngine | EngineArchitecture::SharedNothing => {
                IsolationLevel::RepeatableRead
            }
        }
    }

    /// Whether standalone analytical queries can be served by dedicated
    /// analytical (columnar) nodes.
    pub fn has_dedicated_analytical_nodes(&self) -> bool {
        matches!(self.architecture, EngineArchitecture::DualEngine)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> EngineResult<()> {
        if self.nodes == 0 {
            return Err(EngineError::Config("nodes must be >= 1".into()));
        }
        if self.workers_per_node == 0 {
            return Err(EngineError::Config("workers_per_node must be >= 1".into()));
        }
        if !(self.time_scale.is_finite() && self.time_scale >= 0.0) {
            return Err(EngineError::Config(
                "time_scale must be a non-negative finite number".into(),
            ));
        }
        if self.analytical_rowstore_percent > 100 {
            return Err(EngineError::Config(
                "analytical_rowstore_percent must be in 0..=100".into(),
            ));
        }
        if self.replication_batch == 0 {
            return Err(EngineError::Config("replication_batch must be >= 1".into()));
        }
        if self.batch_size == 0 {
            return Err(EngineError::Config("batch_size must be >= 1".into()));
        }
        if self.applier_idle_wait_us == 0 {
            return Err(EngineError::Config(
                "applier_idle_wait_us must be >= 1".into(),
            ));
        }
        if self.freshness.is_bounded() && self.freshness_timeout_ms == 0 {
            return Err(EngineError::Config(
                "freshness_timeout_ms must be >= 1 under a bounded freshness policy".into(),
            ));
        }
        if self.compactor_idle_wait_us == 0 {
            return Err(EngineError::Config(
                "compactor_idle_wait_us must be >= 1".into(),
            ));
        }
        if self.shards == 0 {
            return Err(EngineError::Config("shards must be >= 1".into()));
        }
        if self.shards > 1024 {
            return Err(EngineError::Config("shards must be <= 1024".into()));
        }
        if self
            .telemetry_addr
            .as_deref()
            .is_some_and(|a| a.trim().is_empty())
        {
            return Err(EngineError::Config(
                "telemetry_addr must not be empty when set".into(),
            ));
        }
        self.durability.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archetypes_have_paper_consistent_properties() {
        let single = EngineConfig::single_engine();
        let dual = EngineConfig::dual_engine();
        assert_eq!(single.medium(), StorageMedium::Memory);
        assert_eq!(dual.medium(), StorageMedium::Ssd);
        assert_eq!(single.default_isolation(), IsolationLevel::ReadCommitted);
        assert_eq!(dual.default_isolation(), IsolationLevel::RepeatableRead);
        assert!(dual.has_dedicated_analytical_nodes());
        assert!(!single.has_dedicated_analytical_nodes());
        assert!(single.validate().is_ok());
        assert!(dual.validate().is_ok());
        assert!(EngineConfig::shared_nothing().validate().is_ok());
    }

    #[test]
    fn builder_overrides() {
        let cfg = EngineConfig::dual_engine()
            .with_nodes(16)
            .with_workers_per_node(2)
            .with_time_scale(0.25);
        assert_eq!(cfg.nodes, 16);
        assert_eq!(cfg.workers_per_node, 2);
        assert!((cfg.time_scale - 0.25).abs() < f64::EPSILON);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(EngineConfig::dual_engine()
            .with_nodes(0)
            .validate()
            .is_err());
        assert!(EngineConfig::dual_engine()
            .with_workers_per_node(0)
            .validate()
            .is_err());
        let mut cfg = EngineConfig::dual_engine();
        cfg.time_scale = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = EngineConfig::dual_engine();
        cfg.analytical_rowstore_percent = 200;
        assert!(cfg.validate().is_err());
        let mut cfg = EngineConfig::dual_engine();
        cfg.replication_batch = 0;
        assert!(cfg.validate().is_err());
        assert!(EngineConfig::dual_engine()
            .with_batch_size(0)
            .validate()
            .is_err());
    }

    #[test]
    fn freshness_defaults_and_validation() {
        let cfg = EngineConfig::dual_engine();
        assert_eq!(cfg.freshness, FreshnessPolicy::Eventual);
        assert!(cfg.background_applier);
        let bounded = cfg.with_freshness(FreshnessPolicy::BoundedRecords(64));
        assert!(bounded.validate().is_ok());
        assert!(bounded.freshness.is_bounded());
        let bad = EngineConfig::dual_engine()
            .with_freshness(FreshnessPolicy::Strict)
            .with_freshness_timeout_ms(0);
        assert!(bad.validate().is_err());
        let mut bad = EngineConfig::dual_engine();
        bad.applier_idle_wait_us = 0;
        assert!(bad.validate().is_err());
        // An unbounded policy tolerates a zero timeout (it never waits).
        let eventual = EngineConfig::dual_engine().with_freshness_timeout_ms(0);
        assert!(eventual.validate().is_ok());
    }

    #[test]
    fn freshness_policy_descriptions() {
        assert_eq!(FreshnessPolicy::Eventual.describe(), "eventual");
        assert_eq!(FreshnessPolicy::Strict.describe(), "strict");
        assert_eq!(
            FreshnessPolicy::BoundedRecords(8).describe(),
            "bounded(8 records)"
        );
        assert_eq!(
            FreshnessPolicy::BoundedNanos(1_000).describe(),
            "bounded(1000 ns)"
        );
        assert!(!FreshnessPolicy::Eventual.is_bounded());
        assert!(FreshnessPolicy::BoundedNanos(1).is_bounded());
    }

    #[test]
    fn durability_defaults_and_validation() {
        let cfg = EngineConfig::dual_engine();
        assert!(!cfg.durability.is_enabled(), "in-memory by default");
        assert!(cfg.validate().is_ok());

        let durable = cfg
            .clone()
            .with_durability(DurabilityConfig::at("/tmp/olxp-data"));
        assert!(durable.durability.is_enabled());
        assert!(durable.validate().is_ok());

        let tiny_segments = EngineConfig::dual_engine()
            .with_durability(DurabilityConfig::at("/tmp/x").with_segment_bytes(16));
        assert!(tiny_segments.validate().is_err());

        let empty_dir = EngineConfig::dual_engine().with_durability(DurabilityConfig::at("  "));
        assert!(empty_dir.validate().is_err());

        let zero_batch = EngineConfig::dual_engine().with_durability(
            DurabilityConfig::at("/tmp/x").with_sync(SyncPolicy::GroupCommit {
                max_batch: 0,
                max_wait_us: 10,
            }),
        );
        assert!(zero_batch.validate().is_err());

        // A disabled config never validates its disk knobs.
        let disabled = EngineConfig::dual_engine()
            .with_durability(DurabilityConfig::disabled().with_segment_bytes(16));
        assert!(disabled.validate().is_ok());
    }

    #[test]
    fn compression_defaults_and_validation() {
        // Defaults follow OLXP_TEST_COMPRESSION, which the CI matrix sets;
        // the builder always wins over the environment.
        let cfg = EngineConfig::dual_engine().with_compression(true);
        assert!(cfg.compression);
        assert!(cfg.validate().is_ok());
        let off = EngineConfig::dual_engine().with_compression(false);
        assert!(!off.compression);
        assert!(off.validate().is_ok());
        let mut bad = EngineConfig::dual_engine();
        bad.compactor_idle_wait_us = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn telemetry_defaults_and_validation() {
        let cfg = EngineConfig::dual_engine();
        // The sampler is on by default; the HTTP server is opt-in (the
        // OLXP_TELEMETRY_ADDR environment default is absent in tests).
        assert_eq!(cfg.telemetry_interval_ms, 250);
        assert_eq!(cfg.slow_query_threshold_ms, 0);
        assert!(cfg.validate().is_ok());

        let served = EngineConfig::dual_engine()
            .with_telemetry_addr("127.0.0.1:0")
            .with_telemetry_interval_ms(50)
            .with_slow_query_threshold_ms(25);
        assert_eq!(served.telemetry_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(served.telemetry_interval_ms, 50);
        assert_eq!(served.slow_query_threshold_ms, 25);
        assert!(served.validate().is_ok());

        // Interval 0 disables the sampler but stays valid.
        let off = EngineConfig::dual_engine().with_telemetry_interval_ms(0);
        assert!(off.validate().is_ok());

        let blank = EngineConfig::dual_engine().with_telemetry_addr("  ");
        assert!(blank.validate().is_err());
    }

    #[test]
    fn batch_size_defaults_and_overrides() {
        assert_eq!(EngineConfig::dual_engine().batch_size, DEFAULT_BATCH_SIZE);
        let cfg = EngineConfig::single_engine().with_batch_size(64);
        assert_eq!(cfg.batch_size, 64);
        assert!(cfg.validate().is_ok());
    }
}

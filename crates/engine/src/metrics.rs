//! Engine-side metrics.
//!
//! The experiment harness reads these counters to compute the quantities the
//! paper reports beyond plain latency/throughput: the normalized lock overhead
//! of Figure 4, scan volumes, buffer-pool churn and replication lag.

use olxp_trace::{SpanCategory, StageBreakdown};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Freshness observed by one analytical read at the moment it started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FreshnessSample {
    /// Committed mutation records the replica trailed the row store by.
    pub lag_records: u64,
    /// Commit-timestamp delta between the newest committed mutation and the
    /// newest applied one (logical staleness).
    pub lag_commit_ts: u64,
}

/// Cap on retained freshness samples; beyond it only the counter advances so
/// unbounded runs cannot grow memory without limit.
const FRESHNESS_SAMPLE_CAP: usize = 1 << 20;

/// Durability counters of one engine, surfaced inside [`MetricsSnapshot`].
///
/// Populated by [`crate::HybridDatabase::metrics_snapshot`] from the live WAL
/// when durability is enabled; all-zero for in-memory engines.  The counters
/// accumulate over the engine's lifetime; the batch percentiles describe the
/// full distribution of committers-per-fsync observed so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalMetrics {
    /// WAL records appended.
    pub appends: u64,
    /// fsync calls issued by the WAL (commit syncs + segment rotations).
    pub fsyncs: u64,
    /// Bytes written to WAL segment files.
    pub bytes_written: u64,
    /// Commits acknowledged through a durability sync.
    pub synced_commits: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Automatic checkpoints that failed (the WAL keeps the records, so a
    /// failure costs disk space, not durability).
    pub checkpoint_failures: u64,
    /// Median group-commit batch size (committers per fsync).
    pub group_batch_p50: u64,
    /// 90th percentile group-commit batch size.
    pub group_batch_p90: u64,
    /// 99th percentile group-commit batch size.
    pub group_batch_p99: u64,
    /// Largest group-commit batch observed.
    pub group_batch_max: u64,
    /// Highest LSN assigned.
    pub last_lsn: u64,
    /// Highest LSN known durable.
    pub durable_lsn: u64,
}

impl WalMetrics {
    /// Mean committers per fsync (0 when no fsync has happened).
    pub fn commits_per_fsync(&self) -> f64 {
        if self.fsyncs == 0 {
            return 0.0;
        }
        self.synced_commits as f64 / self.fsyncs as f64
    }
}

/// Per-shard slice of the write-path counters, surfaced inside
/// [`MetricsSnapshot::per_shard`].
///
/// Commit and lock-wait counters come from [`EngineMetrics`] (a commit
/// touching several shards counts once on each); the WAL counters are filled
/// in by [`crate::HybridDatabase::metrics_snapshot`] from that shard's own
/// stream and stay zero on in-memory engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardBreakdown {
    /// Commits that wrote to this shard.
    pub commits: u64,
    /// Write-lock acquisitions on this shard's lock table.
    pub lock_waits: u64,
    /// Real nanoseconds those acquisitions took (queueing included).
    pub lock_wait_nanos: u64,
    /// WAL records appended to this shard's stream.
    pub wal_appends: u64,
    /// fsyncs issued on this shard's stream.
    pub wal_fsyncs: u64,
}

impl ShardBreakdown {
    /// Mean lock acquisition time on this shard in nanoseconds.
    pub fn mean_lock_wait_nanos(&self) -> f64 {
        if self.lock_waits == 0 {
            return 0.0;
        }
        self.lock_wait_nanos as f64 / self.lock_waits as f64
    }
}

/// Classification of work for accounting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkClass {
    /// Online transaction statements.
    Oltp,
    /// Standalone analytical queries.
    Olap,
    /// Hybrid transactions (online transaction with an embedded real-time query).
    Hybrid,
    /// Bulk data loading (not charged to any experiment).
    Load,
}

impl WorkClass {
    fn index(self) -> usize {
        match self {
            WorkClass::Oltp => 0,
            WorkClass::Olap => 1,
            WorkClass::Hybrid => 2,
            WorkClass::Load => 3,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkClass::Oltp => "oltp",
            WorkClass::Olap => "olap",
            WorkClass::Hybrid => "hybrid",
            WorkClass::Load => "load",
        }
    }
}

/// Atomic counters maintained by the engine.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    busy_nanos: [AtomicU64; 4],
    queue_wait_nanos: [AtomicU64; 4],
    statements: [AtomicU64; 4],
    commits: AtomicU64,
    aborts: AtomicU64,
    row_rows_scanned: AtomicU64,
    col_rows_scanned: AtomicU64,
    chunks_scanned: AtomicU64,
    chunks_pruned_zonemap: AtomicU64,
    chunks_pruned_filter: AtomicU64,
    rows_pruned_encoded: AtomicU64,
    chunks_compacted: AtomicU64,
    query_batches: AtomicU64,
    buffer_misses: AtomicU64,
    replication_applied: AtomicU64,
    replication_errors: AtomicU64,
    distributed_commits: AtomicU64,
    freshness_observations: AtomicU64,
    freshness_timeouts: AtomicU64,
    freshness_samples: Mutex<Vec<FreshnessSample>>,
    lock_waits: AtomicU64,
    lock_wait_nanos: AtomicU64,
    /// Lifecycle-stage latency histograms, populated only while tracing is
    /// enabled (one mutex hold per commit/operation, not per stage).
    stage: Mutex<StageBreakdown>,
    /// Per-shard counters, sized by [`EngineMetrics::with_shards`]; empty
    /// vectors (the [`Default`]) disable the per-shard breakdown.
    shard_commits: Vec<AtomicU64>,
    shard_lock_waits: Vec<AtomicU64>,
    shard_lock_wait_nanos: Vec<AtomicU64>,
}

/// A point-in-time copy of [`EngineMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Simulated service nanoseconds, per work class `[oltp, olap, hybrid, load]`.
    pub busy_nanos: [u64; 4],
    /// Real nanoseconds spent queueing for node workers, per work class.
    pub queue_wait_nanos: [u64; 4],
    /// Statements executed, per work class.
    pub statements: [u64; 4],
    /// Transactions committed through the engine.
    pub commits: u64,
    /// Transactions aborted through the engine.
    pub aborts: u64,
    /// Physical rows scanned from row stores.
    pub row_rows_scanned: u64,
    /// Physical rows scanned from column stores.
    pub col_rows_scanned: u64,
    /// Column-store chunks whose rows were actually scanned.
    pub chunks_scanned: u64,
    /// Column-store chunks skipped because their zone maps (min/max + live
    /// counts) proved no row could match the scan predicate.
    pub chunks_pruned_zonemap: u64,
    /// Column-store chunks skipped because a per-chunk fingerprint filter
    /// ruled out an equality probe that survived the zone maps.
    pub chunks_pruned_filter: u64,
    /// Live rows in surviving compressed main-tier chunks that predicate
    /// evaluation on the encoded columns deselected before decoding.
    pub rows_pruned_encoded: u64,
    /// Delta chunks the background compactor sealed into the compressed main
    /// tier.
    pub chunks_compacted: u64,
    /// Column batches streamed through the vectorized query executor.
    pub query_batches: u64,
    /// Buffer-pool page misses.
    pub buffer_misses: u64,
    /// Replication log records applied to columnar replicas.
    pub replication_applied: u64,
    /// Replication apply attempts that failed (the records are retained in
    /// the log and retried; a non-zero value means the replica fell behind).
    pub replication_errors: u64,
    /// Commits that required two-phase commit across partitions.
    pub distributed_commits: u64,
    /// Freshness observations recorded by analytical reads.
    pub freshness_observations: u64,
    /// Freshness-bounded analytical reads that gave up waiting for the
    /// replica and failed with a timeout — a key SLO health signal: any
    /// growth means the replication pipeline cannot hold the configured
    /// staleness bound.
    pub freshness_timeouts: u64,
    /// Durability counters (all-zero for in-memory engines; see
    /// [`WalMetrics`]).  On a sharded engine these are aggregated across
    /// every shard's WAL stream.
    pub wal: WalMetrics,
    /// Number of hash-partitioned storage shards the engine runs with
    /// (filled in by [`crate::HybridDatabase::metrics_snapshot`]).
    pub shards: u64,
    /// Bytes currently resident across every columnar replica: encoded main
    /// chunks plus the plain delta tails.  A gauge filled in by
    /// [`crate::HybridDatabase::metrics_snapshot`], not a counter.
    pub col_bytes_resident: u64,
    /// Bytes the same columnar data would occupy with every tier unencoded
    /// (gauge, filled like [`MetricsSnapshot::col_bytes_resident`]).
    pub col_bytes_plain: u64,
    /// Write-lock acquisitions across every shard's lock table.
    pub lock_waits: u64,
    /// Real nanoseconds those acquisitions took.
    pub lock_wait_nanos: u64,
    /// Per-lifecycle-stage latency histograms (empty unless the engine ran
    /// with [`crate::EngineConfig::tracing`] enabled).
    pub stages: StageBreakdown,
    /// Per-shard write-path counters, in shard order.  Empty when the engine
    /// metrics were not sized for a shard breakdown.
    pub per_shard: Vec<ShardBreakdown>,
}

impl MetricsSnapshot {
    /// Total simulated busy time across all classes.
    pub fn total_busy_nanos(&self) -> u64 {
        self.busy_nanos.iter().sum()
    }

    /// Total queue wait across all classes.
    pub fn total_queue_wait_nanos(&self) -> u64 {
        self.queue_wait_nanos.iter().sum()
    }

    /// Columnar compression ratio: plain bytes per resident byte (1.0 when
    /// nothing is stored or nothing is compressed).
    pub fn col_compression_ratio(&self) -> f64 {
        if self.col_bytes_resident == 0 {
            return 1.0;
        }
        self.col_bytes_plain as f64 / self.col_bytes_resident as f64
    }

    /// Difference between two snapshots (`self - earlier`), element-wise.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for i in 0..4 {
            out.busy_nanos[i] = self.busy_nanos[i].saturating_sub(earlier.busy_nanos[i]);
            out.queue_wait_nanos[i] =
                self.queue_wait_nanos[i].saturating_sub(earlier.queue_wait_nanos[i]);
            out.statements[i] = self.statements[i].saturating_sub(earlier.statements[i]);
        }
        out.commits = self.commits.saturating_sub(earlier.commits);
        out.aborts = self.aborts.saturating_sub(earlier.aborts);
        out.row_rows_scanned = self
            .row_rows_scanned
            .saturating_sub(earlier.row_rows_scanned);
        out.col_rows_scanned = self
            .col_rows_scanned
            .saturating_sub(earlier.col_rows_scanned);
        out.chunks_scanned = self.chunks_scanned.saturating_sub(earlier.chunks_scanned);
        out.chunks_pruned_zonemap = self
            .chunks_pruned_zonemap
            .saturating_sub(earlier.chunks_pruned_zonemap);
        out.chunks_pruned_filter = self
            .chunks_pruned_filter
            .saturating_sub(earlier.chunks_pruned_filter);
        out.rows_pruned_encoded = self
            .rows_pruned_encoded
            .saturating_sub(earlier.rows_pruned_encoded);
        out.chunks_compacted = self
            .chunks_compacted
            .saturating_sub(earlier.chunks_compacted);
        out.query_batches = self.query_batches.saturating_sub(earlier.query_batches);
        out.buffer_misses = self.buffer_misses.saturating_sub(earlier.buffer_misses);
        out.replication_applied = self
            .replication_applied
            .saturating_sub(earlier.replication_applied);
        out.replication_errors = self
            .replication_errors
            .saturating_sub(earlier.replication_errors);
        out.freshness_observations = self
            .freshness_observations
            .saturating_sub(earlier.freshness_observations);
        out.freshness_timeouts = self
            .freshness_timeouts
            .saturating_sub(earlier.freshness_timeouts);
        out.distributed_commits = self
            .distributed_commits
            .saturating_sub(earlier.distributed_commits);
        out.lock_waits = self.lock_waits.saturating_sub(earlier.lock_waits);
        out.lock_wait_nanos = self.lock_wait_nanos.saturating_sub(earlier.lock_wait_nanos);
        out.stages = self.stages.since(&earlier.stages);
        out.per_shard = self
            .per_shard
            .iter()
            .enumerate()
            .map(|(i, now)| {
                let then = earlier.per_shard.get(i).copied().unwrap_or_default();
                ShardBreakdown {
                    commits: now.commits.saturating_sub(then.commits),
                    lock_waits: now.lock_waits.saturating_sub(then.lock_waits),
                    lock_wait_nanos: now.lock_wait_nanos.saturating_sub(then.lock_wait_nanos),
                    wal_appends: now.wal_appends.saturating_sub(then.wal_appends),
                    wal_fsyncs: now.wal_fsyncs.saturating_sub(then.wal_fsyncs),
                }
            })
            .collect();
        // WAL counters subtract; the percentiles and LSN watermarks are
        // lifetime values, so the newer snapshot's are carried over, as are
        // the resident-bytes gauges (a delta of gauges is meaningless).
        out.shards = self.shards;
        out.col_bytes_resident = self.col_bytes_resident;
        out.col_bytes_plain = self.col_bytes_plain;
        out.wal = self.wal;
        out.wal.appends = self.wal.appends.saturating_sub(earlier.wal.appends);
        out.wal.fsyncs = self.wal.fsyncs.saturating_sub(earlier.wal.fsyncs);
        out.wal.bytes_written = self
            .wal
            .bytes_written
            .saturating_sub(earlier.wal.bytes_written);
        out.wal.synced_commits = self
            .wal
            .synced_commits
            .saturating_sub(earlier.wal.synced_commits);
        out.wal.checkpoints = self.wal.checkpoints.saturating_sub(earlier.wal.checkpoints);
        out.wal.checkpoint_failures = self
            .wal
            .checkpoint_failures
            .saturating_sub(earlier.wal.checkpoint_failures);
        out
    }
}

impl EngineMetrics {
    /// Create zeroed metrics without a per-shard breakdown.
    pub fn new() -> EngineMetrics {
        EngineMetrics::default()
    }

    /// Create zeroed metrics sized for a per-shard breakdown of `shards`
    /// write-path counters.
    pub fn with_shards(shards: usize) -> EngineMetrics {
        EngineMetrics {
            shard_commits: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_lock_waits: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_lock_wait_nanos: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            ..EngineMetrics::default()
        }
    }

    /// Record simulated service time.
    pub fn add_busy(&self, class: WorkClass, nanos: u64) {
        self.busy_nanos[class.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record real queue wait time.
    pub fn add_queue_wait(&self, class: WorkClass, nanos: u64) {
        self.queue_wait_nanos[class.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record one executed statement.
    pub fn add_statement(&self, class: WorkClass) {
        self.statements[class.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a commit.
    pub fn add_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an abort.
    pub fn add_abort(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record rows scanned from a row store.
    pub fn add_row_rows_scanned(&self, rows: u64) {
        self.row_rows_scanned.fetch_add(rows, Ordering::Relaxed);
    }

    /// Record rows scanned from a column store.
    pub fn add_col_rows_scanned(&self, rows: u64) {
        self.col_rows_scanned.fetch_add(rows, Ordering::Relaxed);
    }

    /// Record batches streamed through the vectorized executor.
    pub fn add_query_batches(&self, batches: u64) {
        self.query_batches.fetch_add(batches, Ordering::Relaxed);
    }

    /// Record one query's column-store chunk accounting: chunks whose rows
    /// were scanned, chunks skipped by zone maps or fingerprint filters, and
    /// rows deselected by predicate evaluation on encoded main-tier columns.
    pub fn add_chunk_pruning(
        &self,
        scanned: u64,
        pruned_zonemap: u64,
        pruned_filter: u64,
        rows_pruned_encoded: u64,
    ) {
        if scanned > 0 {
            self.chunks_scanned.fetch_add(scanned, Ordering::Relaxed);
        }
        if pruned_zonemap > 0 {
            self.chunks_pruned_zonemap
                .fetch_add(pruned_zonemap, Ordering::Relaxed);
        }
        if pruned_filter > 0 {
            self.chunks_pruned_filter
                .fetch_add(pruned_filter, Ordering::Relaxed);
        }
        if rows_pruned_encoded > 0 {
            self.rows_pruned_encoded
                .fetch_add(rows_pruned_encoded, Ordering::Relaxed);
        }
    }

    /// Record delta chunks sealed into the compressed main tier.
    pub fn add_chunks_compacted(&self, chunks: u64) {
        if chunks > 0 {
            self.chunks_compacted.fetch_add(chunks, Ordering::Relaxed);
        }
    }

    /// Record buffer-pool misses.
    pub fn add_buffer_misses(&self, misses: u64) {
        self.buffer_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Record applied replication records.
    pub fn add_replication_applied(&self, records: u64) {
        self.replication_applied
            .fetch_add(records, Ordering::Relaxed);
    }

    /// Record a failed replication apply attempt.
    pub fn add_replication_error(&self) {
        self.replication_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the freshness one analytical read observed at its start.
    ///
    /// Samples beyond [`FRESHNESS_SAMPLE_CAP`] advance the observation
    /// counter but are not retained until a consumer drains the store with
    /// [`EngineMetrics::take_freshness_samples`].
    pub fn record_freshness(&self, sample: FreshnessSample) {
        self.freshness_observations.fetch_add(1, Ordering::Relaxed);
        let mut samples = self.freshness_samples.lock();
        if samples.len() < FRESHNESS_SAMPLE_CAP {
            samples.push(sample);
        }
    }

    /// Drain and return the retained freshness samples.
    ///
    /// The benchmark driver drains once when a run starts (discarding
    /// leftovers from earlier runs on the same database), once when the
    /// warm-up ends (so the distribution covers the same window as the
    /// latency summaries), and once at the end to collect the run's samples —
    /// which also keeps long-lived databases from ever pinning the sample cap.
    pub fn take_freshness_samples(&self) -> Vec<FreshnessSample> {
        std::mem::take(&mut *self.freshness_samples.lock())
    }

    /// Record a freshness-bounded analytical read that timed out waiting for
    /// the replica to satisfy its staleness bound.
    pub fn add_freshness_timeout(&self) {
        self.freshness_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a two-phase (multi-partition) commit.
    pub fn add_distributed_commit(&self) {
        self.distributed_commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one write-lock acquisition on `shard` that took `nanos`.
    pub fn add_lock_wait(&self, shard: usize, nanos: u64) {
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
        self.lock_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
        if let Some(counter) = self.shard_lock_waits.get(shard) {
            counter.fetch_add(1, Ordering::Relaxed);
            self.shard_lock_wait_nanos[shard].fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Count a commit against every shard it wrote to.
    pub fn add_shard_commits(&self, shards: &[usize]) {
        for &shard in shards {
            if let Some(counter) = self.shard_commits.get(shard) {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record one duration against a lifecycle stage's histogram.
    pub fn record_stage(&self, category: SpanCategory, nanos: u64) {
        self.stage.lock().record(category, nanos);
    }

    /// Record several stage durations under one lock hold (the commit path
    /// batches its whole breakdown into a single call).
    pub fn record_stages(&self, durations: &[(SpanCategory, u64)]) {
        let mut stage = self.stage.lock();
        for &(category, nanos) in durations {
            stage.record(category, nanos);
        }
    }

    /// Copy of the stage-latency breakdown recorded so far.
    pub fn stage_breakdown(&self) -> StageBreakdown {
        self.stage.lock().clone()
    }

    /// Take a snapshot of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let read = |arr: &[AtomicU64; 4]| {
            [
                arr[0].load(Ordering::Relaxed),
                arr[1].load(Ordering::Relaxed),
                arr[2].load(Ordering::Relaxed),
                arr[3].load(Ordering::Relaxed),
            ]
        };
        MetricsSnapshot {
            busy_nanos: read(&self.busy_nanos),
            queue_wait_nanos: read(&self.queue_wait_nanos),
            statements: read(&self.statements),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            row_rows_scanned: self.row_rows_scanned.load(Ordering::Relaxed),
            col_rows_scanned: self.col_rows_scanned.load(Ordering::Relaxed),
            chunks_scanned: self.chunks_scanned.load(Ordering::Relaxed),
            chunks_pruned_zonemap: self.chunks_pruned_zonemap.load(Ordering::Relaxed),
            chunks_pruned_filter: self.chunks_pruned_filter.load(Ordering::Relaxed),
            rows_pruned_encoded: self.rows_pruned_encoded.load(Ordering::Relaxed),
            chunks_compacted: self.chunks_compacted.load(Ordering::Relaxed),
            query_batches: self.query_batches.load(Ordering::Relaxed),
            buffer_misses: self.buffer_misses.load(Ordering::Relaxed),
            replication_applied: self.replication_applied.load(Ordering::Relaxed),
            replication_errors: self.replication_errors.load(Ordering::Relaxed),
            distributed_commits: self.distributed_commits.load(Ordering::Relaxed),
            freshness_observations: self.freshness_observations.load(Ordering::Relaxed),
            freshness_timeouts: self.freshness_timeouts.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            lock_wait_nanos: self.lock_wait_nanos.load(Ordering::Relaxed),
            stages: self.stage.lock().clone(),
            per_shard: self
                .shard_commits
                .iter()
                .zip(&self.shard_lock_waits)
                .zip(&self.shard_lock_wait_nanos)
                .map(|((commits, waits), wait_nanos)| ShardBreakdown {
                    commits: commits.load(Ordering::Relaxed),
                    lock_waits: waits.load(Ordering::Relaxed),
                    lock_wait_nanos: wait_nanos.load(Ordering::Relaxed),
                    // Per-shard WAL counters live on the database's streams;
                    // `HybridDatabase::metrics_snapshot` fills them in.
                    wal_appends: 0,
                    wal_fsyncs: 0,
                })
                .collect(),
            // The WAL, shard layout and columnar footprint live on the
            // database, not here; `HybridDatabase::metrics_snapshot` fills
            // these in.
            wal: WalMetrics::default(),
            shards: 0,
            col_bytes_resident: 0,
            col_bytes_plain: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_class() {
        let m = EngineMetrics::new();
        m.add_busy(WorkClass::Oltp, 100);
        m.add_busy(WorkClass::Olap, 200);
        m.add_busy(WorkClass::Hybrid, 50);
        m.add_statement(WorkClass::Oltp);
        m.add_statement(WorkClass::Oltp);
        m.add_commit();
        let s = m.snapshot();
        assert_eq!(s.busy_nanos[0], 100);
        assert_eq!(s.busy_nanos[1], 200);
        assert_eq!(s.busy_nanos[2], 50);
        assert_eq!(s.statements[0], 2);
        assert_eq!(s.total_busy_nanos(), 350);
        assert_eq!(s.commits, 1);
    }

    #[test]
    fn delta_since_subtracts() {
        let m = EngineMetrics::new();
        m.add_busy(WorkClass::Oltp, 100);
        m.add_commit();
        let early = m.snapshot();
        m.add_busy(WorkClass::Oltp, 40);
        m.add_commit();
        m.add_buffer_misses(7);
        let late = m.snapshot();
        let d = late.delta_since(&early);
        assert_eq!(d.busy_nanos[0], 40);
        assert_eq!(d.commits, 1);
        assert_eq!(d.buffer_misses, 7);
    }

    #[test]
    fn freshness_samples_are_recorded_and_drained() {
        let m = EngineMetrics::new();
        m.record_freshness(FreshnessSample {
            lag_records: 3,
            lag_commit_ts: 9,
        });
        let first = m.take_freshness_samples();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].lag_records, 3);
        m.record_freshness(FreshnessSample {
            lag_records: 7,
            lag_commit_ts: 21,
        });
        let second = m.take_freshness_samples();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].lag_records, 7);
        assert!(m.take_freshness_samples().is_empty());
        assert_eq!(
            m.snapshot().freshness_observations,
            2,
            "counter is lifetime"
        );
    }

    #[test]
    fn freshness_timeouts_are_counted_and_delta() {
        let m = EngineMetrics::new();
        m.add_freshness_timeout();
        let early = m.snapshot();
        m.add_freshness_timeout();
        m.add_freshness_timeout();
        let d = m.snapshot().delta_since(&early);
        assert_eq!(early.freshness_timeouts, 1);
        assert_eq!(d.freshness_timeouts, 2);
    }

    #[test]
    fn replication_errors_are_counted() {
        let m = EngineMetrics::new();
        m.add_replication_error();
        m.add_replication_error();
        let early = m.snapshot();
        m.add_replication_error();
        let d = m.snapshot().delta_since(&early);
        assert_eq!(early.replication_errors, 2);
        assert_eq!(d.replication_errors, 1);
    }

    #[test]
    fn per_shard_counters_accumulate_and_delta() {
        let m = EngineMetrics::with_shards(2);
        m.add_shard_commits(&[0, 1]);
        m.add_shard_commits(&[1]);
        m.add_lock_wait(0, 100);
        m.add_lock_wait(1, 50);
        m.add_lock_wait(9, 25); // out of range: global only, never panics
        let early = m.snapshot();
        assert_eq!(early.per_shard.len(), 2);
        assert_eq!(early.per_shard[0].commits, 1);
        assert_eq!(early.per_shard[1].commits, 2);
        assert_eq!(early.per_shard[0].lock_wait_nanos, 100);
        assert_eq!(early.lock_waits, 3);
        assert_eq!(early.lock_wait_nanos, 175);
        assert_eq!(early.per_shard[0].mean_lock_wait_nanos(), 100.0);
        m.add_shard_commits(&[0]);
        m.add_lock_wait(1, 30);
        let d = m.snapshot().delta_since(&early);
        assert_eq!(d.per_shard[0].commits, 1);
        assert_eq!(d.per_shard[1].commits, 0);
        assert_eq!(d.per_shard[1].lock_wait_nanos, 30);
        assert_eq!(d.lock_waits, 1);
    }

    #[test]
    fn unsized_metrics_have_no_shard_breakdown() {
        let m = EngineMetrics::new();
        m.add_shard_commits(&[0]);
        m.add_lock_wait(0, 10);
        let s = m.snapshot();
        assert!(s.per_shard.is_empty());
        assert_eq!(s.lock_waits, 1, "global counters still work");
    }

    #[test]
    fn stage_histograms_snapshot_and_delta() {
        let m = EngineMetrics::new();
        m.record_stage(SpanCategory::Fsync, 1_000);
        m.record_stages(&[(SpanCategory::Lock, 10), (SpanCategory::Lock, 20)]);
        let early = m.snapshot();
        assert_eq!(early.stages.get(SpanCategory::Lock).count(), 2);
        m.record_stage(SpanCategory::Lock, 30);
        let d = m.snapshot().delta_since(&early);
        assert_eq!(d.stages.get(SpanCategory::Lock).count(), 1);
        assert_eq!(d.stages.get(SpanCategory::Fsync).count(), 0);
        assert!(!m.stage_breakdown().is_empty());
    }

    #[test]
    fn work_class_names() {
        assert_eq!(WorkClass::Oltp.name(), "oltp");
        assert_eq!(WorkClass::Olap.name(), "olap");
        assert_eq!(WorkClass::Hybrid.name(), "hybrid");
        assert_eq!(WorkClass::Load.name(), "load");
    }
}

//! Simulated cluster: nodes, worker pools and partition placement.
//!
//! The paper deploys its systems on 4-node (main experiments) and 16-node
//! (scalability) clusters.  The relevant behaviours of that deployment are:
//!
//! * each node has a bounded amount of compute, so long analytical scans keep
//!   workers busy and online transactions queue behind them — the primary
//!   interference channel;
//! * rows are partitioned across nodes, so transactions touching several
//!   partitions pay two-phase-commit round trips;
//! * the dual-engine architecture dedicates half of the nodes to columnar
//!   replicas (two TiFlash servers out of four in the paper's deployment).
//!
//! [`Cluster`] models exactly these three things: per-node worker pools
//! (acquire/occupy/release with queue-wait measurement), hash partitioning of
//! keys to nodes, and a storage/analytical node split for the dual engine.

use crate::config::{EngineArchitecture, EngineConfig};
use olxp_storage::{BufferPool, Key};
use parking_lot::{Condvar, Mutex};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Identifier of a cluster node.
pub type NodeId = usize;

/// A counting semaphore modelling one node's worker threads.
#[derive(Debug)]
struct WorkerPool {
    capacity: usize,
    available: Mutex<usize>,
    released: Condvar,
}

impl WorkerPool {
    fn new(capacity: usize) -> WorkerPool {
        WorkerPool {
            capacity,
            available: Mutex::new(capacity),
            released: Condvar::new(),
        }
    }

    /// Acquire one worker, returning the real nanoseconds spent waiting.
    fn acquire(&self) -> u64 {
        let started = Instant::now();
        let mut available = self.available.lock();
        while *available == 0 {
            self.released.wait(&mut available);
        }
        *available -= 1;
        started.elapsed().as_nanos() as u64
    }

    fn release(&self) {
        let mut available = self.available.lock();
        *available = (*available + 1).min(self.capacity);
        drop(available);
        self.released.notify_one();
    }
}

/// One simulated server.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    workers: WorkerPool,
    buffer_pool: BufferPool,
}

impl Node {
    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's buffer pool.
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.buffer_pool
    }
}

/// The simulated cluster.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    storage_nodes: Vec<NodeId>,
    analytical_nodes: Vec<NodeId>,
    time_scale: f64,
    storage_round_robin: AtomicU64,
    analytical_round_robin: AtomicU64,
}

/// Outcome of occupying a worker for a piece of simulated work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Occupation {
    /// Real nanoseconds spent waiting for a free worker.
    pub queue_wait_nanos: u64,
    /// Simulated service nanoseconds charged.
    pub service_nanos: u64,
}

impl Cluster {
    /// Build the cluster described by an [`EngineConfig`].
    pub fn from_config(config: &EngineConfig) -> Cluster {
        let nodes: Vec<Node> = (0..config.nodes)
            .map(|id| Node {
                id,
                workers: WorkerPool::new(config.workers_per_node),
                buffer_pool: BufferPool::new(config.buffer_pool_pages),
            })
            .collect();
        let all: Vec<NodeId> = (0..config.nodes).collect();
        let (storage_nodes, analytical_nodes) = match config.architecture {
            EngineArchitecture::DualEngine if config.nodes >= 2 => {
                // Half of the nodes host columnar replicas (TiFlash), the rest
                // host the row store (TiKV), mirroring the paper's deployment.
                let split = config.nodes.div_ceil(2);
                (all[..split].to_vec(), all[split..].to_vec())
            }
            _ => (all.clone(), all),
        };
        Cluster {
            nodes,
            storage_nodes,
            analytical_nodes,
            time_scale: config.time_scale,
            storage_round_robin: AtomicU64::new(0),
            analytical_round_robin: AtomicU64::new(0),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes hosting the row store.
    pub fn storage_nodes(&self) -> &[NodeId] {
        &self.storage_nodes
    }

    /// Nodes hosting columnar replicas.
    pub fn analytical_nodes(&self) -> &[NodeId] {
        &self.analytical_nodes
    }

    /// A node reference.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The storage node owning `(table, key)`.
    pub fn partition_for(&self, table: &str, key: &Key) -> NodeId {
        let mut hasher = DefaultHasher::new();
        table.hash(&mut hasher);
        key.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.storage_nodes.len();
        self.storage_nodes[idx]
    }

    /// The storage node owning a whole-table operation (scans start here and
    /// scatter to the rest); rotates to spread load.  Each rotation keeps its
    /// own counter: a shared one would let interleaved storage and analytical
    /// requests skew both rotations (e.g. every analytical call advancing the
    /// storage rotation past a node it never served).
    pub fn next_storage_node(&self) -> NodeId {
        let i = self.storage_round_robin.fetch_add(1, Ordering::Relaxed) as usize;
        self.storage_nodes[i % self.storage_nodes.len()]
    }

    /// The analytical node that should execute the next columnar query.
    pub fn next_analytical_node(&self) -> NodeId {
        let i = self.analytical_round_robin.fetch_add(1, Ordering::Relaxed) as usize;
        self.analytical_nodes[i % self.analytical_nodes.len()]
    }

    /// Occupy one worker of `node` for `service_nanos` of simulated work.
    ///
    /// The calling thread blocks until a worker is free, then blocks for the
    /// scaled service time (spinning for sub-100µs intervals so short
    /// operations keep their relative cost).  Queue waiting is how OLTP/OLAP
    /// interference materialises as latency.
    pub fn occupy(&self, node: NodeId, service_nanos: u64) -> Occupation {
        let node = &self.nodes[node];
        let queue_wait_nanos = node.workers.acquire();
        let real = (service_nanos as f64 * self.time_scale) as u64;
        precise_delay(Duration::from_nanos(real));
        node.workers.release();
        Occupation {
            queue_wait_nanos,
            service_nanos,
        }
    }

    /// The configured time scale.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }
}

/// Block the calling thread for approximately `d`.
///
/// `thread::sleep` has ~50–100µs granularity on Linux, so short waits are
/// busy-waited on multi-core hosts. On a host with fewer cores than
/// benchmark threads a yielding spin is counterproductive: the spinning
/// thread keeps getting a full scheduler timeslice (~10ms) between yields
/// while runnable peers hold the core, turning a 100µs wait into a 10ms+
/// stall that drowns the modelled service times. On such hosts every wait
/// goes through `thread::sleep`, trading sub-100µs precision for fairness.
pub fn precise_delay(d: Duration) {
    if d < Duration::from_micros(3) {
        return;
    }
    if d >= Duration::from_micros(150) || low_parallelism_host() {
        std::thread::sleep(d);
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::thread::yield_now();
    }
}

/// True when the host exposes less parallelism than a typical benchmark run
/// uses, so spinning would starve peer agent threads. The shape tests and
/// experiments drive up to four agent threads plus the coordinator (five
/// runnable threads at peak); below that many cores at least one runnable
/// thread can end up waiting behind a spinner.
fn low_parallelism_host() -> bool {
    use std::sync::OnceLock;
    static LOW: OnceLock<bool> = OnceLock::new();
    *LOW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() < 5)
            .unwrap_or(true)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn dual_engine_splits_nodes() {
        let cluster = Cluster::from_config(&EngineConfig::dual_engine().with_nodes(4));
        assert_eq!(cluster.node_count(), 4);
        assert_eq!(cluster.storage_nodes().len(), 2);
        assert_eq!(cluster.analytical_nodes().len(), 2);
        assert!(cluster
            .storage_nodes()
            .iter()
            .all(|n| !cluster.analytical_nodes().contains(n)));
    }

    #[test]
    fn single_engine_shares_all_nodes() {
        let cluster = Cluster::from_config(&EngineConfig::single_engine().with_nodes(4));
        assert_eq!(cluster.storage_nodes().len(), 4);
        assert_eq!(cluster.analytical_nodes().len(), 4);
    }

    #[test]
    fn partitioning_is_deterministic_and_in_range() {
        let cluster = Cluster::from_config(&EngineConfig::dual_engine().with_nodes(4));
        let a = cluster.partition_for("ITEM", &Key::int(42));
        let b = cluster.partition_for("ITEM", &Key::int(42));
        assert_eq!(a, b);
        assert!(cluster.storage_nodes().contains(&a));
    }

    #[test]
    fn round_robin_covers_all_analytical_nodes() {
        let cluster = Cluster::from_config(&EngineConfig::dual_engine().with_nodes(4));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            seen.insert(cluster.next_analytical_node());
        }
        assert_eq!(seen.len(), cluster.analytical_nodes().len());
    }

    #[test]
    fn interleaved_rotations_still_cover_every_node() {
        // With one shared counter, alternating storage/analytical calls made
        // each rotation see only every other index, so a two-node rotation
        // degenerated to a single node.  Per-rotation counters keep full
        // coverage under any interleaving.
        let cluster = Cluster::from_config(&EngineConfig::dual_engine().with_nodes(4));
        let mut storage_seen = std::collections::HashSet::new();
        let mut analytical_seen = std::collections::HashSet::new();
        for _ in 0..4 {
            storage_seen.insert(cluster.next_storage_node());
            analytical_seen.insert(cluster.next_analytical_node());
        }
        assert_eq!(storage_seen.len(), cluster.storage_nodes().len());
        assert_eq!(analytical_seen.len(), cluster.analytical_nodes().len());
    }

    #[test]
    fn occupy_charges_service_time_and_measures_queueing() {
        let config = EngineConfig::single_engine()
            .with_nodes(1)
            .with_workers_per_node(1);
        let cluster = Arc::new(Cluster::from_config(&config));
        // Saturate the single worker with a long occupation from another thread.
        let c2 = Arc::clone(&cluster);
        let blocker = thread::spawn(move || c2.occupy(0, 3_000_000));
        thread::sleep(Duration::from_millis(1));
        let started = Instant::now();
        let occ = cluster.occupy(0, 100_000);
        let elapsed = started.elapsed();
        blocker.join().unwrap();
        assert_eq!(occ.service_nanos, 100_000);
        // The second occupation had to queue behind the 3ms blocker (allowing
        // generous slack for scheduling noise).
        assert!(elapsed >= Duration::from_micros(100));
    }

    #[test]
    fn precise_delay_short_and_zero() {
        precise_delay(Duration::ZERO);
        let started = Instant::now();
        precise_delay(Duration::from_micros(50));
        assert!(started.elapsed() >= Duration::from_micros(45));
    }

    #[test]
    fn time_scale_zero_disables_delays() {
        let config = EngineConfig::single_engine().with_time_scale(0.0);
        let cluster = Cluster::from_config(&config);
        let started = Instant::now();
        cluster.occupy(0, 50_000_000);
        assert!(started.elapsed() < Duration::from_millis(20));
    }
}

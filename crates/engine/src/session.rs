//! Sessions: the API benchmark threads use to talk to the engine.
//!
//! A [`Session`] corresponds to one JDBC connection of the original OLxPBench
//! client.  It offers three groups of operations:
//!
//! * **transactional statements** (`read`, `select_eq`, `scan_prefix`,
//!   `insert`, `update`, `delete`) executed inside a [`TxnHandle`];
//! * **real-time queries inside a transaction** ([`Session::query_in_txn`]) —
//!   the defining ingredient of the paper's hybrid transactions, always served
//!   by the row store because "the SQL engine can only choose a row-based
//!   store or column-based store to handle the hybrid transaction" (§V-B2);
//! * **standalone analytical queries** ([`Session::analytical_query`]) routed
//!   to the columnar replicas or the row store depending on the architecture.
//!
//! Every operation performs the real data manipulation on the in-memory
//! stores, then charges the modelled service time to a cluster node, which is
//! where queueing (and therefore interference) happens.

use crate::config::FreshnessPolicy;
use crate::database::{AnalyticalRoute, HybridDatabase};
use crate::error::{EngineError, EngineResult};
use crate::metrics::{FreshnessSample, WorkClass};
use olxp_query::{
    execute_with, ColumnSource, ExecOptions, ExecStats, Plan, QueryOutput, ShardedRowSource,
};
use olxp_storage::{Key, Row, StorageError, StorageMedium, Value, WalOp};
use olxp_txn::{IsolationLevel, Transaction, TxnError, WriteOp};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An open transaction plus its engine-side bookkeeping.
#[derive(Debug)]
pub struct TxnHandle {
    txn: Transaction,
    class: WorkClass,
    partitions: HashSet<usize>,
    /// Real nanoseconds this transaction spent acquiring write locks, summed
    /// over its statements (feeds the commit's stage breakdown while tracing).
    lock_wait_nanos: u64,
}

impl TxnHandle {
    /// The work class this transaction is accounted under.
    pub fn class(&self) -> WorkClass {
        self.class
    }

    /// Number of distinct partitions written so far.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The underlying transaction (read-only access for tests/metrics).
    pub fn txn(&self) -> &Transaction {
        &self.txn
    }
}

/// A connection to a [`HybridDatabase`].
#[derive(Debug, Clone)]
pub struct Session {
    db: Arc<HybridDatabase>,
}

impl Session {
    /// Create a session (use [`HybridDatabase::session`]).
    pub(crate) fn new(db: Arc<HybridDatabase>) -> Session {
        Session { db }
    }

    /// The database this session talks to.
    pub fn database(&self) -> &Arc<HybridDatabase> {
        &self.db
    }

    // ------------------------------------------------------------------
    // Transaction lifecycle
    // ------------------------------------------------------------------

    /// Begin a transaction of the given work class at the engine's default
    /// isolation level.
    pub fn begin(&self, class: WorkClass) -> TxnHandle {
        self.begin_with_isolation(class, self.db.config().default_isolation())
    }

    /// Begin a transaction with an explicit isolation level.
    pub fn begin_with_isolation(&self, class: WorkClass, isolation: IsolationLevel) -> TxnHandle {
        TxnHandle {
            txn: self.db.txn_manager().begin(isolation),
            class,
            partitions: HashSet::new(),
            lock_wait_nanos: 0,
        }
    }

    /// Commit a transaction: validate (under snapshot isolation), install the
    /// write set into the owning shards' row-table partitions, ship it to the
    /// per-shard replication logs and pay the write plus two-phase-commit
    /// cost.
    ///
    /// A transaction whose write set touches a single shard commits entirely
    /// within that shard: its gate, its WAL stream, its fsync queue — no
    /// global coordination.  A cross-shard transaction runs two-phase commit:
    /// mutations and a Prepare record are logged on every touched shard and
    /// forced durable *before* the single commit timestamp is considered
    /// decided, then a Commit marker keyed by the global transaction id is
    /// logged on every shard.  Recovery replays a prepared transaction iff
    /// any shard's stream holds its Commit marker, so a crash between one
    /// shard's marker and another's can never half-commit.
    ///
    /// On a durable engine the commit blocks until its commit markers are
    /// durable per the configured [`olxp_storage::SyncPolicy`].  A WAL I/O
    /// failure *after* the write set has been installed finishes the commit
    /// in memory (the installed and replicated effects cannot be undone) and
    /// returns the storage error: such an error means the commit's durability
    /// is unknown and the engine's disk should be treated as failed — it is
    /// not retryable.
    pub fn commit(&self, mut handle: TxnHandle) -> EngineResult<()> {
        let mgr = self.db.txn_manager();
        let cost = &self.db.config().cost;
        let medium = self.db.config().medium();
        // The whole commit-path instrumentation hangs off this one relaxed
        // load; with tracing off every per-stage timestamp below is skipped.
        let tracing = olxp_trace::enabled();
        let commit_start = if tracing { olxp_trace::now_nanos() } else { 0 };
        let trace_txn = handle.txn.id();
        let mut stage_nanos = [0u64; olxp_trace::SpanCategory::COUNT];

        if handle.txn.write_set().is_empty() {
            mgr.finish_commit(&mut handle.txn)?;
            self.db.note_commit();
            return Ok(());
        }

        // Snapshot isolation: first committer wins.  Each key is validated
        // against the shard partition that owns it.
        if handle.txn.isolation().validates_write_conflicts() {
            let touched: Vec<(String, Key)> = handle
                .txn
                .write_set()
                .touched_keys()
                .map(|(t, k)| (t.to_string(), k.clone()))
                .collect();
            for (table, key) in touched {
                let row_table = self.db.row_table_for(&table, &key)?;
                if let Some(latest) = row_table.latest_commit_ts(&key) {
                    if latest > handle.txn.begin_read_ts() {
                        mgr.abort(&mut handle.txn);
                        self.db.note_abort();
                        return Err(TxnError::WriteConflict {
                            table,
                            key: key.to_string(),
                        }
                        .into());
                    }
                }
            }
        }

        let ops: Vec<WriteOp> = handle.txn.write_set().ops().to_vec();
        // Shards this write set touches, ascending — the global acquisition
        // order for commit gates (the checkpointer uses the same order, so
        // gate acquisition cannot deadlock).
        let mut touched_shards: Vec<usize> = ops
            .iter()
            .map(|op| self.db.shard_for(op.table(), op.key()))
            .collect();
        touched_shards.sort_unstable();
        touched_shards.dedup();
        let durable = self.db.is_durable();

        // Durable engines write ahead: each shard's slice of the write set
        // (begin + mutations) is logged on that shard's stream before any
        // in-memory install, the commit markers after the install succeeds,
        // and the commit is acknowledged only once every marker's LSN is
        // durable per the sync policy.  A crash before any marker leaves
        // unmarked (or prepared-but-undecided) records that recovery
        // presumes aborted.  Each touched shard's commit gate is held for
        // read from *before* the commit-timestamp allocation through that
        // shard's commit-marker append, so a checkpoint's exclusive
        // `(commit_ts, LSN)` cut can never land between a transaction's
        // timestamp and its WAL window on any shard — the invariant
        // recovery's replay filter depends on.
        let mut gates = Vec::new();
        if durable {
            for &shard in &touched_shards {
                gates.push(self.db.commit_gate_read_for(shard));
            }
        }
        let commit_ts = match mgr.prepare_commit(&handle.txn) {
            Ok(ts) => ts,
            Err(e) => {
                drop(gates);
                return Err(e.into());
            }
        };

        let mut wal_txn = None;
        let mut wal_records: u64 = 0;
        if durable {
            let txn_id = self.db.allocate_txn_id();
            // Partition the write set per shard, preserving statement order
            // within each shard.
            let mut shard_ops: Vec<(usize, Vec<WalOp>)> = touched_shards
                .iter()
                .map(|&shard| (shard, Vec::new()))
                .collect();
            for op in &ops {
                let shard = self.db.shard_for(op.table(), op.key());
                let slot = shard_ops
                    .iter_mut()
                    .find(|(s, _)| *s == shard)
                    .expect("every op's shard is in touched_shards");
                slot.1.push(WalOp {
                    table: op.table().to_string(),
                    op: match op {
                        WriteOp::Insert { .. } => olxp_storage::MutationOp::Insert,
                        WriteOp::Update { .. } => olxp_storage::MutationOp::Update,
                        WriteOp::Delete { .. } => olxp_storage::MutationOp::Delete,
                    },
                    key: op.key().clone(),
                    row: op.row().cloned(),
                });
            }
            let cross_shard = touched_shards.len() > 1;
            let mut prepare_lsns: Vec<(usize, u64)> = Vec::new();
            let mut failed = None;
            for (shard, ops_for_shard) in &shard_ops {
                let append_start = if tracing { olxp_trace::now_nanos() } else { 0 };
                let wal = self
                    .db
                    .wal_for_shard(*shard)
                    .expect("durable engine has a WAL per shard");
                if let Err(e) = wal.log_mutations(txn_id, ops_for_shard, commit_ts) {
                    failed = Some(e);
                    break;
                }
                wal_records += ops_for_shard.len() as u64 + 1;
                if cross_shard {
                    // Single-shard commits skip the Prepare record and its
                    // forced sync entirely — their flow is identical to the
                    // unsharded engine's.
                    match wal.log_prepare(txn_id) {
                        Ok(lsn) => {
                            prepare_lsns.push((*shard, lsn));
                            wal_records += 1;
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                if tracing {
                    olxp_trace::record_span(
                        olxp_trace::SpanCategory::WalAppend,
                        *shard as u32,
                        trace_txn,
                        append_start,
                    );
                    stage_nanos[olxp_trace::SpanCategory::WalAppend.index()] +=
                        olxp_trace::now_nanos().saturating_sub(append_start);
                }
            }
            if failed.is_none() {
                // The 2PC log force: every shard's Prepare (and mutations)
                // must be durable before *any* shard logs a Commit marker.
                // Otherwise a crash could expose a marker on one shard while
                // a sibling never persisted the transaction at all, and the
                // in-doubt rule would have nothing to replay there.
                for (shard, lsn) in &prepare_lsns {
                    let prepare_start = if tracing { olxp_trace::now_nanos() } else { 0 };
                    let wal = self
                        .db
                        .wal_for_shard(*shard)
                        .expect("prepared shard has a WAL");
                    if let Err(e) = wal.sync_to(*lsn) {
                        failed = Some(e);
                        break;
                    }
                    if tracing {
                        olxp_trace::record_span(
                            olxp_trace::SpanCategory::TwoPcPrepare,
                            *shard as u32,
                            trace_txn,
                            prepare_start,
                        );
                        stage_nanos[olxp_trace::SpanCategory::TwoPcPrepare.index()] +=
                            olxp_trace::now_nanos().saturating_sub(prepare_start);
                    }
                }
            }
            if let Some(e) = failed {
                // Nothing was installed: unmarked records — and prepares
                // whose transaction has no Commit marker anywhere — are
                // presumed aborted on recovery.
                drop(gates);
                mgr.abort(&mut handle.txn);
                self.db.note_abort();
                return Err(EngineError::Storage(e));
            }
            wal_txn = Some(txn_id);
        }

        let install_start = if tracing { olxp_trace::now_nanos() } else { 0 };
        for op in &ops {
            let shard = self.db.shard_for(op.table(), op.key());
            let row_table = self.db.row_table_for(op.table(), op.key())?;
            let result = match op {
                WriteOp::Insert { row, .. } => row_table.insert(row.clone(), commit_ts).map(|_| ()),
                WriteOp::Update { key, row, .. } => row_table.update(key, row.clone(), commit_ts),
                WriteOp::Delete { key, .. } => row_table.delete(key, commit_ts),
            };
            if let Err(e) = result {
                // Locks prevent concurrent writers to the same keys, so a
                // failure here means the workload violated its own invariants
                // (e.g. double insert); surface it after aborting.  On a
                // durable engine the logged records stay without a Commit
                // marker on any shard, so recovery never replays this
                // transaction.
                drop(gates);
                mgr.abort(&mut handle.txn);
                self.db.note_abort();
                return Err(EngineError::Storage(e));
            }
            let mutation = match op {
                WriteOp::Insert { .. } => olxp_storage::MutationOp::Insert,
                WriteOp::Update { .. } => olxp_storage::MutationOp::Update,
                WriteOp::Delete { .. } => olxp_storage::MutationOp::Delete,
            };
            self.db.replication_for(shard).append(
                op.table(),
                mutation,
                op.key().clone(),
                op.row().cloned(),
                commit_ts,
            );
        }

        if tracing {
            // One install span per commit (spanning every touched shard's
            // row-store writes), tagged with the first touched shard.
            olxp_trace::record_span(
                olxp_trace::SpanCategory::Install,
                touched_shards.first().map_or(0, |&s| s as u32),
                trace_txn,
                install_start,
            );
            stage_nanos[olxp_trace::SpanCategory::Install.index()] +=
                olxp_trace::now_nanos().saturating_sub(install_start);
        }

        // Past this point the write set is installed in the row store and
        // queued for replication; those effects cannot be undone.  If a WAL
        // then refuses a commit marker or an fsync, the transaction is
        // finished *in memory* (so the engine's state stays consistent with
        // what readers and replicas already see) and the durability fault is
        // surfaced as an error: the caller must treat the engine's disk as
        // failed, not retry the transaction.
        let wal_error = if let Some(txn_id) = wal_txn {
            let cross_shard = touched_shards.len() > 1;
            let mut commit_lsns: Vec<(usize, u64)> = Vec::new();
            let mut err = None;
            for &shard in &touched_shards {
                let marker_start = if tracing { olxp_trace::now_nanos() } else { 0 };
                let wal = self
                    .db
                    .wal_for_shard(shard)
                    .expect("durable engine has a WAL per shard");
                match wal.log_commit(txn_id, commit_ts) {
                    Ok(lsn) => {
                        commit_lsns.push((shard, lsn));
                        wal_records += 1;
                    }
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
                // A cross-shard commit's marker append is its 2PC decision
                // phase; a single-shard marker is just another WAL append.
                if tracing {
                    let category = if cross_shard {
                        olxp_trace::SpanCategory::TwoPcCommit
                    } else {
                        olxp_trace::SpanCategory::WalAppend
                    };
                    olxp_trace::record_span(category, shard as u32, trace_txn, marker_start);
                    stage_nanos[category.index()] +=
                        olxp_trace::now_nanos().saturating_sub(marker_start);
                }
            }
            drop(gates);
            if err.is_none() {
                // Block until every marker is durable (each shard's
                // group-commit coordinator batches concurrent committers
                // into shared fsyncs).  The row locks are still held, so
                // per-key WAL order matches commit-timestamp order.
                for (shard, lsn) in &commit_lsns {
                    let fsync_start = if tracing { olxp_trace::now_nanos() } else { 0 };
                    let wal = self
                        .db
                        .wal_for_shard(*shard)
                        .expect("marked shard has a WAL");
                    if let Err(e) = wal.sync_to(*lsn) {
                        err = Some(e);
                        break;
                    }
                    if tracing {
                        olxp_trace::record_span(
                            olxp_trace::SpanCategory::Fsync,
                            *shard as u32,
                            trace_txn,
                            fsync_start,
                        );
                        stage_nanos[olxp_trace::SpanCategory::Fsync.index()] +=
                            olxp_trace::now_nanos().saturating_sub(fsync_start);
                    }
                }
            }
            if err.is_none() {
                self.db.note_wal_records(wal_records);
            }
            err
        } else {
            drop(gates);
            None
        };
        if let Some(e) = wal_error {
            mgr.finish_commit(&mut handle.txn)?;
            self.db.note_commit();
            return Err(EngineError::Storage(e));
        }
        mgr.finish_commit(&mut handle.txn)?;

        // Charge write service time and distributed-commit coordination.  A
        // commit spanning multiple cluster partitions or multiple storage
        // shards ran a two-phase protocol; the network round-trips are only
        // modelled for cluster partitions (shards share the process).
        let mut nanos = cost.write(medium).saturating_mul(ops.len() as u64);
        if handle.partitions.len() > 1 {
            nanos += cost.network(2 * (handle.partitions.len() as u64 - 1));
        }
        if handle.partitions.len() > 1 || touched_shards.len() > 1 {
            self.db.metrics().add_distributed_commit();
        }
        if wal_txn.is_some() && medium == StorageMedium::Ssd {
            // With real WAL streams the amortised log-force cost is not an
            // anonymous slice of node compute: each stream admits one force
            // at a time, so the per-commit force serialises against every
            // other commit touching the same shard, and a cross-shard commit
            // forces every touched shard's stream.  Pay it through the
            // per-shard device (once per shard, not per row — that is the
            // amortisation) and keep only the row-install cost on the node's
            // worker pool.
            nanos = nanos.saturating_sub(cost.ssd_write_extra_ns.saturating_mul(ops.len() as u64));
            for &shard in &touched_shards {
                self.db
                    .occupy_wal_device(shard, handle.class, cost.ssd_write_extra_ns);
            }
        }
        let node = handle
            .partitions
            .iter()
            .next()
            .copied()
            .unwrap_or_else(|| self.db.cluster().next_storage_node());
        self.db.charge(node, handle.class, nanos);
        self.db.metrics().add_shard_commits(&touched_shards);
        self.db.note_commit();
        if tracing {
            // Lock waits happened during the statements, not inside this
            // call, so they join the breakdown here rather than the span.
            stage_nanos[olxp_trace::SpanCategory::Lock.index()] = handle.lock_wait_nanos;
            self.finish_commit_trace(
                trace_txn,
                wal_txn,
                commit_start,
                stage_nanos,
                &touched_shards,
            );
        }
        // Runs outside the commit gate: the checkpoint takes it exclusively.
        self.db.maybe_checkpoint();
        Ok(())
    }

    /// Tracing epilogue of a successful commit: the whole-commit span, one
    /// stage-histogram update under a single lock hold, and — when the commit
    /// crossed the configured threshold — a slow-transaction record carrying
    /// the full breakdown.
    fn finish_commit_trace(
        &self,
        trace_txn: u64,
        wal_txn: Option<u64>,
        commit_start: u64,
        mut stage_nanos: [u64; olxp_trace::SpanCategory::COUNT],
        touched_shards: &[usize],
    ) {
        use olxp_trace::SpanCategory;
        let total = olxp_trace::now_nanos().saturating_sub(commit_start);
        stage_nanos[SpanCategory::Commit.index()] = total;
        olxp_trace::record_span(
            SpanCategory::Commit,
            touched_shards.first().map_or(0, |&s| s as u32),
            trace_txn,
            commit_start,
        );
        let stages: Vec<(SpanCategory, u64)> = olxp_trace::ALL_CATEGORIES
            .iter()
            .map(|&c| (c, stage_nanos[c.index()]))
            .filter(|&(c, nanos)| nanos > 0 || c == SpanCategory::Commit)
            .collect();
        // Lock waits were already recorded per acquisition in `lock()`; they
        // appear in `stages` only so the slow-transaction record is complete.
        let hist_stages: Vec<(SpanCategory, u64)> = stages
            .iter()
            .copied()
            .filter(|&(c, _)| c != SpanCategory::Lock)
            .collect();
        self.db.metrics().record_stages(&hist_stages);
        let slow_log = self.db.slow_txn_log();
        if slow_log.is_enabled() && total >= slow_log.threshold_nanos() {
            slow_log.observe(crate::slowlog::SlowTxnRecord {
                txn_id: wal_txn.unwrap_or(trace_txn),
                total_nanos: total,
                shards: touched_shards.iter().map(|&s| s as u32).collect(),
                stages,
            });
        }
    }

    /// Roll back a transaction.
    pub fn abort(&self, mut handle: TxnHandle) {
        self.db.txn_manager().abort(&mut handle.txn);
        self.db.note_abort();
    }

    /// Run `body` inside a transaction with automatic retry of retryable
    /// failures (wait-die aborts, lock timeouts and write conflicts), the way
    /// the OLxPBench client re-submits aborted transactions.
    pub fn run_transaction<T>(
        &self,
        class: WorkClass,
        max_attempts: usize,
        mut body: impl FnMut(&Session, &mut TxnHandle) -> EngineResult<T>,
    ) -> EngineResult<T> {
        let mut last_err = None;
        for _ in 0..max_attempts.max(1) {
            let mut handle = self.begin(class);
            match body(self, &mut handle) {
                Ok(value) => match self.commit(handle) {
                    Ok(()) => return Ok(value),
                    Err(e) if e.is_retryable() => {
                        last_err = Some(e);
                        continue;
                    }
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() => {
                    self.abort(handle);
                    last_err = Some(e);
                    continue;
                }
                Err(e) => {
                    self.abort(handle);
                    return Err(e);
                }
            }
        }
        Err(last_err.unwrap_or(EngineError::Txn(TxnError::InvalidState {
            operation: "retry",
            state: "exhausted",
        })))
    }

    // ------------------------------------------------------------------
    // Transactional statements
    // ------------------------------------------------------------------

    /// Point read by primary key.
    pub fn read(
        &self,
        handle: &mut TxnHandle,
        table: &str,
        key: &Key,
    ) -> EngineResult<Option<Row>> {
        self.note_statement(handle);
        // Read-your-own-writes.
        if let Some(effect) = handle.txn.write_set().effective_row(table, key) {
            let row = effect.cloned();
            self.charge_point_read(handle, table, key, 1);
            return Ok(row);
        }
        let row_table = self.db.row_table_for(table, key)?;
        let read_ts = self.db.txn_manager().statement_read_ts(&handle.txn);
        let row = row_table.get(key, read_ts).map(|r| Row::clone(&r));
        self.charge_point_read(handle, table, key, 1);
        self.db.metrics().add_row_rows_scanned(1);
        Ok(row)
    }

    /// Equality lookup on arbitrary columns.
    ///
    /// If the columns form a prefix of the primary key or of a secondary
    /// index, the lookup is served by an index seek; otherwise it degenerates
    /// into a full scan — on the SSD-backed dual engine an *index full scan of
    /// random reads*, which is the paper's composite-primary-key bottleneck
    /// (§VI-C1).
    pub fn select_eq(
        &self,
        handle: &mut TxnHandle,
        table: &str,
        columns: &[&str],
        values: &[Value],
    ) -> EngineResult<Vec<Row>> {
        self.note_statement(handle);
        let partitions = self.db.row_partitions(table)?;
        let schema = Arc::clone(partitions[0].schema());
        let positions = schema.column_indices(columns)?;
        let read_ts = self.db.txn_manager().statement_read_ts(&handle.txn);
        let cost = &self.db.config().cost;
        let medium = self.db.config().medium();
        let lookup_key = Key::new(values.to_vec());

        // Primary-key prefix?
        let pk = schema.primary_key();
        if positions.len() <= pk.len() && pk[..positions.len()] == positions[..] {
            let mut rows = Vec::new();
            let examined = if positions.len() == pk.len() {
                // A complete primary key routes to exactly one shard.
                self.db.row_table_for(table, &lookup_key)?.prefix_scan(
                    &lookup_key,
                    read_ts,
                    |_, row| {
                        rows.push(Row::clone(row));
                    },
                )
            } else {
                // A strict prefix hashes differently from the full keys it
                // covers, so every shard's partition must be consulted.
                partitions
                    .iter()
                    .map(|part| {
                        part.prefix_scan(&lookup_key, read_ts, |_, row| {
                            rows.push(Row::clone(row));
                        })
                    })
                    .sum()
            };
            let nanos = cost.statement_overhead_ns
                + cost.point_read(medium)
                + cost.row_scan(medium, examined.saturating_sub(1) as u64);
            let node = self.db.cluster().partition_for(table, &lookup_key);
            self.db.metrics().add_row_rows_scanned(examined as u64);
            self.db.charge(node, handle.class, nanos);
            return Ok(rows);
        }

        // Secondary-index prefix?
        let index_pos = schema.indexes().iter().position(|idx| {
            positions.len() <= idx.columns.len() && idx.columns[..positions.len()] == positions[..]
        });
        if let Some(pos) = index_pos {
            let mut rows: Vec<Row> = Vec::new();
            let mut examined = 0;
            for part in &partitions {
                let (pairs, part_examined) = part.index_lookup(pos, &lookup_key, read_ts)?;
                rows.extend(pairs.into_iter().map(|(_, r)| Row::clone(&r)));
                examined += part_examined;
            }
            let nanos = cost.statement_overhead_ns
                + cost.point_read(medium)
                + cost.point_read(medium).saturating_mul(rows.len() as u64)
                + cost.row_scan(medium, examined as u64);
            let node = self.db.cluster().partition_for(table, &lookup_key);
            self.db.metrics().add_row_rows_scanned(examined as u64);
            self.db.charge(node, handle.class, nanos);
            return Ok(rows);
        }

        // No usable index: full scan of every shard's partition.
        let mut rows = Vec::new();
        let examined: usize = partitions
            .iter()
            .map(|part| {
                part.scan(read_ts, |_, row| {
                    let matches = positions
                        .iter()
                        .zip(values)
                        .all(|(&p, v)| row.get(p) == Some(v));
                    if matches {
                        rows.push(Row::clone(row));
                    }
                })
            })
            .sum();
        let per_row = match medium {
            // The paper: "MemSQL uses time-consuming full table scans in
            // memory, while TiDB uses index full scans that perform a random
            // read on the solid-state disk" (§VI-D).
            StorageMedium::Memory => cost.mem_scan_row_ns,
            StorageMedium::Ssd => cost.ssd_point_read_ns / 4,
        };
        let mut nanos = cost.statement_overhead_ns + per_row.saturating_mul(examined as u64);
        if medium == StorageMedium::Ssd {
            let node_id = self.db.cluster().next_storage_node();
            let pages = cost.pages_for_rows(examined as u64);
            let outcome = self
                .db
                .cluster()
                .node(node_id)
                .buffer_pool()
                .access(table, pages);
            self.db.metrics().add_buffer_misses(outcome.misses);
            nanos += cost.page_misses(outcome.misses);
            self.db.metrics().add_row_rows_scanned(examined as u64);
            self.db.charge(node_id, handle.class, nanos);
        } else {
            let node_id = self.db.cluster().next_storage_node();
            self.db.metrics().add_row_rows_scanned(examined as u64);
            self.db.charge(node_id, handle.class, nanos);
        }
        Ok(rows)
    }

    /// Range scan over a primary-key prefix (e.g. all order lines of an
    /// order).
    pub fn scan_prefix(
        &self,
        handle: &mut TxnHandle,
        table: &str,
        prefix: &Key,
    ) -> EngineResult<Vec<Row>> {
        self.note_statement(handle);
        let read_ts = self.db.txn_manager().statement_read_ts(&handle.txn);
        let mut rows = Vec::new();
        // A prefix hashes differently from the full keys under it, so the
        // scan consults every shard's partition.
        let examined: usize = self
            .db
            .row_partitions(table)?
            .iter()
            .map(|part| {
                part.prefix_scan(prefix, read_ts, |_, row| {
                    rows.push(Row::clone(row));
                })
            })
            .sum();
        let cost = &self.db.config().cost;
        let medium = self.db.config().medium();
        let nanos = cost.statement_overhead_ns
            + cost.point_read(medium)
            + cost.row_scan(medium, examined as u64);
        let node = self.db.cluster().partition_for(table, prefix);
        self.db.metrics().add_row_rows_scanned(examined as u64);
        self.db.charge(node, handle.class, nanos);
        Ok(rows)
    }

    /// Buffer an insert.
    pub fn insert(&self, handle: &mut TxnHandle, table: &str, row: Row) -> EngineResult<()> {
        self.note_statement(handle);
        let schema = Arc::clone(self.db.row_table(table)?.schema());
        schema.validate_row(&row)?;
        let key = schema.primary_key_of(&row);
        self.lock(handle, table, &key)?;
        let already_exists = match handle.txn.write_set().effective_row(table, &key) {
            Some(Some(_)) => true,
            Some(None) => false,
            None => {
                let read_ts = self.db.txn_manager().statement_read_ts(&handle.txn);
                self.db
                    .row_table_for(table, &key)?
                    .get(&key, read_ts)
                    .is_some()
            }
        };
        if already_exists {
            return Err(EngineError::Storage(StorageError::DuplicateKey {
                table: table.to_string(),
                key: key.to_string(),
            }));
        }
        handle.partitions.insert(self.db.partition_for(table, &key));
        handle.txn.write_set_mut().push(WriteOp::Insert {
            table: table.to_string(),
            key,
            row,
        });
        self.charge_write_statement(handle, table);
        Ok(())
    }

    /// Buffer an update of an existing row.
    pub fn update(
        &self,
        handle: &mut TxnHandle,
        table: &str,
        key: &Key,
        row: Row,
    ) -> EngineResult<()> {
        self.note_statement(handle);
        let row_table = self.db.row_table_for(table, key)?;
        row_table.schema().validate_row(&row)?;
        self.lock(handle, table, key)?;
        let exists = match handle.txn.write_set().effective_row(table, key) {
            Some(Some(_)) => true,
            Some(None) => false,
            None => {
                let read_ts = self.db.txn_manager().statement_read_ts(&handle.txn);
                row_table.get(key, read_ts).is_some()
            }
        };
        if !exists {
            return Err(EngineError::Storage(StorageError::KeyNotFound {
                table: table.to_string(),
                key: key.to_string(),
            }));
        }
        handle.partitions.insert(self.db.partition_for(table, key));
        handle.txn.write_set_mut().push(WriteOp::Update {
            table: table.to_string(),
            key: key.clone(),
            row,
        });
        self.charge_write_statement(handle, table);
        Ok(())
    }

    /// Buffer a delete of an existing row.
    pub fn delete(&self, handle: &mut TxnHandle, table: &str, key: &Key) -> EngineResult<()> {
        self.note_statement(handle);
        let row_table = self.db.row_table_for(table, key)?;
        self.lock(handle, table, key)?;
        let exists = match handle.txn.write_set().effective_row(table, key) {
            Some(Some(_)) => true,
            Some(None) => false,
            None => {
                let read_ts = self.db.txn_manager().statement_read_ts(&handle.txn);
                row_table.get(key, read_ts).is_some()
            }
        };
        if !exists {
            return Err(EngineError::Storage(StorageError::KeyNotFound {
                table: table.to_string(),
                key: key.to_string(),
            }));
        }
        handle.partitions.insert(self.db.partition_for(table, key));
        handle.txn.write_set_mut().push(WriteOp::Delete {
            table: table.to_string(),
            key: key.clone(),
        });
        self.charge_write_statement(handle, table);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Execute a real-time query *inside* a transaction (the hybrid
    /// transaction pattern).  Always runs on the row store at the
    /// transaction's snapshot; on the single engine the vertical-partitioning
    /// penalty applies.
    pub fn query_in_txn(&self, handle: &mut TxnHandle, plan: &Plan) -> EngineResult<QueryOutput> {
        self.note_statement(handle);
        let read_ts = self.db.txn_manager().statement_read_ts(&handle.txn);
        let source = ShardedRowSource::new(self.db.sharded_row_tables(), read_ts);
        let output = execute_with(plan, &source, self.exec_options())?;
        self.note_query_batches(&output.stats);
        let cost = &self.db.config().cost;
        let medium = self.db.config().medium();
        let mut nanos = self.row_plan_cost(&output.stats, medium);
        if self.db.is_single_engine() && handle.class == WorkClass::Hybrid {
            // Vertical partitioning turns the relationship query inside the
            // hybrid transaction into many joins (§VI-A1).
            nanos = (nanos as f64 * cost.vertical_partition_join_factor) as u64;
        }
        let node = self.db.cluster().next_storage_node();
        if medium == StorageMedium::Ssd {
            let pages = cost.pages_for_rows(output.stats.physical_rows());
            let table_name = plan
                .referenced_tables()
                .into_iter()
                .next()
                .unwrap_or_default();
            let outcome = self
                .db
                .cluster()
                .node(node)
                .buffer_pool()
                .access(&table_name, pages);
            self.db.metrics().add_buffer_misses(outcome.misses);
            nanos += cost.page_misses(outcome.misses);
        }
        self.db
            .metrics()
            .add_row_rows_scanned(output.stats.physical_rows());
        self.db.charge(node, handle.class, nanos);
        Ok(output)
    }

    /// Execute a standalone analytical query (no enclosing transaction).
    ///
    /// On the dual engine the query is usually served by the columnar replicas
    /// on the analytical nodes; a configurable fraction is served by the row
    /// store, and both the single-engine and shared-nothing archetypes always
    /// compete with OLTP for the same nodes.
    ///
    /// Column-store reads honour the configured [`FreshnessPolicy`]: the read
    /// first waits (or synchronously catches the replica up) until the bound
    /// holds, then records the freshness it actually observed in the output's
    /// [`ExecStats`] and the engine metrics.  A replica that cannot satisfy
    /// the bound within the configured timeout — or a replication step that
    /// fails outright — surfaces as an error instead of silently degrading to
    /// stale answers.
    pub fn analytical_query(&self, plan: &Plan) -> EngineResult<QueryOutput> {
        self.db.metrics().add_statement(WorkClass::Olap);
        let cost = &self.db.config().cost;
        let medium = self.db.config().medium();
        // Wall clock for the slow-query log, freshness wait included; only
        // sampled while the log is enabled so the common path pays a branch.
        let query_started = if self.db.slow_query_log().is_enabled() {
            Some(Instant::now())
        } else {
            None
        };
        match self.db.route_analytical() {
            AnalyticalRoute::ColumnStore => {
                let fresh_start = if olxp_trace::enabled() {
                    Some(olxp_trace::now_nanos())
                } else {
                    None
                };
                let freshness = self.ensure_freshness()?;
                if let Some(start) = fresh_start {
                    olxp_trace::record_span(olxp_trace::SpanCategory::FreshnessWait, 0, 0, start);
                    self.db.metrics().record_stage(
                        olxp_trace::SpanCategory::FreshnessWait,
                        olxp_trace::now_nanos().saturating_sub(start),
                    );
                }
                let tables = self.db.col_tables();
                let source = ColumnSource::new(&tables);
                let mut output = execute_with(plan, &source, self.exec_options())?;
                output.stats.freshness_lag_records = freshness.lag_records;
                output.stats.freshness_lag_ts = freshness.lag_commit_ts;
                self.db.metrics().record_freshness(freshness);
                self.note_query_batches(&output.stats);
                let mut nanos = cost.statement_overhead_ns
                    + cost.columnar_scan(output.stats.physical_rows())
                    + cost.join(output.stats.join_probes + output.stats.join_build_rows)
                    + cost.aggregate(output.stats.agg_input_rows)
                    + cost.sort(output.stats.sort_rows);
                let node = if self.db.config().has_dedicated_analytical_nodes() {
                    nanos += cost.network(
                        (self.db.cluster().analytical_nodes().len() as u64).saturating_sub(1),
                    );
                    self.db.cluster().next_analytical_node()
                } else {
                    nanos += cost.network(
                        (self.db.cluster().storage_nodes().len() as u64).saturating_sub(1),
                    );
                    self.db.cluster().next_storage_node()
                };
                self.db
                    .metrics()
                    .add_col_rows_scanned(output.stats.physical_rows());
                self.db.charge(node, WorkClass::Olap, nanos);
                self.note_slow_query(
                    query_started,
                    "column_store",
                    output.stats.freshness_lag_records,
                    &output.stats,
                );
                Ok(output)
            }
            AnalyticalRoute::RowStore => {
                let read_ts = self.db.txn_manager().oracle().read_ts();
                let source = ShardedRowSource::new(self.db.sharded_row_tables(), read_ts);
                let output = execute_with(plan, &source, self.exec_options())?;
                // The row store is the authoritative copy: zero staleness.
                self.db
                    .metrics()
                    .record_freshness(FreshnessSample::default());
                self.note_query_batches(&output.stats);
                let mut nanos = self.row_plan_cost(&output.stats, medium);
                nanos += cost
                    .network((self.db.cluster().storage_nodes().len() as u64).saturating_sub(1));
                let node = self.db.cluster().next_storage_node();
                if medium == StorageMedium::Ssd {
                    let pages = cost.pages_for_rows(output.stats.physical_rows());
                    let table_name = plan
                        .referenced_tables()
                        .into_iter()
                        .next()
                        .unwrap_or_default();
                    let outcome = self
                        .db
                        .cluster()
                        .node(node)
                        .buffer_pool()
                        .access(&table_name, pages);
                    self.db.metrics().add_buffer_misses(outcome.misses);
                    nanos += cost.page_misses(outcome.misses);
                }
                self.db
                    .metrics()
                    .add_row_rows_scanned(output.stats.physical_rows());
                self.db.charge(node, WorkClass::Olap, nanos);
                // The row store is the authoritative copy, so lag is zero.
                self.note_slow_query(query_started, "row_store", 0, &output.stats);
                Ok(output)
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// One consistent snapshot of the replication lag across every shard's
    /// pipeline: record lag sums, timestamp lag is the worst shard's.
    ///
    /// Per shard, the appended watermarks are read *before* the applied
    /// watermarks, and applied watermarks only grow, so the computed lag
    /// never exceeds the true lag at the moment the appended side was
    /// sampled.  A sample that satisfies a bound therefore proves the bound
    /// held.
    fn freshness_now(&self) -> FreshnessSample {
        let mut lag_records = 0;
        let mut lag_commit_ts = 0;
        for log in self.db.replication_logs() {
            let appended = log.last_appended_lsn();
            let appended_ts = log.last_appended_commit_ts();
            let applied = log.last_applied_lsn();
            let applied_ts = log.last_applied_commit_ts();
            lag_records += appended.saturating_sub(applied);
            lag_commit_ts = lag_commit_ts.max(appended_ts.saturating_sub(applied_ts));
        }
        FreshnessSample {
            lag_records,
            lag_commit_ts,
        }
    }

    /// Wait (or synchronously catch up) until the configured freshness bound
    /// holds, then return the freshness observed at that moment.
    ///
    /// With the background applier running the read parks on the log's
    /// applied watermark; without it, the read drives replication itself via
    /// [`HybridDatabase::replicate_step`].  Either way a replication failure
    /// or an unsatisfiable bound surfaces as an error — a broken replica no
    /// longer degrades silently to stale answers.
    fn ensure_freshness(&self) -> EngineResult<FreshnessSample> {
        let policy = self.db.config().freshness;
        let logs = self.db.replication_logs();
        let lag_of = |log: &Arc<olxp_storage::ReplicationLog>| {
            log.last_appended_lsn()
                .saturating_sub(log.last_applied_lsn())
        };

        if let FreshnessPolicy::Eventual = policy {
            // No bound to wait for; still drive replication forward when
            // nobody else does, and surface failures.
            if !self.db.has_background_applier() {
                self.db.replicate_step()?;
            }
            return Ok(self.freshness_now());
        }

        // Strict pins every shard's watermark at entry: everything committed
        // before the read started must be visible, later commits need not be.
        let strict_targets: Vec<u64> = logs.iter().map(|l| l.last_appended_lsn()).collect();
        let satisfied = || -> bool {
            match policy {
                FreshnessPolicy::Eventual => true,
                FreshnessPolicy::BoundedRecords(n) => logs.iter().map(&lag_of).sum::<u64>() <= n,
                FreshnessPolicy::BoundedNanos(bound) => logs.iter().all(|log| {
                    // The queue alone cannot prove the bound: the applier
                    // drains records in batches before applying them, and the
                    // age of those in-flight records is unknown.  The queue
                    // front's age counts only when every unapplied record is
                    // still queued (pending covers the whole lag); otherwise
                    // only a zero record lag proves the bound.  The queue is
                    // snapshotted *before* the lag watermarks: appends in
                    // between then inflate the lag, never the pending count,
                    // so an in-flight old record can only make the check
                    // fail, not pass.
                    let (pending, age) = log.queue_snapshot();
                    let lag = lag_of(log);
                    match age {
                        Some(age) => pending as u64 >= lag && age.as_nanos() as u64 <= bound,
                        None => lag == 0,
                    }
                }),
                FreshnessPolicy::Strict => logs
                    .iter()
                    .zip(&strict_targets)
                    .all(|(log, &target)| log.last_applied_lsn() >= target),
            }
        };

        let timeout = Duration::from_millis(self.db.config().freshness_timeout_ms);
        let started = Instant::now();
        let deadline = started + timeout;
        loop {
            if satisfied() {
                return Ok(self.freshness_now());
            }
            let now = Instant::now();
            if now >= deadline {
                let sample = self.freshness_now();
                self.db.metrics().add_freshness_timeout();
                return Err(EngineError::FreshnessTimeout {
                    policy: policy.describe(),
                    lag_records: sample.lag_records,
                    waited_ms: now.duration_since(started).as_millis() as u64,
                });
            }
            // Re-checked every iteration: the applier can be shut down while
            // a reader waits, in which case the reader must start driving
            // replication itself instead of parking on a watermark no thread
            // will ever advance.
            if self.db.has_background_applier() {
                // Park until an applied watermark reaches the LSN that
                // satisfies the bound (re-sampled each iteration: writers may
                // keep appending).  Record- and LSN-based bounds only change
                // when a watermark moves, so they can sleep until the
                // deadline; time-based bounds also change with wall time and
                // re-check every millisecond.
                let budget = deadline - now;
                match policy {
                    FreshnessPolicy::BoundedNanos(_) => {
                        let log = logs
                            .iter()
                            .max_by_key(|l| lag_of(l))
                            .expect("at least one shard");
                        log.wait_for_applied(
                            log.last_applied_lsn() + 1,
                            Duration::from_millis(1).min(budget),
                        );
                    }
                    FreshnessPolicy::BoundedRecords(n) => {
                        // The other shards' lag eats into the laggiest
                        // shard's allowance: the total stays within the
                        // bound only once this shard's lag shrinks to
                        // whatever the rest leaves over.
                        let log = logs
                            .iter()
                            .max_by_key(|l| lag_of(l))
                            .expect("at least one shard");
                        let others: u64 = logs.iter().map(&lag_of).sum::<u64>() - lag_of(log);
                        let allowance = n.saturating_sub(others);
                        log.wait_for_applied(
                            log.last_appended_lsn().saturating_sub(allowance),
                            budget,
                        );
                    }
                    _ => {
                        if let Some((i, log)) = logs
                            .iter()
                            .enumerate()
                            .find(|(i, l)| l.last_applied_lsn() < strict_targets[*i])
                        {
                            log.wait_for_applied(strict_targets[i], budget);
                        }
                    }
                }
            } else {
                self.db.replicate_step()?;
            }
        }
    }

    /// Executor options derived from the engine configuration: vectorized
    /// scans with the configured batch size and chunk-pruning mode.
    fn exec_options(&self) -> ExecOptions {
        ExecOptions::batched(self.db.config().batch_size).with_pruning(self.db.config().pruning)
    }

    /// Account the batches a query streamed through the vectorized executor
    /// and the chunk pruning its columnar scans performed (row-store scans
    /// report no chunk activity, so this is a no-op for them).
    fn note_query_batches(&self, stats: &ExecStats) {
        if stats.batches_scanned > 0 {
            self.db.metrics().add_query_batches(stats.batches_scanned);
        }
        self.db.metrics().add_chunk_pruning(
            stats.chunks_scanned,
            stats.chunks_pruned_zonemap,
            stats.chunks_pruned_filter,
            stats.rows_pruned_encoded,
        );
        // Operator timings only exist while tracing is enabled; one stage
        // histogram entry per operator node the plan executed.
        if !stats.operator_nanos.is_empty() {
            let durations: Vec<(olxp_trace::SpanCategory, u64)> = stats
                .operator_nanos
                .iter()
                .map(|&nanos| (olxp_trace::SpanCategory::QueryOperator, nanos))
                .collect();
            self.db.metrics().record_stages(&durations);
        }
    }

    /// Retain the query in the slow-query log when it crossed the configured
    /// threshold.  `started` is `Some` only while the log is enabled, so the
    /// common (disabled) path costs a single branch.
    fn note_slow_query(
        &self,
        started: Option<Instant>,
        route: &'static str,
        lag_records: u64,
        stats: &ExecStats,
    ) {
        let Some(started) = started else { return };
        self.db
            .slow_query_log()
            .observe(crate::slowlog::SlowQueryRecord {
                route,
                total_nanos: started.elapsed().as_nanos() as u64,
                lag_records,
                operators: stats.operator_nanos.clone(),
            });
    }

    fn note_statement(&self, handle: &mut TxnHandle) {
        handle.txn.note_statement();
        self.db.metrics().add_statement(handle.class);
    }

    fn lock(&self, handle: &mut TxnHandle, table: &str, key: &Key) -> EngineResult<()> {
        // Each shard has its own lock table; the key locks on the shard that
        // owns it, so unrelated shards never contend on a shared lock map.
        let shard = self.db.shard_for(table, key);
        let started = Instant::now();
        self.db
            .txn_manager()
            .lock_for_write_on(shard, &mut handle.txn, table, key)?;
        // The per-shard lock-wait counters stay on regardless of tracing (the
        // shards experiment reads them); the span and histogram are gated.
        let waited = started.elapsed().as_nanos() as u64;
        self.db.metrics().add_lock_wait(shard, waited);
        handle.lock_wait_nanos += waited;
        if olxp_trace::enabled() {
            olxp_trace::record_span(
                olxp_trace::SpanCategory::Lock,
                shard as u32,
                handle.txn.id(),
                olxp_trace::now_nanos().saturating_sub(waited),
            );
            self.db
                .metrics()
                .record_stage(olxp_trace::SpanCategory::Lock, waited);
        }
        Ok(())
    }

    fn charge_point_read(&self, handle: &TxnHandle, table: &str, key: &Key, rows: u64) {
        let cost = &self.db.config().cost;
        let medium = self.db.config().medium();
        let mut nanos =
            cost.statement_overhead_ns + cost.point_read(medium).saturating_mul(rows.max(1));
        let node = self.db.cluster().partition_for(table, key);
        if medium == StorageMedium::Ssd {
            let outcome = self.db.cluster().node(node).buffer_pool().access(table, 1);
            self.db.metrics().add_buffer_misses(outcome.misses);
            nanos += cost.page_misses(outcome.misses);
        }
        self.db.charge(node, handle.class, nanos);
    }

    fn charge_write_statement(&self, handle: &TxnHandle, table: &str) {
        // The write itself is charged at commit; a statement still costs the
        // per-statement overhead plus the index maintenance read.
        let cost = &self.db.config().cost;
        let medium = self.db.config().medium();
        let nanos = cost.statement_overhead_ns + cost.point_read(medium);
        let node = self
            .db
            .cluster()
            .partition_for(table, &Key::int(handle.txn.id() as i64));
        self.db.charge(node, handle.class, nanos);
    }

    fn row_plan_cost(&self, stats: &ExecStats, medium: StorageMedium) -> u64 {
        let cost = &self.db.config().cost;
        cost.statement_overhead_ns
            + cost.row_scan(medium, stats.physical_rows())
            + cost.join(stats.join_probes + stats.join_build_rows)
            + cost.aggregate(stats.agg_input_rows)
            + cost.sort(stats.sort_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use olxp_query::{col, lit, AggFunc, AggSpec, QueryBuilder};
    use olxp_storage::{ColumnDef, DataType, TableSchema};
    use olxp_trace::SpanCategory;

    fn test_db(mut config: EngineConfig) -> Arc<HybridDatabase> {
        config.time_scale = 0.0; // disable real delays in unit tests
        let db = HybridDatabase::new(config).unwrap();
        db.create_table(
            TableSchema::new(
                "ITEM",
                vec![
                    ColumnDef::new("i_id", DataType::Int, false),
                    ColumnDef::new("i_name", DataType::Str, false),
                    ColumnDef::new("i_price", DataType::Decimal, false),
                ],
                vec!["i_id"],
            )
            .unwrap()
            .with_index("idx_item_name", vec!["i_name"], false)
            .unwrap(),
        )
        .unwrap();
        for i in 0..200i64 {
            db.load_row(
                "ITEM",
                Row::new(vec![
                    Value::Int(i),
                    Value::Str(format!("item-{}", i % 10)),
                    Value::Decimal(100 + i),
                ]),
            )
            .unwrap();
        }
        db.finish_load().unwrap();
        db
    }

    #[test]
    fn insert_read_commit_roundtrip() {
        let db = test_db(EngineConfig::dual_engine());
        let session = db.session();
        let mut txn = session.begin(WorkClass::Oltp);
        session
            .insert(
                &mut txn,
                "ITEM",
                Row::new(vec![
                    Value::Int(1000),
                    Value::Str("new-item".into()),
                    Value::Decimal(999),
                ]),
            )
            .unwrap();
        // Read-your-own-writes before commit.
        let row = session.read(&mut txn, "ITEM", &Key::int(1000)).unwrap();
        assert!(row.is_some());
        session.commit(txn).unwrap();

        let mut txn2 = session.begin(WorkClass::Oltp);
        let row = session.read(&mut txn2, "ITEM", &Key::int(1000)).unwrap();
        assert_eq!(row.unwrap()[2], Value::Decimal(999));
        session.commit(txn2).unwrap();
        assert!(db.metrics_snapshot().commits >= 2);
    }

    #[test]
    fn duplicate_insert_is_rejected_at_statement_time() {
        let db = test_db(EngineConfig::dual_engine());
        let session = db.session();
        let mut txn = session.begin(WorkClass::Oltp);
        let err = session.insert(
            &mut txn,
            "ITEM",
            Row::new(vec![
                Value::Int(5),
                Value::Str("x".into()),
                Value::Decimal(1),
            ]),
        );
        assert!(matches!(
            err,
            Err(EngineError::Storage(StorageError::DuplicateKey { .. }))
        ));
        session.abort(txn);
    }

    #[test]
    fn update_then_analytical_query_sees_replicated_data() {
        let db = test_db(EngineConfig::dual_engine());
        let session = db.session();
        let mut txn = session.begin(WorkClass::Oltp);
        session
            .update(
                &mut txn,
                "ITEM",
                &Key::int(3),
                Row::new(vec![
                    Value::Int(3),
                    Value::Str("item-3".into()),
                    Value::Decimal(1),
                ]),
            )
            .unwrap();
        session.commit(txn).unwrap();
        // Drain replication so the column store has the update before the
        // routed queries (which alternate between both engines) observe it.
        db.finish_load().unwrap();

        let plan = QueryBuilder::scan("ITEM")
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Min, 2)])
            .build();
        for _ in 0..10 {
            let out = session.analytical_query(&plan).unwrap();
            let min_price = out.rows[0][0].as_f64();
            assert_eq!(min_price, Some(0.01), "replicated update is visible");
        }
    }

    #[test]
    fn select_eq_uses_index_or_scan() {
        let db = test_db(EngineConfig::dual_engine());
        let session = db.session();
        let mut txn = session.begin(WorkClass::Oltp);
        // Primary-key lookup.
        let rows = session
            .select_eq(&mut txn, "ITEM", &["i_id"], &[Value::Int(7)])
            .unwrap();
        assert_eq!(rows.len(), 1);
        // Secondary-index lookup.
        let rows = session
            .select_eq(
                &mut txn,
                "ITEM",
                &["i_name"],
                &[Value::Str("item-3".into())],
            )
            .unwrap();
        assert_eq!(rows.len(), 20);
        // Non-indexed lookup degenerates to a scan but still answers.
        let rows = session
            .select_eq(&mut txn, "ITEM", &["i_price"], &[Value::Decimal(150)])
            .unwrap();
        assert_eq!(rows.len(), 1);
        session.commit(txn).unwrap();
        assert!(db.metrics_snapshot().row_rows_scanned >= 200);
    }

    #[test]
    fn hybrid_query_in_txn_runs_on_row_store() {
        let db = test_db(EngineConfig::dual_engine());
        let session = db.session();
        let mut txn = session.begin(WorkClass::Hybrid);
        let plan = QueryBuilder::scan("ITEM")
            .filter(col(1).eq(lit("item-3")))
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Min, 2)])
            .build();
        let out = session.query_in_txn(&mut txn, &plan).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(out.stats.rows_scanned >= 200);
        session.commit(txn).unwrap();
        let snapshot = db.metrics_snapshot();
        assert!(snapshot.busy_nanos[2] > 0, "hybrid work is accounted");
    }

    #[test]
    fn single_engine_charges_vertical_partition_penalty_for_hybrid() {
        let single = test_db(EngineConfig::single_engine());
        let dual = test_db(EngineConfig::dual_engine());
        let plan = QueryBuilder::scan("ITEM")
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Min, 2)])
            .build();

        let run = |db: &Arc<HybridDatabase>| -> u64 {
            let session = db.session();
            let mut txn = session.begin(WorkClass::Hybrid);
            session.query_in_txn(&mut txn, &plan).unwrap();
            session.commit(txn).unwrap();
            db.metrics_snapshot().busy_nanos[2]
        };
        let single_busy = run(&single);
        let dual_busy = run(&dual);
        // The single engine's hybrid statement is penalised enough to overcome
        // its memory-speed scan advantage.
        assert!(
            single_busy > dual_busy,
            "single {single_busy} should exceed dual {dual_busy}"
        );
    }

    #[test]
    fn queries_stream_batches_per_configured_batch_size() {
        let db = test_db(EngineConfig::dual_engine().with_batch_size(64));
        let session = db.session();
        let plan = QueryBuilder::scan("ITEM").build();
        let mut txn = session.begin(WorkClass::Hybrid);
        let out = session.query_in_txn(&mut txn, &plan).unwrap();
        session.commit(txn).unwrap();
        assert_eq!(
            out.stats.batches_scanned, 4,
            "200 rows at batch_size 64 stream as 4 batches"
        );
        assert_eq!(
            out.stats.rows_materialized, out.stats.output_rows,
            "rows materialize only at the plan root"
        );
        assert!(db.metrics_snapshot().query_batches >= 4);
    }

    #[test]
    fn write_conflict_under_snapshot_isolation() {
        let db = test_db(EngineConfig::dual_engine());
        let session = db.session();
        // txn A snapshots, then txn B updates and commits, then A tries.
        let mut a = session.begin(WorkClass::Oltp);
        let _ = session.read(&mut a, "ITEM", &Key::int(9)).unwrap();
        let mut b = session.begin(WorkClass::Oltp);
        session
            .update(
                &mut b,
                "ITEM",
                &Key::int(9),
                Row::new(vec![
                    Value::Int(9),
                    Value::Str("b".into()),
                    Value::Decimal(1),
                ]),
            )
            .unwrap();
        session.commit(b).unwrap();
        let result = session.update(
            &mut a,
            "ITEM",
            &Key::int(9),
            Row::new(vec![
                Value::Int(9),
                Value::Str("a".into()),
                Value::Decimal(2),
            ]),
        );
        let commit_result = if result.is_ok() {
            session.commit(a)
        } else {
            session.abort(a);
            result.map(|_| ())
        };
        assert!(
            commit_result.is_err(),
            "first-committer-wins must reject the stale writer"
        );
        assert!(commit_result.unwrap_err().is_retryable());
    }

    #[test]
    fn run_transaction_retries_retryable_errors() {
        let db = test_db(EngineConfig::dual_engine());
        let session = db.session();
        let mut attempts = 0;
        let result: EngineResult<u64> = session.run_transaction(WorkClass::Oltp, 5, |s, txn| {
            attempts += 1;
            if attempts < 3 {
                return Err(EngineError::Txn(TxnError::Aborted {
                    table: "ITEM".into(),
                    key: "k".into(),
                }));
            }
            let row = s.read(txn, "ITEM", &Key::int(1))?.expect("row exists");
            Ok(row[0].as_int().unwrap() as u64)
        });
        assert_eq!(result.unwrap(), 1);
        assert_eq!(attempts, 3);
    }

    /// A config that always routes analytical queries to the column store so
    /// freshness enforcement is exercised deterministically.
    fn colstore_only(config: EngineConfig) -> EngineConfig {
        let mut config = config;
        config.analytical_rowstore_percent = 0;
        config
    }

    #[test]
    fn strict_freshness_sees_every_prior_commit_without_an_applier() {
        let config = colstore_only(EngineConfig::dual_engine())
            .with_background_applier(false)
            .with_freshness(FreshnessPolicy::Strict);
        let db = test_db(config);
        let session = db.session();
        let mut txn = session.begin(WorkClass::Oltp);
        session
            .update(
                &mut txn,
                "ITEM",
                &Key::int(3),
                Row::new(vec![
                    Value::Int(3),
                    Value::Str("item-3".into()),
                    Value::Decimal(1),
                ]),
            )
            .unwrap();
        session.commit(txn).unwrap();

        let plan = QueryBuilder::scan("ITEM")
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Min, 2)])
            .build();
        let out = session.analytical_query(&plan).unwrap();
        assert_eq!(out.rows[0][0].as_f64(), Some(0.01), "strict read is fresh");
        assert_eq!(out.stats.freshness_lag_records, 0);
        assert_eq!(out.stats.freshness_lag_ts, 0);
        assert!(db.metrics_snapshot().freshness_observations >= 1);
    }

    #[test]
    fn bounded_records_freshness_is_enforced_and_observed() {
        let config = colstore_only(EngineConfig::dual_engine())
            .with_background_applier(false)
            .with_freshness(FreshnessPolicy::BoundedRecords(5));
        let db = test_db(config);
        let session = db.session();
        // Stack up more lag than the bound allows.
        for i in 0..50i64 {
            let mut txn = session.begin(WorkClass::Oltp);
            session
                .insert(
                    &mut txn,
                    "ITEM",
                    Row::new(vec![
                        Value::Int(10_000 + i),
                        Value::Str("fresh".into()),
                        Value::Decimal(1),
                    ]),
                )
                .unwrap();
            session.commit(txn).unwrap();
        }
        let plan = QueryBuilder::scan("ITEM")
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Count, 0)])
            .build();
        let out = session.analytical_query(&plan).unwrap();
        assert!(
            out.stats.freshness_lag_records <= 5,
            "observed lag {} exceeds the bound",
            out.stats.freshness_lag_records
        );
    }

    #[test]
    fn freshness_timeout_surfaces_instead_of_serving_stale() {
        // No applier and a bound the (empty-stepped) pipeline cannot satisfy:
        // simulate a stalled pipeline by appending a record for a table with
        // no replica-side progress possible — here we shut the applier down
        // and jam the log with a poison record that every step fails on.
        let config = colstore_only(EngineConfig::dual_engine())
            .with_background_applier(false)
            .with_freshness(FreshnessPolicy::Strict)
            .with_freshness_timeout_ms(50);
        let db = test_db(config);
        let session = db.session();
        // Poison: an insert record without a row image fails to apply and is
        // retained at the head of the queue.
        db.replication_log().append(
            "ITEM",
            olxp_storage::MutationOp::Insert,
            Key::int(42_000),
            None,
            db.txn_manager().oracle().read_ts(),
        );
        let plan = QueryBuilder::scan("ITEM")
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Count, 0)])
            .build();
        let err = session.analytical_query(&plan);
        assert!(
            err.is_err(),
            "a broken replica must not serve stale answers"
        );
        assert!(db.metrics_snapshot().replication_errors >= 1);
    }

    #[test]
    fn freshness_timeout_is_counted_in_metrics() {
        // Background applier running but wedged on a poison record (an
        // insert without a row image never applies): a Strict reader parks
        // on the applied watermark until the deadline, and the timeout must
        // land in the freshness_timeouts SLO counter.
        let config = colstore_only(EngineConfig::dual_engine())
            .with_freshness(FreshnessPolicy::Strict)
            .with_freshness_timeout_ms(50);
        let db = test_db(config);
        let session = db.session();
        db.replication_log().append(
            "ITEM",
            olxp_storage::MutationOp::Insert,
            Key::int(43_000),
            None,
            db.txn_manager().oracle().read_ts(),
        );
        let plan = QueryBuilder::scan("ITEM")
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Count, 0)])
            .build();
        let err = session.analytical_query(&plan);
        assert!(
            matches!(err, Err(EngineError::FreshnessTimeout { .. })),
            "expected a freshness timeout, got {err:?}"
        );
        assert_eq!(db.metrics_snapshot().freshness_timeouts, 1);
    }

    #[test]
    fn slow_query_log_records_offenders_with_operator_breakdown() {
        // A large time_scale turns the modelled statement overhead (12µs
        // simulated) into a real multi-millisecond delay inside `charge`, so
        // every analytical query deterministically crosses the 1ms threshold
        // regardless of build profile.
        let mut config = EngineConfig::dual_engine()
            .with_tracing(true)
            .with_slow_query_threshold_ms(1);
        config.time_scale = 300.0;
        let db = HybridDatabase::new(config).unwrap();
        db.create_table(
            TableSchema::new(
                "ITEM",
                vec![
                    ColumnDef::new("i_id", DataType::Int, false),
                    ColumnDef::new("i_price", DataType::Decimal, false),
                ],
                vec!["i_id"],
            )
            .unwrap(),
        )
        .unwrap();
        for i in 0..50i64 {
            db.load_row("ITEM", Row::new(vec![Value::Int(i), Value::Decimal(i)]))
                .unwrap();
        }
        db.finish_load().unwrap();
        let session = db.session();
        let plan = QueryBuilder::scan("ITEM")
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Count, 0)])
            .build();
        session.analytical_query(&plan).unwrap();
        let records = db.slow_query_log().records();
        assert_eq!(records.len(), 1, "the query must cross the 1ms threshold");
        let record = &records[0];
        assert!(record.total_nanos >= 1_000_000);
        assert!(record.route == "column_store" || record.route == "row_store");
        assert!(
            !record.operators.is_empty(),
            "tracing was on, so operator timings are captured"
        );
        assert!(record.format().starts_with("slow query: "));
        assert!(record.format().contains("op0="));

        // Disabled by default: no threshold, no records.
        let quiet = test_db(EngineConfig::dual_engine());
        let quiet_session = quiet.session();
        quiet_session.analytical_query(&plan).unwrap();
        assert!(quiet.slow_query_log().is_empty());
    }

    #[test]
    fn bounded_nanos_accepts_a_drained_pipeline() {
        let config = colstore_only(EngineConfig::dual_engine())
            .with_freshness(FreshnessPolicy::BoundedNanos(50_000_000));
        let db = test_db(config);
        let session = db.session();
        let plan = QueryBuilder::scan("ITEM")
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Count, 0)])
            .build();
        let out = session.analytical_query(&plan).unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn missing_update_target_is_reported() {
        let db = test_db(EngineConfig::dual_engine());
        let session = db.session();
        let mut txn = session.begin(WorkClass::Oltp);
        let err = session.update(
            &mut txn,
            "ITEM",
            &Key::int(10_000),
            Row::new(vec![
                Value::Int(10_000),
                Value::Str("ghost".into()),
                Value::Decimal(0),
            ]),
        );
        assert!(matches!(
            err,
            Err(EngineError::Storage(StorageError::KeyNotFound { .. }))
        ));
        session.abort(txn);
    }

    // --- tracing integration ---------------------------------------------

    /// Serialises tests that flip the process-wide trace gate so parallel
    /// test threads cannot observe each other's gate state.
    fn trace_gate_lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn trace_temp_dir(tag: &str) -> String {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        std::env::temp_dir()
            .join(format!("olxp-trace-{tag}-{}-{nanos}", std::process::id()))
            .display()
            .to_string()
    }

    /// One loaded key per shard of a two-shard `test_db`, so a transaction
    /// touching both is guaranteed to take the cross-shard 2PC path.
    fn keys_on_both_shards() -> [i64; 2] {
        let mut picks = [None, None];
        for i in 0..200i64 {
            let shard = crate::database::shard_of("ITEM", &Key::int(i), 2);
            if picks[shard].is_none() {
                picks[shard] = Some(i);
            }
        }
        [picks[0].unwrap(), picks[1].unwrap()]
    }

    #[test]
    fn commit_emits_lifecycle_spans_when_tracing() {
        let _serial = trace_gate_lock();
        let dir = trace_temp_dir("lifecycle");
        let config = EngineConfig::dual_engine()
            .with_shards(2)
            .with_durability(crate::config::DurabilityConfig::at(&dir))
            .with_tracing(true);
        let db = test_db(config);
        let session = db.session();
        let _ = olxp_trace::take_events(); // drop load-time spans

        let [key_a, key_b] = keys_on_both_shards();
        let mut txn = session.begin(WorkClass::Oltp);
        for key in [key_a, key_b] {
            session
                .update(
                    &mut txn,
                    "ITEM",
                    &Key::int(key),
                    Row::new(vec![
                        Value::Int(key),
                        Value::Str("traced".into()),
                        Value::Decimal(1),
                    ]),
                )
                .unwrap();
        }
        session.commit(txn).unwrap();
        db.finish_load().unwrap(); // drain replication under the trace gate

        let plan = QueryBuilder::scan("ITEM")
            .aggregate(vec![], vec![AggSpec::new(AggFunc::Min, 2)])
            .build();
        session.analytical_query(&plan).unwrap();

        let events = olxp_trace::take_events();
        let seen: std::collections::HashSet<SpanCategory> =
            events.iter().map(|tagged| tagged.event.category).collect();
        for category in [
            SpanCategory::Lock,
            SpanCategory::WalAppend,
            SpanCategory::Fsync,
            SpanCategory::Install,
            SpanCategory::TwoPcPrepare,
            SpanCategory::TwoPcCommit,
            SpanCategory::Commit,
            SpanCategory::QueryOperator,
        ] {
            assert!(seen.contains(&category), "missing {category:?} span");
        }

        let snap = db.metrics_snapshot();
        assert!(!snap.stages.is_empty(), "stage histograms were recorded");
        assert!(snap.stages.get(SpanCategory::Commit).count() >= 1);
        assert_eq!(snap.per_shard.len(), 2);
        assert!(snap.per_shard.iter().all(|shard| shard.commits >= 1));
        assert!(snap.per_shard.iter().all(|shard| shard.wal_appends >= 1));

        olxp_trace::set_enabled(false);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracing_disabled_records_no_stage_histograms() {
        // With OLXP_TRACE=on every engine in the process (including ones
        // other tests open concurrently) raises the process-wide gate, so
        // the untraced scenario cannot be constructed — skip.
        if EngineConfig::dual_engine().tracing {
            return;
        }
        let _serial = trace_gate_lock();
        olxp_trace::set_enabled(false);
        let db = test_db(EngineConfig::dual_engine());
        let session = db.session();
        let mut txn = session.begin(WorkClass::Oltp);
        session
            .update(
                &mut txn,
                "ITEM",
                &Key::int(7),
                Row::new(vec![
                    Value::Int(7),
                    Value::Str("plain".into()),
                    Value::Decimal(2),
                ]),
            )
            .unwrap();
        session.commit(txn).unwrap();

        let snap = db.metrics_snapshot();
        assert!(snap.stages.is_empty(), "no stages recorded while disabled");
        // Lock-wait accounting stays on even with tracing off: the per-shard
        // scaling report depends on it.
        assert!(snap.lock_waits >= 1);
        assert_eq!(snap.per_shard.len(), db.shard_count());
        assert!(snap.per_shard.iter().map(|s| s.commits).sum::<u64>() >= 1);
    }

    #[test]
    fn slow_txn_log_wiring_respects_threshold_config() {
        let _serial = trace_gate_lock();
        let with_threshold = test_db(
            EngineConfig::dual_engine()
                .with_tracing(true)
                .with_slow_txn_threshold_ms(5),
        );
        assert!(with_threshold.slow_txn_log().is_enabled());
        assert_eq!(with_threshold.slow_txn_log().threshold_nanos(), 5_000_000);
        assert!(with_threshold.slow_txn_log().is_empty());

        let without = test_db(EngineConfig::dual_engine());
        assert!(!without.slow_txn_log().is_enabled());
        // Restore the gate the tracing database raised at open.
        olxp_trace::set_enabled(false);
    }
}

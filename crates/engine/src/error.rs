//! Engine errors.

use olxp_query::QueryError;
use olxp_storage::StorageError;
use olxp_txn::TxnError;
use std::fmt;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors returned by the engine's session API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Transaction-layer error (conflicts, aborts, invalid state).
    Txn(TxnError),
    /// Storage-layer error.
    Storage(StorageError),
    /// Query-layer error.
    Query(QueryError),
    /// The requested table is not registered with the engine.
    UnknownTable(String),
    /// Engine configuration is invalid.
    Config(String),
    /// The replication pipeline could not satisfy the configured freshness
    /// bound before the timeout (the replica is stalled or too far behind).
    FreshnessTimeout {
        /// The configured policy, human readable.
        policy: String,
        /// Replication lag in records when the wait gave up.
        lag_records: u64,
        /// How long the read waited, in milliseconds.
        waited_ms: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Txn(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Query(e) => write!(f, "{e}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::Config(msg) => write!(f, "invalid engine configuration: {msg}"),
            EngineError::FreshnessTimeout {
                policy,
                lag_records,
                waited_ms,
            } => write!(
                f,
                "freshness bound {policy} not met after {waited_ms}ms (replication lag: {lag_records} records)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TxnError> for EngineError {
    fn from(e: TxnError) -> Self {
        EngineError::Txn(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

impl EngineError {
    /// True when the enclosing transaction should simply be retried
    /// (wait-die aborts, lock timeouts and snapshot write conflicts).
    pub fn is_retryable(&self) -> bool {
        match self {
            EngineError::Txn(e) => e.is_retryable(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_txn_layer() {
        let retry: EngineError = TxnError::Aborted {
            table: "t".into(),
            key: "k".into(),
        }
        .into();
        assert!(retry.is_retryable());
        let not: EngineError = StorageError::TableNotFound("t".into()).into();
        assert!(!not.is_retryable());
    }

    #[test]
    fn conversions_preserve_messages() {
        let e: EngineError = QueryError::InvalidPlan("no aggregates".into()).into();
        assert!(e.to_string().contains("no aggregates"));
    }
}

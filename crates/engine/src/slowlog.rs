//! Slow-transaction and slow-query logs.
//!
//! While tracing is enabled and [`crate::EngineConfig::slow_txn_threshold_ms`]
//! is non-zero, every commit whose end-to-end latency crosses the threshold is
//! retained here with its full per-stage breakdown — the first place to look
//! when a latency percentile regresses, without replaying the whole trace.
//!
//! The analytical side mirrors it: with
//! [`crate::EngineConfig::slow_query_threshold_ms`] non-zero, every
//! standalone analytical query slower than the threshold (wall clock,
//! freshness wait included) is retained with its per-operator time breakdown
//! (operator timings need tracing; the total and the observed freshness lag
//! are recorded either way).  Both logs surface through the telemetry
//! `/snapshot` endpoint and drain into benchmark results.

use olxp_trace::SpanCategory;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cap on retained slow-transaction records; past it only a drop counter
/// advances so a pathological run cannot grow memory without bound.
const SLOW_LOG_CAP: usize = 1024;

/// One commit that crossed the slow-transaction threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowTxnRecord {
    /// WAL transaction id of the commit (0 for non-durable commits, which
    /// allocate no WAL id).
    pub txn_id: u64,
    /// End-to-end commit latency in nanoseconds.
    pub total_nanos: u64,
    /// Shards the transaction wrote to, ascending.
    pub shards: Vec<u32>,
    /// Per-stage durations in nanoseconds, in lifecycle order.  Stages the
    /// commit never entered (e.g. WAL stages on an in-memory engine) are
    /// omitted.
    pub stages: Vec<(SpanCategory, u64)>,
}

impl SlowTxnRecord {
    /// One-line human-readable rendering, e.g.
    /// `slow txn 42: 15.200ms on shards [0,2] (lock=1.000ms fsync=12.000ms)`.
    pub fn format(&self) -> String {
        let shards: Vec<String> = self.shards.iter().map(|s| s.to_string()).collect();
        let stages: Vec<String> = self
            .stages
            .iter()
            .filter(|&&(_, nanos)| nanos > 0)
            .map(|&(category, nanos)| format!("{}={}", category.as_str(), fmt_ms(nanos)))
            .collect();
        format!(
            "slow txn {}: {} on shards [{}] ({})",
            self.txn_id,
            fmt_ms(self.total_nanos),
            shards.join(","),
            stages.join(" ")
        )
    }
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.3}ms", nanos as f64 / 1e6)
}

/// Bounded store of [`SlowTxnRecord`]s with a fixed latency threshold.
#[derive(Debug, Default)]
pub struct SlowTxnLog {
    threshold_nanos: u64,
    records: Mutex<Vec<SlowTxnRecord>>,
    dropped: AtomicU64,
}

impl SlowTxnLog {
    /// A log that retains commits slower than `threshold_ms` milliseconds;
    /// `0` disables recording entirely.
    pub fn new(threshold_ms: u64) -> SlowTxnLog {
        SlowTxnLog {
            threshold_nanos: threshold_ms.saturating_mul(1_000_000),
            records: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// True when a non-zero threshold was configured.
    pub fn is_enabled(&self) -> bool {
        self.threshold_nanos > 0
    }

    /// The configured threshold in nanoseconds (0 = disabled).
    pub fn threshold_nanos(&self) -> u64 {
        self.threshold_nanos
    }

    /// Record a commit if it crossed the threshold.  Returns true when the
    /// commit qualified (even if the cap forced it to be dropped).
    pub fn observe(&self, record: SlowTxnRecord) -> bool {
        if self.threshold_nanos == 0 || record.total_nanos < self.threshold_nanos {
            return false;
        }
        let mut records = self.records.lock();
        if records.len() < SLOW_LOG_CAP {
            records.push(record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Copy of the retained records, oldest first.
    pub fn records(&self) -> Vec<SlowTxnRecord> {
        self.records.lock().clone()
    }

    /// Drain the retained records, oldest first.
    pub fn take(&self) -> Vec<SlowTxnRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Qualifying commits the cap forced to be dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// One analytical query that crossed the slow-query threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryRecord {
    /// Execution route the planner chose (`"column_store"` or `"row_store"`).
    pub route: &'static str,
    /// End-to-end query latency in nanoseconds, freshness wait included.
    pub total_nanos: u64,
    /// Replication lag (in records) observed when the query was admitted.
    pub lag_records: u64,
    /// Wall-clock nanoseconds per operator node, children before parents (a
    /// parent's duration includes its children's).  Empty unless tracing was
    /// enabled while the query ran.
    pub operators: Vec<u64>,
}

impl SlowQueryRecord {
    /// One-line human-readable rendering, e.g.
    /// `slow query: 12.000ms via column_store (lag 42 records) (op0=9.000ms op1=2.000ms)`.
    /// The operator list is omitted when tracing captured none.
    pub fn format(&self) -> String {
        let mut line = format!(
            "slow query: {} via {} (lag {} records)",
            fmt_ms(self.total_nanos),
            self.route,
            self.lag_records
        );
        let operators: Vec<String> = self
            .operators
            .iter()
            .enumerate()
            .filter(|&(_, &nanos)| nanos > 0)
            .map(|(index, &nanos)| format!("op{index}={}", fmt_ms(nanos)))
            .collect();
        if !operators.is_empty() {
            line.push_str(&format!(" ({})", operators.join(" ")));
        }
        line
    }
}

/// Bounded store of [`SlowQueryRecord`]s with a fixed latency threshold.
/// Shares the retention cap and drop accounting of [`SlowTxnLog`].
#[derive(Debug, Default)]
pub struct SlowQueryLog {
    threshold_nanos: u64,
    records: Mutex<Vec<SlowQueryRecord>>,
    dropped: AtomicU64,
}

impl SlowQueryLog {
    /// A log that retains analytical queries slower than `threshold_ms`
    /// milliseconds; `0` disables recording entirely.
    pub fn new(threshold_ms: u64) -> SlowQueryLog {
        SlowQueryLog {
            threshold_nanos: threshold_ms.saturating_mul(1_000_000),
            records: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// True when a non-zero threshold was configured.
    pub fn is_enabled(&self) -> bool {
        self.threshold_nanos > 0
    }

    /// The configured threshold in nanoseconds (0 = disabled).
    pub fn threshold_nanos(&self) -> u64 {
        self.threshold_nanos
    }

    /// Record a query if it crossed the threshold.  Returns true when the
    /// query qualified (even if the cap forced it to be dropped).
    pub fn observe(&self, record: SlowQueryRecord) -> bool {
        if self.threshold_nanos == 0 || record.total_nanos < self.threshold_nanos {
            return false;
        }
        let mut records = self.records.lock();
        if records.len() < SLOW_LOG_CAP {
            records.push(record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Copy of the retained records, oldest first.
    pub fn records(&self) -> Vec<SlowQueryRecord> {
        self.records.lock().clone()
    }

    /// Drain the retained records, oldest first.
    pub fn take(&self) -> Vec<SlowQueryRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Qualifying queries the cap forced to be dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(txn_id: u64, total_nanos: u64) -> SlowTxnRecord {
        SlowTxnRecord {
            txn_id,
            total_nanos,
            shards: vec![0, 2],
            stages: vec![
                (SpanCategory::Lock, 1_000_000),
                (SpanCategory::Fsync, 12_000_000),
                (SpanCategory::Install, 0),
            ],
        }
    }

    #[test]
    fn threshold_gates_recording() {
        let log = SlowTxnLog::new(10);
        assert!(log.is_enabled());
        assert!(!log.observe(record(1, 9_999_999)), "below threshold");
        assert!(log.observe(record(2, 10_000_000)), "at threshold");
        assert!(log.observe(record(3, 50_000_000)));
        assert_eq!(log.len(), 2);
        let drained = log.take();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].txn_id, 2);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn zero_threshold_disables_the_log() {
        let log = SlowTxnLog::new(0);
        assert!(!log.is_enabled());
        assert!(!log.observe(record(1, u64::MAX)));
        assert!(log.is_empty());
    }

    #[test]
    fn formatting_lists_nonzero_stages() {
        let rendered = record(42, 15_200_000).format();
        assert_eq!(
            rendered,
            "slow txn 42: 15.200ms on shards [0,2] (lock=1.000ms fsync=12.000ms)"
        );
        assert!(!rendered.contains("install"), "zero stages are omitted");
    }

    fn query(total_nanos: u64, operators: Vec<u64>) -> SlowQueryRecord {
        SlowQueryRecord {
            route: "column_store",
            total_nanos,
            lag_records: 42,
            operators,
        }
    }

    #[test]
    fn query_threshold_gates_recording() {
        let log = SlowQueryLog::new(10);
        assert!(log.is_enabled());
        assert_eq!(log.threshold_nanos(), 10_000_000);
        assert!(
            !log.observe(query(9_999_999, Vec::new())),
            "below threshold"
        );
        assert!(log.observe(query(10_000_000, Vec::new())), "at threshold");
        assert!(log.observe(query(50_000_000, vec![1, 2])));
        assert_eq!(log.len(), 2);
        assert_eq!(log.records().len(), 2, "records() copies without draining");
        let drained = log.take();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[1].operators, vec![1, 2]);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);

        let disabled = SlowQueryLog::new(0);
        assert!(!disabled.is_enabled());
        assert!(!disabled.observe(query(u64::MAX, Vec::new())));
    }

    #[test]
    fn query_formatting_lists_operators_when_traced() {
        let traced = query(12_000_000, vec![9_000_000, 2_000_000, 0]).format();
        assert_eq!(
            traced,
            "slow query: 12.000ms via column_store (lag 42 records) (op0=9.000ms op1=2.000ms)"
        );
        assert!(!traced.contains("op2"), "zero operators are omitted");

        let untraced = query(12_000_000, Vec::new()).format();
        assert_eq!(
            untraced,
            "slow query: 12.000ms via column_store (lag 42 records)"
        );
    }
}

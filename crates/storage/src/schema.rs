//! Table schemas, columns and index definitions.

use crate::error::{StorageError, StorageResult};
use crate::key::Key;
use crate::row::Row;
use serde::{Deserialize, Serialize};

pub use crate::value::DataType;

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// Create a column definition.
    pub fn new(name: impl Into<String>, dtype: DataType, nullable: bool) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable,
        }
    }
}

/// A secondary index definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name (unique within the table).
    pub name: String,
    /// Indexed column positions, in key order.
    pub columns: Vec<usize>,
    /// Whether the index enforces uniqueness.
    pub unique: bool,
}

/// A foreign-key style relationship between two tables.
///
/// OLxPBench ships each schema in two flavours — with and without foreign
/// constraints — because some HTAP systems (e.g. MemSQL) do not support foreign
/// keys.  The constraint is metadata used by the semantic-consistency validator
/// and the report generator; enforcement is optional.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKeyDef {
    /// Referencing column positions in this table.
    pub columns: Vec<usize>,
    /// Referenced table name.
    pub ref_table: String,
    /// Referenced column names in the referenced table.
    pub ref_columns: Vec<String>,
}

/// A table schema: named columns, a (possibly composite) primary key, secondary
/// indexes and optional foreign-key metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    name: String,
    columns: Vec<ColumnDef>,
    primary_key: Vec<usize>,
    indexes: Vec<IndexDef>,
    foreign_keys: Vec<ForeignKeyDef>,
}

impl TableSchema {
    /// Create a schema.  `primary_key` lists column names in key order.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        primary_key: Vec<&str>,
    ) -> StorageResult<TableSchema> {
        let name = name.into();
        let mut pk = Vec::with_capacity(primary_key.len());
        for key_col in primary_key {
            let idx = columns
                .iter()
                .position(|c| c.name == key_col)
                .ok_or_else(|| StorageError::ColumnNotFound {
                    table: name.clone(),
                    column: key_col.to_string(),
                })?;
            pk.push(idx);
        }
        Ok(TableSchema {
            name,
            columns,
            primary_key: pk,
            indexes: Vec::new(),
            foreign_keys: Vec::new(),
        })
    }

    /// Add a secondary index on the named columns (builder style).
    pub fn with_index(
        mut self,
        index_name: impl Into<String>,
        columns: Vec<&str>,
        unique: bool,
    ) -> StorageResult<TableSchema> {
        let index_name = index_name.into();
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            cols.push(self.column_index(c)?);
        }
        self.indexes.push(IndexDef {
            name: index_name,
            columns: cols,
            unique,
        });
        Ok(self)
    }

    /// Add a foreign-key relationship (builder style).
    pub fn with_foreign_key(
        mut self,
        columns: Vec<&str>,
        ref_table: impl Into<String>,
        ref_columns: Vec<&str>,
    ) -> StorageResult<TableSchema> {
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            cols.push(self.column_index(c)?);
        }
        self.foreign_keys.push(ForeignKeyDef {
            columns: cols,
            ref_table: ref_table.into(),
            ref_columns: ref_columns.iter().map(|s| s.to_string()).collect(),
        });
        Ok(self)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column declarations in storage order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Primary-key column positions in key order.
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// Secondary index definitions.
    pub fn indexes(&self) -> &[IndexDef] {
        &self.indexes
    }

    /// Foreign-key metadata.
    pub fn foreign_keys(&self) -> &[ForeignKeyDef] {
        &self.foreign_keys
    }

    /// Total number of indexes including the primary key.
    pub fn index_count(&self) -> usize {
        self.indexes.len() + 1
    }

    /// Resolve a column name to its position.
    pub fn column_index(&self, name: &str) -> StorageResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::ColumnNotFound {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Resolve several column names to positions.
    pub fn column_indices(&self, names: &[&str]) -> StorageResult<Vec<usize>> {
        names.iter().map(|n| self.column_index(n)).collect()
    }

    /// Look up an index definition by name.
    pub fn index(&self, name: &str) -> StorageResult<&IndexDef> {
        self.indexes
            .iter()
            .find(|i| i.name == name)
            .ok_or_else(|| StorageError::IndexNotFound {
                table: self.name.clone(),
                index: name.to_string(),
            })
    }

    /// Does any index (primary or secondary) have `column_positions` as a
    /// *prefix* of its key?  This is what decides whether a point lookup can be
    /// served by an index seek or degenerates into a full scan — the mechanism
    /// behind the paper's composite-primary-key finding (§VI-C).
    pub fn has_index_prefix(&self, column_positions: &[usize]) -> bool {
        let matches_prefix = |key_cols: &[usize]| {
            column_positions.len() <= key_cols.len()
                && key_cols[..column_positions.len()] == *column_positions
        };
        matches_prefix(&self.primary_key) || self.indexes.iter().any(|i| matches_prefix(&i.columns))
    }

    /// Extract the primary key of a row.
    pub fn primary_key_of(&self, row: &Row) -> Key {
        Key::new(self.primary_key.iter().map(|&i| row[i].clone()).collect())
    }

    /// Extract the key of the given secondary index from a row.
    pub fn index_key_of(&self, index: &IndexDef, row: &Row) -> Key {
        Key::new(index.columns.iter().map(|&i| row[i].clone()).collect())
    }

    /// Validate a row against this schema (arity, types, nullability).
    pub fn validate_row(&self, row: &Row) -> StorageResult<()> {
        row.validate(self)
    }

    /// Column names, in order (useful for reports).
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn subscriber_schema() -> TableSchema {
        TableSchema::new(
            "SUBSCRIBER",
            vec![
                ColumnDef::new("s_id", DataType::Int, false),
                ColumnDef::new("sf_type", DataType::Int, false),
                ColumnDef::new("sub_nbr", DataType::Str, false),
                ColumnDef::new("vlr_location", DataType::Int, true),
            ],
            vec!["s_id", "sf_type"],
        )
        .unwrap()
    }

    #[test]
    fn primary_key_resolution() {
        let s = subscriber_schema();
        assert_eq!(s.primary_key(), &[0, 1]);
        let row = Row::new(vec![
            Value::Int(42),
            Value::Int(1),
            Value::Str("0042".into()),
            Value::Int(7),
        ]);
        assert_eq!(s.primary_key_of(&row), Key::ints(&[42, 1]));
    }

    #[test]
    fn unknown_pk_column_is_error() {
        let err = TableSchema::new(
            "t",
            vec![ColumnDef::new("a", DataType::Int, false)],
            vec!["missing"],
        );
        assert!(matches!(err, Err(StorageError::ColumnNotFound { .. })));
    }

    #[test]
    fn index_builder_and_lookup() {
        let s = subscriber_schema()
            .with_index("idx_sub_nbr", vec!["sub_nbr"], true)
            .unwrap();
        assert_eq!(s.index_count(), 2);
        let idx = s.index("idx_sub_nbr").unwrap();
        assert_eq!(idx.columns, vec![2]);
        assert!(s.index("nope").is_err());
    }

    #[test]
    fn index_prefix_detection_models_composite_key_problem() {
        let s = subscriber_schema();
        // lookup on s_id alone: prefix of the composite PK -> indexable
        assert!(s.has_index_prefix(&[0]));
        // lookup on sub_nbr: not a prefix of any key -> full scan
        assert!(!s.has_index_prefix(&[2]));
        // after adding an index on sub_nbr the lookup becomes indexable
        let s = s.with_index("idx_sub_nbr", vec!["sub_nbr"], true).unwrap();
        assert!(s.has_index_prefix(&[2]));
    }

    #[test]
    fn foreign_keys_are_recorded() {
        let s = TableSchema::new(
            "CHECKING",
            vec![ColumnDef::new("custid", DataType::Int, false)],
            vec!["custid"],
        )
        .unwrap()
        .with_foreign_key(vec!["custid"], "ACCOUNT", vec!["custid"])
        .unwrap();
        assert_eq!(s.foreign_keys().len(), 1);
        assert_eq!(s.foreign_keys()[0].ref_table, "ACCOUNT");
    }

    #[test]
    fn column_indices_resolves_all_or_errors() {
        let s = subscriber_schema();
        assert_eq!(s.column_indices(&["s_id", "sub_nbr"]).unwrap(), vec![0, 2]);
        assert!(s.column_indices(&["s_id", "nope"]).is_err());
    }
}

//! Schema catalog.

use crate::error::{StorageError, StorageResult};
use crate::schema::TableSchema;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A named collection of table schemas.
///
/// The catalog keeps insertion order so reports (e.g. Table II of the paper)
/// list tables in the order the workload defined them.
#[derive(Debug, Default)]
pub struct Catalog {
    inner: RwLock<CatalogInner>,
}

#[derive(Debug, Default)]
struct CatalogInner {
    by_name: HashMap<String, Arc<TableSchema>>,
    order: Vec<String>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table schema.  Fails if the name already exists.
    pub fn create_table(&self, schema: TableSchema) -> StorageResult<Arc<TableSchema>> {
        let mut inner = self.inner.write();
        let name = schema.name().to_string();
        if inner.by_name.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        let schema = Arc::new(schema);
        inner.by_name.insert(name.clone(), Arc::clone(&schema));
        inner.order.push(name);
        Ok(schema)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> StorageResult<Arc<TableSchema>> {
        self.inner
            .read()
            .by_name
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// True when the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().by_name.contains_key(name)
    }

    /// All table schemas in creation order.
    pub fn tables(&self) -> Vec<Arc<TableSchema>> {
        let inner = self.inner.read();
        inner
            .order
            .iter()
            .filter_map(|name| inner.by_name.get(name).cloned())
            .collect()
    }

    /// Table names in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().order.clone()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.inner.read().order.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of columns across all tables (for Table II).
    pub fn total_columns(&self) -> usize {
        self.tables().iter().map(|t| t.column_count()).sum()
    }

    /// Total number of secondary indexes across all tables (for Table II).
    pub fn total_secondary_indexes(&self) -> usize {
        self.tables().iter().map(|t| t.indexes().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};

    fn schema(name: &str, cols: usize) -> TableSchema {
        let columns: Vec<ColumnDef> = (0..cols)
            .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int, i != 0))
            .collect();
        TableSchema::new(name, columns, vec!["c0"]).unwrap()
    }

    #[test]
    fn create_lookup_and_ordering() {
        let cat = Catalog::new();
        cat.create_table(schema("WAREHOUSE", 9)).unwrap();
        cat.create_table(schema("DISTRICT", 11)).unwrap();
        cat.create_table(schema("CUSTOMER", 21)).unwrap();
        assert_eq!(cat.len(), 3);
        assert!(cat.contains("DISTRICT"));
        assert_eq!(cat.table_names(), vec!["WAREHOUSE", "DISTRICT", "CUSTOMER"]);
        assert_eq!(cat.table("CUSTOMER").unwrap().column_count(), 21);
        assert_eq!(cat.total_columns(), 41);
    }

    #[test]
    fn duplicate_table_rejected() {
        let cat = Catalog::new();
        cat.create_table(schema("T", 2)).unwrap();
        assert!(matches!(
            cat.create_table(schema("T", 2)),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn missing_table_is_an_error() {
        let cat = Catalog::new();
        assert!(matches!(
            cat.table("NOPE"),
            Err(StorageError::TableNotFound(_))
        ));
    }
}

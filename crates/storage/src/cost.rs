//! Storage cost model.
//!
//! The paper's two systems differ most fundamentally in their storage medium:
//! "the enormous transactional performance gap between MemSQL and TiDB results
//! from the different storage mediums for data processing, i.e., memory for
//! MemSQL and solid-state disk for TiDB" (§VI-D).  Because this repository runs
//! both engines on the same host, the medium is modelled: every storage
//! operation is assigned a *service time* in nanoseconds, and the engine
//! converts accumulated service time into real elapsed time (scaled down so
//! experiments finish in seconds rather than the paper's 240-second runs).
//!
//! The default constants are calibrated so the relative magnitudes match the
//! paper: SSD point reads are ~50× more expensive than memory point reads,
//! columnar scans are an order of magnitude cheaper per row than row-store
//! scans, buffer-pool misses add a page-fetch penalty, and network round trips
//! dominate multi-node coordination.

use serde::{Deserialize, Serialize};

/// Where a table's data lives for the purposes of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageMedium {
    /// DRAM-resident (MemSQL-like row store).
    Memory,
    /// SSD-resident (TiKV-like row store).
    Ssd,
}

/// Service-time constants, all in nanoseconds of *simulated* work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Point read of one row from a memory-resident row store.
    pub mem_point_read_ns: u64,
    /// Point read of one row from an SSD-resident row store (random read).
    pub ssd_point_read_ns: u64,
    /// Per-row cost of a row-store scan when the rows are memory resident.
    pub mem_scan_row_ns: u64,
    /// Per-row cost of a row-store scan when the rows live on SSD.
    pub ssd_scan_row_ns: u64,
    /// Per-row cost of a columnar scan (vectorised, sequential).
    pub columnar_scan_row_ns: u64,
    /// Extra cost per buffer-pool page miss.
    pub page_miss_ns: u64,
    /// Cost of installing one row version (write).
    pub write_row_ns: u64,
    /// Extra cost of an SSD write (WAL fsync amortised).
    pub ssd_write_extra_ns: u64,
    /// Per-probe cost of a hash join.
    pub join_probe_ns: u64,
    /// Per-row cost of aggregation / grouping.
    pub agg_row_ns: u64,
    /// Per-row cost of sorting.
    pub sort_row_ns: u64,
    /// One network round trip between nodes of the cluster.
    pub network_rtt_ns: u64,
    /// Fixed per-statement overhead (parsing, planning, session).
    pub statement_overhead_ns: u64,
    /// Extra multiplier applied to join work performed by the single-engine
    /// (MemSQL-like) architecture for *hybrid* statements, modelling the
    /// vertical-partitioning join blow-up the paper reports (§VI-A1).
    pub vertical_partition_join_factor: f64,
    /// Rows per buffer-pool page (used to convert scan sizes into pages).
    pub rows_per_page: u64,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams {
            mem_point_read_ns: 900,
            ssd_point_read_ns: 45_000,
            mem_scan_row_ns: 220,
            ssd_scan_row_ns: 750,
            columnar_scan_row_ns: 28,
            page_miss_ns: 80_000,
            write_row_ns: 2_500,
            ssd_write_extra_ns: 22_000,
            join_probe_ns: 120,
            agg_row_ns: 45,
            sort_row_ns: 90,
            network_rtt_ns: 180_000,
            statement_overhead_ns: 12_000,
            vertical_partition_join_factor: 12.0,
            rows_per_page: 64,
        }
    }
}

impl CostParams {
    /// Cost of one primary-key point read.
    pub fn point_read(&self, medium: StorageMedium) -> u64 {
        match medium {
            StorageMedium::Memory => self.mem_point_read_ns,
            StorageMedium::Ssd => self.ssd_point_read_ns,
        }
    }

    /// Cost of scanning `rows` rows from the row store.
    pub fn row_scan(&self, medium: StorageMedium, rows: u64) -> u64 {
        let per_row = match medium {
            StorageMedium::Memory => self.mem_scan_row_ns,
            StorageMedium::Ssd => self.ssd_scan_row_ns,
        };
        per_row.saturating_mul(rows)
    }

    /// Cost of scanning `rows` rows from the column store.
    pub fn columnar_scan(&self, rows: u64) -> u64 {
        self.columnar_scan_row_ns.saturating_mul(rows)
    }

    /// Cost of installing one row version.
    pub fn write(&self, medium: StorageMedium) -> u64 {
        match medium {
            StorageMedium::Memory => self.write_row_ns,
            StorageMedium::Ssd => self.write_row_ns + self.ssd_write_extra_ns,
        }
    }

    /// Cost of `misses` buffer-pool page misses.
    pub fn page_misses(&self, misses: u64) -> u64 {
        self.page_miss_ns.saturating_mul(misses)
    }

    /// Cost of probing a hash join `probes` times.
    pub fn join(&self, probes: u64) -> u64 {
        self.join_probe_ns.saturating_mul(probes)
    }

    /// Cost of aggregating `rows` rows.
    pub fn aggregate(&self, rows: u64) -> u64 {
        self.agg_row_ns.saturating_mul(rows)
    }

    /// Cost of sorting `rows` rows (n log n is overkill for the model; the
    /// linearised constant is calibrated for the workload sizes involved).
    pub fn sort(&self, rows: u64) -> u64 {
        self.sort_row_ns.saturating_mul(rows)
    }

    /// Cost of `round_trips` network round trips.
    pub fn network(&self, round_trips: u64) -> u64 {
        self.network_rtt_ns.saturating_mul(round_trips)
    }

    /// Convert a number of scanned rows into buffer-pool pages.
    pub fn pages_for_rows(&self, rows: u64) -> u64 {
        rows.div_ceil(self.rows_per_page.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_preserve_relative_magnitudes_from_paper() {
        let c = CostParams::default();
        // SSD point reads are dramatically more expensive than memory reads
        // (the MemSQL vs TiDB OLTP gap).
        assert!(c.ssd_point_read_ns > 20 * c.mem_point_read_ns);
        // Columnar scans are much cheaper per row than row-store scans.
        assert!(c.mem_scan_row_ns > 5 * c.columnar_scan_row_ns);
        // Network dominates single-row operations (distributed txn penalty).
        assert!(c.network_rtt_ns > c.ssd_point_read_ns);
        // The vertical-partition join penalty is a multiplier > 1.
        assert!(c.vertical_partition_join_factor > 1.0);
    }

    #[test]
    fn cost_helpers_scale_linearly() {
        let c = CostParams::default();
        assert_eq!(
            c.row_scan(StorageMedium::Memory, 10),
            10 * c.mem_scan_row_ns
        );
        assert_eq!(c.columnar_scan(100), 100 * c.columnar_scan_row_ns);
        assert_eq!(c.join(7), 7 * c.join_probe_ns);
        assert_eq!(c.network(3), 3 * c.network_rtt_ns);
    }

    #[test]
    fn writes_are_more_expensive_on_ssd() {
        let c = CostParams::default();
        assert!(c.write(StorageMedium::Ssd) > c.write(StorageMedium::Memory));
    }

    #[test]
    fn pages_for_rows_rounds_up() {
        let c = CostParams::default();
        assert_eq!(c.pages_for_rows(0), 0);
        assert_eq!(c.pages_for_rows(1), 1);
        assert_eq!(c.pages_for_rows(c.rows_per_page), 1);
        assert_eq!(c.pages_for_rows(c.rows_per_page + 1), 2);
    }

    #[test]
    fn params_are_copy_and_comparable() {
        let a = CostParams::default();
        let b = a;
        assert_eq!(a, b);
    }
}

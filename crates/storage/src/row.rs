//! Rows: ordered collections of [`Value`]s matching a table schema.

use crate::schema::TableSchema;
use crate::value::Value;
use crate::{StorageError, StorageResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A single table row.
///
/// A row stores its values in schema column order.  Rows are cheap to clone for
/// small tuples; large rows are normally passed around behind `Arc<Row>` by the
/// row store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Create a row from a vector of values.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// Create an empty row with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Row {
        Row {
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of columns in the row.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True when the row holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Append a value (builder style).
    pub fn push(&mut self, value: Value) {
        self.values.push(value);
    }

    /// Borrow the value at `idx`, or `None` if out of bounds.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Replace the value at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds (programming error in a workload).
    pub fn set(&mut self, idx: usize, value: Value) {
        self.values[idx] = value;
    }

    /// Borrow all values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the row and return its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Project the row onto the given column indices (cloning the values).
    pub fn project(&self, indices: &[usize]) -> Row {
        let mut values = Vec::with_capacity(indices.len());
        for &i in indices {
            values.push(self.values[i].clone());
        }
        Row::new(values)
    }

    /// Validate the row against a schema: arity, type compatibility and
    /// nullability.
    pub fn validate(&self, schema: &TableSchema) -> StorageResult<()> {
        if self.arity() != schema.columns().len() {
            return Err(StorageError::ArityMismatch {
                expected: schema.columns().len(),
                got: self.arity(),
            });
        }
        for (value, col) in self.values.iter().zip(schema.columns()) {
            if value.is_null() {
                if !col.nullable {
                    return Err(StorageError::NullViolation {
                        column: col.name.clone(),
                    });
                }
                continue;
            }
            if !value.compatible_with(col.dtype) {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: match col.dtype {
                        crate::schema::DataType::Int => "Int",
                        crate::schema::DataType::Decimal => "Decimal",
                        crate::schema::DataType::Float => "Float",
                        crate::schema::DataType::Str => "Str",
                        crate::schema::DataType::Bool => "Bool",
                        crate::schema::DataType::Timestamp => "Timestamp",
                    },
                    got: value.type_name(),
                });
            }
        }
        Ok(())
    }

    /// Approximate in-memory size of this row in bytes, used by the buffer-pool
    /// model to convert rows into pages.
    pub fn approx_bytes(&self) -> usize {
        self.values
            .iter()
            .map(|v| match v {
                Value::Str(s) => 24 + s.len(),
                _ => 16,
            })
            .sum()
    }
}

impl Index<usize> for Row {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        &self.values[index]
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro for building rows in workloads and tests:
/// `row![1, "abc", Value::Decimal(100)]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, TableSchema};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int, false),
                ColumnDef::new("name", DataType::Str, true),
                ColumnDef::new("price", DataType::Decimal, false),
            ],
            vec!["id"],
        )
        .unwrap()
    }

    #[test]
    fn row_macro_builds_values() {
        let r = row![1, "widget", 2.5];
        assert_eq!(r.arity(), 3);
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r[1], Value::Str("widget".into()));
        assert_eq!(r[2], Value::Float(2.5));
    }

    #[test]
    fn validate_accepts_conforming_row() {
        let r = Row::new(vec![Value::Int(1), Value::Null, Value::Decimal(199)]);
        assert!(r.validate(&schema()).is_ok());
    }

    #[test]
    fn validate_rejects_arity_mismatch() {
        let r = Row::new(vec![Value::Int(1)]);
        assert!(matches!(
            r.validate(&schema()),
            Err(StorageError::ArityMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn validate_rejects_null_violation() {
        let r = Row::new(vec![Value::Null, Value::Null, Value::Decimal(1)]);
        assert!(matches!(
            r.validate(&schema()),
            Err(StorageError::NullViolation { .. })
        ));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let r = Row::new(vec![Value::Str("x".into()), Value::Null, Value::Decimal(1)]);
        assert!(matches!(
            r.validate(&schema()),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn project_selects_columns_in_order() {
        let r = row![1, "widget", 3];
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let small = row![1];
        let big = row![1, "a very long string value for sizing"];
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}

//! Multi-version row store.
//!
//! [`RowTable`] is the OLTP-facing storage structure: a B-tree keyed by the
//! primary key whose leaves hold *version chains*.  Each committed write
//! appends a new version stamped with its commit timestamp; readers select the
//! version visible at their snapshot timestamp.  Secondary indexes map index
//! keys to the primary keys of rows that (at some point) carried that key; the
//! visible row is always re-checked against the index key so stale entries are
//! filtered out rather than returned.
//!
//! This mirrors the row engines of the systems the paper evaluates (TiKV for
//! TiDB, the in-memory row store of MemSQL) closely enough for the benchmark's
//! purposes: point reads and short range scans are cheap, full scans touch
//! every live key, and long-running scans keep the table's shared latch busy.

use crate::batch::{BatchBuilder, ColumnBatch};
use crate::error::{StorageError, StorageResult};
use crate::key::Key;
use crate::row::Row;
use crate::schema::TableSchema;
use crate::{Timestamp, TS_MAX};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result of an index lookup: the matching `(primary key, row)` pairs plus
/// the number of index entries examined to produce them.
pub type IndexLookup = (Vec<(Key, Arc<Row>)>, usize);

/// Direction of a range scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanDirection {
    /// Ascending key order.
    Forward,
    /// Descending key order.
    Reverse,
}

/// One version of a row.  `row == None` is a tombstone (deleted).
#[derive(Debug, Clone)]
struct Version {
    begin: Timestamp,
    end: Timestamp,
    row: Option<Arc<Row>>,
}

impl Version {
    fn visible_at(&self, read_ts: Timestamp) -> bool {
        self.begin <= read_ts && (self.end == TS_MAX || read_ts < self.end)
    }
}

/// Version chain, oldest first.
type VersionChain = Vec<Version>;

/// Counters exposed by a [`RowTable`], used by the engine metrics and the
/// experiment harness.
#[derive(Debug, Default)]
pub struct RowTableStats {
    point_reads: AtomicU64,
    range_reads: AtomicU64,
    full_scans: AtomicU64,
    rows_scanned: AtomicU64,
    writes: AtomicU64,
}

/// A point-in-time copy of [`RowTableStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowTableStatsSnapshot {
    /// Number of primary-key point reads served.
    pub point_reads: u64,
    /// Number of range/prefix scans served.
    pub range_reads: u64,
    /// Number of full table scans served.
    pub full_scans: u64,
    /// Total rows examined by scans.
    pub rows_scanned: u64,
    /// Number of write operations (insert/update/delete versions installed).
    pub writes: u64,
}

impl RowTableStats {
    fn snapshot(&self) -> RowTableStatsSnapshot {
        RowTableStatsSnapshot {
            point_reads: self.point_reads.load(Ordering::Relaxed),
            range_reads: self.range_reads.load(Ordering::Relaxed),
            full_scans: self.full_scans.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }
}

/// A multi-version table stored in row format.
pub struct RowTable {
    schema: Arc<TableSchema>,
    data: RwLock<BTreeMap<Key, VersionChain>>,
    /// One (index key -> set of primary keys) map per secondary index, in the
    /// same order as `schema.indexes()`.
    secondary: Vec<RwLock<BTreeMap<Key, BTreeSet<Key>>>>,
    stats: RowTableStats,
}

impl RowTable {
    /// Create an empty table for the given schema.
    pub fn new(schema: Arc<TableSchema>) -> RowTable {
        let secondary = schema
            .indexes()
            .iter()
            .map(|_| RwLock::new(BTreeMap::new()))
            .collect();
        RowTable {
            schema,
            data: RwLock::new(BTreeMap::new()),
            secondary,
            stats: RowTableStats::default(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Arc<TableSchema> {
        &self.schema
    }

    /// Number of keys (live or dead) in the primary B-tree.
    pub fn key_count(&self) -> usize {
        self.data.read().len()
    }

    /// Number of rows visible at `read_ts`.
    pub fn live_row_count(&self, read_ts: Timestamp) -> usize {
        self.data
            .read()
            .values()
            .filter(|chain| Self::visible(chain, read_ts).is_some())
            .count()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RowTableStatsSnapshot {
        self.stats.snapshot()
    }

    fn visible(chain: &VersionChain, read_ts: Timestamp) -> Option<Arc<Row>> {
        chain
            .iter()
            .rev()
            .find(|v| v.visible_at(read_ts))
            .and_then(|v| v.row.clone())
    }

    /// Insert a new row committed at `commit_ts`.
    ///
    /// Fails with [`StorageError::DuplicateKey`] when a row with the same
    /// primary key is already visible at `commit_ts`.
    pub fn insert(&self, row: Row, commit_ts: Timestamp) -> StorageResult<Key> {
        self.schema.validate_row(&row)?;
        let pk = self.schema.primary_key_of(&row);
        let row = Arc::new(row);
        {
            let mut data = self.data.write();
            let chain = data.entry(pk.clone()).or_default();
            if Self::visible(chain, commit_ts).is_some() {
                return Err(StorageError::DuplicateKey {
                    table: self.schema.name().to_string(),
                    key: pk.to_string(),
                });
            }
            chain.push(Version {
                begin: commit_ts,
                end: TS_MAX,
                row: Some(Arc::clone(&row)),
            });
        }
        self.index_row(&pk, &row);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(pk)
    }

    /// Install a new version of an existing row committed at `commit_ts`.
    pub fn update(&self, pk: &Key, new_row: Row, commit_ts: Timestamp) -> StorageResult<()> {
        self.schema.validate_row(&new_row)?;
        let new_pk = self.schema.primary_key_of(&new_row);
        if &new_pk != pk {
            return Err(StorageError::Internal(format!(
                "update may not change the primary key ({pk} -> {new_pk})"
            )));
        }
        let new_row = Arc::new(new_row);
        {
            let mut data = self.data.write();
            let chain = data
                .get_mut(pk)
                .filter(|chain| Self::visible(chain, commit_ts).is_some())
                .ok_or_else(|| StorageError::KeyNotFound {
                    table: self.schema.name().to_string(),
                    key: pk.to_string(),
                })?;
            if let Some(last) = chain.last_mut() {
                if last.end == TS_MAX {
                    last.end = commit_ts;
                }
            }
            chain.push(Version {
                begin: commit_ts,
                end: TS_MAX,
                row: Some(Arc::clone(&new_row)),
            });
        }
        self.index_row(pk, &new_row);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Install a tombstone for the row committed at `commit_ts`.
    pub fn delete(&self, pk: &Key, commit_ts: Timestamp) -> StorageResult<()> {
        let mut data = self.data.write();
        let chain = data
            .get_mut(pk)
            .filter(|chain| Self::visible(chain, commit_ts).is_some())
            .ok_or_else(|| StorageError::KeyNotFound {
                table: self.schema.name().to_string(),
                key: pk.to_string(),
            })?;
        if let Some(last) = chain.last_mut() {
            if last.end == TS_MAX {
                last.end = commit_ts;
            }
        }
        chain.push(Version {
            begin: commit_ts,
            end: TS_MAX,
            row: None,
        });
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Point read by primary key at snapshot `read_ts`.
    pub fn get(&self, pk: &Key, read_ts: Timestamp) -> Option<Arc<Row>> {
        self.stats.point_reads.fetch_add(1, Ordering::Relaxed);
        let data = self.data.read();
        data.get(pk).and_then(|chain| Self::visible(chain, read_ts))
    }

    /// The newest committed row for a key regardless of snapshot (what a
    /// read-committed statement sees).
    pub fn get_latest(&self, pk: &Key) -> Option<Arc<Row>> {
        self.get(pk, TS_MAX)
    }

    /// Commit timestamp of the newest version (live or tombstone) of `pk`, or
    /// `None` if the key has never existed.  Used by the engine for
    /// snapshot-isolation write-conflict validation ("first committer wins").
    pub fn latest_commit_ts(&self, pk: &Key) -> Option<Timestamp> {
        let data = self.data.read();
        data.get(pk).and_then(|chain| chain.last().map(|v| v.begin))
    }

    /// Scan every row visible at `read_ts`, invoking `f` for each.  Returns the
    /// number of keys examined (the physical scan size, which drives the cost
    /// model), which can exceed the number of visible rows.
    pub fn scan<F>(&self, read_ts: Timestamp, mut f: F) -> usize
    where
        F: FnMut(&Key, &Arc<Row>),
    {
        self.stats.full_scans.fetch_add(1, Ordering::Relaxed);
        let data = self.data.read();
        let mut examined = 0usize;
        for (key, chain) in data.iter() {
            examined += 1;
            if let Some(row) = Self::visible(chain, read_ts) {
                f(key, &row);
            }
        }
        self.stats
            .rows_scanned
            .fetch_add(examined as u64, Ordering::Relaxed);
        examined
    }

    /// Vectorized full scan: pack every row visible at `read_ts` into owned
    /// [`ColumnBatch`]es of up to `batch_size` rows and hand each batch to
    /// `f`.  Returns the number of keys examined (which can exceed the rows
    /// batched, since keys whose version chain has no visible row still cost
    /// a chain walk).
    ///
    /// The MVCC row store cannot hand out borrowed column slices the way the
    /// column store does — versions live in per-key chains — so this adapter
    /// transposes visible rows into column vectors, giving downstream
    /// operators one uniform batch interface over both stores.
    pub fn scan_batches<F>(&self, read_ts: Timestamp, batch_size: usize, mut f: F) -> usize
    where
        F: FnMut(ColumnBatch<'static>),
    {
        let mut builder = BatchBuilder::new(self.schema.column_count(), batch_size);
        let examined = self.scan(read_ts, |_, row| {
            builder.push_row(row.values());
            if builder.is_full() {
                f(builder.finish());
            }
        });
        if !builder.is_empty() {
            f(builder.finish());
        }
        examined
    }

    /// Range scan over primary keys in `[low, high)` visible at `read_ts`.
    pub fn range<F>(
        &self,
        low: Bound<&Key>,
        high: Bound<&Key>,
        read_ts: Timestamp,
        direction: ScanDirection,
        mut f: F,
    ) -> usize
    where
        F: FnMut(&Key, &Arc<Row>),
    {
        self.stats.range_reads.fetch_add(1, Ordering::Relaxed);
        let data = self.data.read();
        let iter = data.range::<Key, _>((low, high));
        let mut examined = 0usize;
        let mut visit = |key: &Key, chain: &VersionChain| {
            examined += 1;
            if let Some(row) = Self::visible(chain, read_ts) {
                f(key, &row);
            }
        };
        match direction {
            ScanDirection::Forward => {
                for (key, chain) in iter {
                    visit(key, chain);
                }
            }
            ScanDirection::Reverse => {
                for (key, chain) in iter.rev() {
                    visit(key, chain);
                }
            }
        }
        self.stats
            .rows_scanned
            .fetch_add(examined as u64, Ordering::Relaxed);
        examined
    }

    /// Prefix scan: all rows whose primary key starts with `prefix`.
    pub fn prefix_scan<F>(&self, prefix: &Key, read_ts: Timestamp, f: F) -> usize
    where
        F: FnMut(&Key, &Arc<Row>),
    {
        match prefix.prefix_upper_bound() {
            Some(upper) => self.range(
                Bound::Included(prefix),
                Bound::Excluded(&upper),
                read_ts,
                ScanDirection::Forward,
                f,
            ),
            None => self.range(
                Bound::Included(prefix),
                Bound::Unbounded,
                read_ts,
                ScanDirection::Forward,
                f,
            ),
        }
    }

    /// Equality lookup through the secondary index at position `index_pos`
    /// (into `schema.indexes()`).  `key` may be a prefix of the index key.
    ///
    /// Returns `(primary key, row)` pairs visible at `read_ts` whose *current*
    /// value still matches the index key, plus the number of index entries
    /// examined.
    pub fn index_lookup(
        &self,
        index_pos: usize,
        key: &Key,
        read_ts: Timestamp,
    ) -> StorageResult<IndexLookup> {
        let index_def =
            self.schema
                .indexes()
                .get(index_pos)
                .ok_or_else(|| StorageError::IndexNotFound {
                    table: self.schema.name().to_string(),
                    index: format!("#{index_pos}"),
                })?;
        let index = self.secondary[index_pos].read();
        let mut out = Vec::new();
        let mut examined = 0usize;
        let upper = key.prefix_upper_bound();
        let range: Box<dyn Iterator<Item = (&Key, &BTreeSet<Key>)>> = match &upper {
            Some(u) => Box::new(index.range::<Key, _>((Bound::Included(key), Bound::Excluded(u)))),
            None => Box::new(index.range::<Key, _>((Bound::Included(key), Bound::Unbounded))),
        };
        let data = self.data.read();
        for (_ikey, pks) in range {
            for pk in pks {
                examined += 1;
                if let Some(chain) = data.get(pk) {
                    if let Some(row) = Self::visible(chain, read_ts) {
                        // Filter out stale index entries: the visible row must
                        // still match the requested index-key prefix.
                        let current = self.schema.index_key_of(index_def, &row);
                        if current.starts_with(key) {
                            out.push((pk.clone(), row));
                        }
                    }
                }
            }
        }
        self.stats
            .rows_scanned
            .fetch_add(examined as u64, Ordering::Relaxed);
        self.stats.range_reads.fetch_add(1, Ordering::Relaxed);
        Ok((out, examined.max(1)))
    }

    /// Remove versions that ended before `horizon_ts` (no snapshot can see
    /// them any more).  Returns the number of versions dropped.
    pub fn gc(&self, horizon_ts: Timestamp) -> usize {
        let mut data = self.data.write();
        let mut dropped = 0usize;
        data.retain(|_, chain| {
            let before = chain.len();
            // Keep every version still visible to some snapshot >= horizon.
            chain.retain(|v| v.end == TS_MAX || v.end > horizon_ts);
            dropped += before - chain.len();
            !chain.is_empty()
        });
        dropped
    }

    fn index_row(&self, pk: &Key, row: &Arc<Row>) {
        for (pos, index_def) in self.schema.indexes().iter().enumerate() {
            let ikey = self.schema.index_key_of(index_def, row);
            let mut index = self.secondary[pos].write();
            index.entry(ikey).or_default().insert(pk.clone());
        }
    }
}

impl std::fmt::Debug for RowTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowTable")
            .field("table", &self.schema.name())
            .field("keys", &self.key_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};
    use crate::value::Value;

    fn item_table() -> RowTable {
        let schema = TableSchema::new(
            "ITEM",
            vec![
                ColumnDef::new("i_id", DataType::Int, false),
                ColumnDef::new("i_name", DataType::Str, false),
                ColumnDef::new("i_price", DataType::Decimal, false),
            ],
            vec!["i_id"],
        )
        .unwrap()
        .with_index("idx_name", vec!["i_name"], false)
        .unwrap();
        RowTable::new(Arc::new(schema))
    }

    fn item(id: i64, name: &str, price: i64) -> Row {
        Row::new(vec![
            Value::Int(id),
            Value::Str(name.into()),
            Value::Decimal(price),
        ])
    }

    #[test]
    fn insert_and_point_read() {
        let t = item_table();
        t.insert(item(1, "bolt", 150), 10).unwrap();
        assert!(
            t.get(&Key::int(1), 9).is_none(),
            "not visible before commit"
        );
        let row = t.get(&Key::int(1), 10).unwrap();
        assert_eq!(row[1], Value::Str("bolt".into()));
        assert_eq!(t.stats().writes, 1);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let t = item_table();
        t.insert(item(1, "bolt", 150), 10).unwrap();
        let err = t.insert(item(1, "nut", 80), 11);
        assert!(matches!(err, Err(StorageError::DuplicateKey { .. })));
    }

    #[test]
    fn update_creates_new_version_and_preserves_old_snapshot() {
        let t = item_table();
        t.insert(item(1, "bolt", 150), 10).unwrap();
        t.update(&Key::int(1), item(1, "bolt", 175), 20).unwrap();
        assert_eq!(t.get(&Key::int(1), 15).unwrap()[2], Value::Decimal(150));
        assert_eq!(t.get(&Key::int(1), 25).unwrap()[2], Value::Decimal(175));
    }

    #[test]
    fn delete_hides_row_from_later_snapshots_only() {
        let t = item_table();
        t.insert(item(1, "bolt", 150), 10).unwrap();
        t.delete(&Key::int(1), 20).unwrap();
        assert!(t.get(&Key::int(1), 15).is_some());
        assert!(t.get(&Key::int(1), 25).is_none());
        assert_eq!(t.live_row_count(25), 0);
        assert_eq!(t.live_row_count(15), 1);
    }

    #[test]
    fn update_missing_row_errors() {
        let t = item_table();
        let err = t.update(&Key::int(42), item(42, "x", 1), 5);
        assert!(matches!(err, Err(StorageError::KeyNotFound { .. })));
    }

    #[test]
    fn full_scan_counts_examined_keys() {
        let t = item_table();
        for i in 0..10 {
            t.insert(item(i, "x", 100 + i), 10).unwrap();
        }
        t.delete(&Key::int(3), 20).unwrap();
        let mut seen = 0;
        let examined = t.scan(25, |_, _| seen += 1);
        assert_eq!(examined, 10);
        assert_eq!(seen, 9);
    }

    #[test]
    fn scan_batches_packs_visible_rows_only() {
        let t = item_table();
        for i in 0..10 {
            t.insert(item(i, "x", 100 + i), 10).unwrap();
        }
        t.delete(&Key::int(3), 20).unwrap();
        let mut sizes = Vec::new();
        let mut total = 0usize;
        let examined = t.scan_batches(25, 4, |batch| {
            assert_eq!(batch.width(), 3);
            assert!(batch.selection().is_none(), "row-store batches are dense");
            sizes.push(batch.num_rows());
            total += batch.num_rows();
        });
        assert_eq!(examined, 10, "the tombstoned key is still examined");
        assert_eq!(total, 9, "only visible rows are batched");
        assert_eq!(sizes, vec![4, 4, 1], "partial final batch is flushed");
    }

    #[test]
    fn prefix_scan_on_composite_pk() {
        let schema = TableSchema::new(
            "ORDER_LINE",
            vec![
                ColumnDef::new("o_id", DataType::Int, false),
                ColumnDef::new("ol_number", DataType::Int, false),
                ColumnDef::new("ol_amount", DataType::Decimal, false),
            ],
            vec!["o_id", "ol_number"],
        )
        .unwrap();
        let t = RowTable::new(Arc::new(schema));
        for o in 0..3 {
            for l in 0..5 {
                t.insert(
                    Row::new(vec![Value::Int(o), Value::Int(l), Value::Decimal(100)]),
                    5,
                )
                .unwrap();
            }
        }
        let mut rows = Vec::new();
        t.prefix_scan(&Key::int(1), 10, |k, _| rows.push(k.clone()));
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|k| k.starts_with(&Key::int(1))));
    }

    #[test]
    fn index_lookup_respects_visibility_and_staleness() {
        let t = item_table();
        t.insert(item(1, "bolt", 150), 10).unwrap();
        t.insert(item(2, "bolt", 90), 10).unwrap();
        t.update(&Key::int(2), item(2, "nut", 90), 20).unwrap();

        // At ts 15 both items are named "bolt".
        let (rows, _) = t
            .index_lookup(0, &Key::new(vec![Value::Str("bolt".into())]), 15)
            .unwrap();
        assert_eq!(rows.len(), 2);

        // At ts 25 item 2 was renamed, so only item 1 matches.
        let (rows, _) = t
            .index_lookup(0, &Key::new(vec![Value::Str("bolt".into())]), 25)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, Key::int(1));

        // The new name is findable.
        let (rows, _) = t
            .index_lookup(0, &Key::new(vec![Value::Str("nut".into())]), 25)
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn reverse_range_scan() {
        let t = item_table();
        for i in 0..5 {
            t.insert(item(i, "x", 1), 1).unwrap();
        }
        let mut keys = Vec::new();
        t.range(
            Bound::Unbounded,
            Bound::Unbounded,
            10,
            ScanDirection::Reverse,
            |k, _| keys.push(k.clone()),
        );
        assert_eq!(keys.first().unwrap(), &Key::int(4));
        assert_eq!(keys.last().unwrap(), &Key::int(0));
    }

    #[test]
    fn gc_drops_dead_versions() {
        let t = item_table();
        t.insert(item(1, "bolt", 150), 10).unwrap();
        for ts in 0..5 {
            t.update(&Key::int(1), item(1, "bolt", 150 + ts), 20 + ts as u64)
                .unwrap();
        }
        let dropped = t.gc(100);
        assert!(dropped >= 5);
        assert!(t.get(&Key::int(1), TS_MAX).is_some());
    }
}

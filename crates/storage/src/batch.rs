//! Vectorized batches: fixed-capacity chunks of column vectors.
//!
//! The read path of the stack is batch-first: storage scans hand the executor
//! [`ColumnBatch`]es — one `Vec`/slice per column plus an optional *selection
//! bitmap* marking which rows are live — instead of materializing a [`Row`]
//! per tuple.  The column store produces **borrowed** batches whose columns
//! are zero-copy slices into its column vectors; the MVCC row store and the
//! query operators produce **owned** batches built with [`BatchBuilder`].
//! Rows are only materialized "late", at a plan root or inside operators that
//! genuinely need full tuples (sorting, final output).
//!
//! This is the standard HTAP recipe (TiFlash, SAP HANA, the vectorized
//! engines surveyed by Zhang et al. 2024): the columnar replica only pays off
//! if the analytical engine consumes its layout natively rather than
//! re-rowifying every value at the storage boundary.

use crate::row::Row;
use crate::value::Value;
use std::borrow::Cow;

/// Default number of row slots per batch.
///
/// 1024 slots keep a typical projected batch within L1/L2 cache while
/// amortizing per-batch bookkeeping over enough tuples that per-row virtual
/// dispatch disappears from profiles.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A chunk of rows in columnar layout.
///
/// All columns have the same length (`num_rows`).  The optional selection
/// bitmap marks live rows: `None` means *all* rows are selected (the common
/// fast path), `Some(sel)` means row `i` participates iff `sel[i]`.  Deleted
/// column-store slots and filtered-out tuples are deselected rather than
/// compacted, so producing a batch never moves data.
#[derive(Debug, Clone)]
pub struct ColumnBatch<'a> {
    columns: Vec<Cow<'a, [Value]>>,
    selection: Option<Cow<'a, [bool]>>,
    num_rows: usize,
}

impl<'a> ColumnBatch<'a> {
    /// A batch borrowing column slices (zero copy), e.g. directly from the
    /// column store.  All slices must have equal length, as must `selection`
    /// when present.  The row count is derived from the first column; use
    /// [`ColumnBatch::borrowed_sized`] when the batch may have zero columns.
    pub fn borrowed(columns: Vec<&'a [Value]>, selection: Option<&'a [bool]>) -> ColumnBatch<'a> {
        let num_rows = columns.first().map_or(0, |c| c.len());
        ColumnBatch::borrowed_sized(columns, selection, num_rows)
    }

    /// [`ColumnBatch::borrowed`] with an explicit row count, so even a
    /// zero-width batch (e.g. an empty projection) still carries how many
    /// rows it stands for.
    pub fn borrowed_sized(
        columns: Vec<&'a [Value]>,
        selection: Option<&'a [bool]>,
        num_rows: usize,
    ) -> ColumnBatch<'a> {
        debug_assert!(columns.iter().all(|c| c.len() == num_rows));
        debug_assert!(selection.map_or(true, |s| s.len() == num_rows));
        ColumnBatch {
            columns: columns.into_iter().map(Cow::Borrowed).collect(),
            selection: selection.map(Cow::Borrowed),
            num_rows,
        }
    }

    /// A batch owning its column vectors, with every row selected.  The row
    /// count is derived from the first column; use
    /// [`ColumnBatch::owned_sized`] when the batch may have zero columns.
    pub fn owned(columns: Vec<Vec<Value>>) -> ColumnBatch<'static> {
        let num_rows = columns.first().map_or(0, |c| c.len());
        ColumnBatch::owned_sized(columns, num_rows)
    }

    /// [`ColumnBatch::owned`] with an explicit row count (see
    /// [`ColumnBatch::borrowed_sized`]).
    pub fn owned_sized(columns: Vec<Vec<Value>>, num_rows: usize) -> ColumnBatch<'static> {
        debug_assert!(columns.iter().all(|c| c.len() == num_rows));
        ColumnBatch {
            columns: columns.into_iter().map(Cow::Owned).collect(),
            selection: None,
            num_rows,
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of row slots (selected or not).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// True when the batch holds no row slots at all.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// The values of column `col`.
    ///
    /// # Panics
    /// Panics if `col` is out of range (programming error in an operator).
    pub fn column(&self, col: usize) -> &[Value] {
        &self.columns[col]
    }

    /// Borrow the value at (`col`, `row`), or `None` when out of range.
    pub fn value(&self, col: usize, row: usize) -> Option<&Value> {
        self.columns.get(col).and_then(|c| c.get(row))
    }

    /// The selection bitmap, or `None` when every row is selected.
    pub fn selection(&self) -> Option<&[bool]> {
        self.selection.as_deref()
    }

    /// Whether row slot `row` participates in the batch.
    pub fn is_selected(&self, row: usize) -> bool {
        match &self.selection {
            None => row < self.num_rows,
            Some(sel) => sel.get(row).copied().unwrap_or(false),
        }
    }

    /// Number of selected rows.
    pub fn selected_count(&self) -> usize {
        match &self.selection {
            None => self.num_rows,
            Some(sel) => sel.iter().filter(|&&s| s).count(),
        }
    }

    /// Iterator over the indices of selected row slots.
    pub fn selected_rows(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_rows).filter(|&i| self.is_selected(i))
    }

    /// Replace the selection bitmap (used by vectorized filters, which narrow
    /// the selection in place instead of copying the surviving rows).
    ///
    /// # Panics
    /// Panics if `selection.len() != num_rows`.
    pub fn set_selection(&mut self, selection: Vec<bool>) {
        assert_eq!(
            selection.len(),
            self.num_rows,
            "selection bitmap must cover every row slot"
        );
        self.selection = Some(Cow::Owned(selection));
    }

    /// Clone the values of row `row` into `buf` (cleared first), in column
    /// order.
    pub fn gather_row_into(&self, row: usize, buf: &mut Vec<Value>) {
        buf.clear();
        for col in &self.columns {
            buf.push(col[row].clone());
        }
    }

    /// Late materialization: append one [`Row`] per *selected* slot to `out`.
    /// Returns the number of rows appended.
    pub fn materialize_into(&self, out: &mut Vec<Row>) -> usize {
        let mut appended = 0;
        for row in self.selected_rows() {
            let mut values = Vec::with_capacity(self.width());
            for col in &self.columns {
                values.push(col[row].clone());
            }
            out.push(Row::new(values));
            appended += 1;
        }
        appended
    }
}

/// Builds owned [`ColumnBatch`]es row by row, recycling nothing across
/// batches (each `finish` hands the column vectors to the batch).
///
/// The row count is tracked explicitly rather than derived from the column
/// vectors, so zero-width batches (empty projections) still carry their
/// cardinality.
#[derive(Debug)]
pub struct BatchBuilder {
    columns: Vec<Vec<Value>>,
    rows: usize,
    capacity: usize,
}

impl BatchBuilder {
    /// A builder for batches of `width` columns and up to `capacity` rows.
    pub fn new(width: usize, capacity: usize) -> BatchBuilder {
        let capacity = capacity.max(1);
        BatchBuilder {
            columns: (0..width).map(|_| Vec::new()).collect(),
            rows: 0,
            capacity,
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Target batch capacity in rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows currently buffered.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the builder holds `capacity` rows and should be flushed.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Append one row by cloning `values` into the column vectors.
    ///
    /// # Panics
    /// Panics if `values.len() != width` (operator arity bug).
    pub fn push_row(&mut self, values: &[Value]) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        for (col, value) in self.columns.iter_mut().zip(values) {
            col.push(value.clone());
        }
        self.rows += 1;
    }

    /// Append row slot `row` of `batch` by cloning each column value
    /// straight across (no intermediate row buffer).
    ///
    /// # Panics
    /// Panics if the widths differ or `row` is out of range.
    pub fn push_row_from(&mut self, batch: &ColumnBatch<'_>, row: usize) {
        assert_eq!(batch.width(), self.columns.len(), "batch width mismatch");
        for (src, col) in self.columns.iter_mut().enumerate() {
            col.push(batch.column(src)[row].clone());
        }
        self.rows += 1;
    }

    /// Append every *selected* row of `batch` column-wise — the vectorized
    /// bulk copy used by scan operators (whole column slices are cloned in
    /// one pass per column instead of cell-by-cell per row).
    ///
    /// # Panics
    /// Panics if the widths differ.
    pub fn extend_from_batch(&mut self, batch: &ColumnBatch<'_>) {
        assert_eq!(batch.width(), self.columns.len(), "batch width mismatch");
        self.rows += batch.selected_count();
        match batch.selection() {
            None => {
                for (src, col) in self.columns.iter_mut().enumerate() {
                    col.extend_from_slice(batch.column(src));
                }
            }
            Some(selection) => {
                for (src, col) in self.columns.iter_mut().enumerate() {
                    let values = batch.column(src);
                    col.extend(
                        values
                            .iter()
                            .zip(selection)
                            .filter(|&(_, &keep)| keep)
                            .map(|(v, _)| v.clone()),
                    );
                }
            }
        }
    }

    /// Append the rows of `batch` whose slot is *both* selected in the batch
    /// and marked in `keep`, column-wise (used by filtering scans).
    ///
    /// # Panics
    /// Panics if the widths differ or `keep.len() != batch.num_rows()`.
    pub fn extend_selected(&mut self, batch: &ColumnBatch<'_>, keep: &[bool]) {
        assert_eq!(batch.width(), self.columns.len(), "batch width mismatch");
        assert_eq!(keep.len(), batch.num_rows(), "keep bitmap width mismatch");
        self.rows += (0..batch.num_rows())
            .filter(|&row| keep[row] && batch.is_selected(row))
            .count();
        for (src, col) in self.columns.iter_mut().enumerate() {
            let values = batch.column(src);
            col.extend(
                values
                    .iter()
                    .enumerate()
                    .filter(|&(row, _)| keep[row] && batch.is_selected(row))
                    .map(|(_, v)| v.clone()),
            );
        }
    }

    /// Append one row by moving `values` into the column vectors.
    ///
    /// # Panics
    /// Panics if `values.len() != width` (operator arity bug).
    pub fn push_row_values(&mut self, values: Vec<Value>) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        for (col, value) in self.columns.iter_mut().zip(values) {
            col.push(value);
        }
        self.rows += 1;
    }

    /// [`BatchBuilder::push_row_values`] followed by the standard flush
    /// policy: when the builder reaches capacity the finished batch is
    /// appended to `out`.  Keeps the emit idiom of the query operators in
    /// one place.
    pub fn push_row_values_into(
        &mut self,
        values: Vec<Value>,
        out: &mut Vec<ColumnBatch<'static>>,
    ) {
        self.push_row_values(values);
        if self.is_full() {
            out.push(self.finish());
        }
    }

    /// Take the buffered rows as an owned batch, leaving the builder empty
    /// and ready for the next batch.
    pub fn finish(&mut self) -> ColumnBatch<'static> {
        let width = self.columns.len();
        let columns =
            std::mem::replace(&mut self.columns, (0..width).map(|_| Vec::new()).collect());
        let rows = std::mem::take(&mut self.rows);
        ColumnBatch::owned_sized(columns, rows)
    }

    /// Flush the builder into `out` if it holds any rows.
    pub fn flush_into(&mut self, out: &mut Vec<ColumnBatch<'static>>) {
        if !self.is_empty() {
            out.push(self.finish());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_owned() -> ColumnBatch<'static> {
        ColumnBatch::owned(vec![
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
            vec![
                Value::Str("a".into()),
                Value::Str("b".into()),
                Value::Str("c".into()),
            ],
        ])
    }

    #[test]
    fn owned_batch_selects_everything_by_default() {
        let batch = sample_owned();
        assert_eq!(batch.width(), 2);
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.selected_count(), 3);
        assert!(batch.selection().is_none());
        assert!(batch.is_selected(2));
        assert!(!batch.is_selected(3));
        assert_eq!(batch.value(0, 1), Some(&Value::Int(2)));
        assert_eq!(batch.value(9, 0), None);
    }

    #[test]
    fn selection_narrows_visible_rows() {
        let mut batch = sample_owned();
        batch.set_selection(vec![true, false, true]);
        assert_eq!(batch.selected_count(), 2);
        assert_eq!(batch.selected_rows().collect::<Vec<_>>(), vec![0, 2]);
        let mut rows = Vec::new();
        assert_eq!(batch.materialize_into(&mut rows), 2);
        assert_eq!(rows[1][0], Value::Int(3));
    }

    #[test]
    #[should_panic(expected = "selection bitmap must cover")]
    fn short_selection_is_rejected() {
        let mut batch = sample_owned();
        batch.set_selection(vec![true]);
    }

    #[test]
    fn borrowed_batch_is_zero_copy_view() {
        let c0 = vec![Value::Int(10), Value::Int(20)];
        let c1 = vec![Value::Int(1), Value::Int(2)];
        let sel = vec![false, true];
        let batch = ColumnBatch::borrowed(vec![&c0, &c1], Some(&sel));
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.selected_count(), 1);
        let mut buf = Vec::new();
        batch.gather_row_into(1, &mut buf);
        assert_eq!(buf, vec![Value::Int(20), Value::Int(2)]);
    }

    #[test]
    fn builder_fills_and_recycles() {
        let mut builder = BatchBuilder::new(2, 2);
        assert!(builder.is_empty());
        builder.push_row(&[Value::Int(1), Value::Int(10)]);
        builder.push_row_values(vec![Value::Int(2), Value::Int(20)]);
        assert!(builder.is_full());
        let batch = builder.finish();
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.column(1), &[Value::Int(10), Value::Int(20)]);
        assert!(builder.is_empty());
        let mut out = Vec::new();
        builder.flush_into(&mut out);
        assert!(out.is_empty(), "empty builder flushes nothing");
        builder.push_row(&[Value::Int(3), Value::Int(30)]);
        builder.flush_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].num_rows(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let builder = BatchBuilder::new(1, 0);
        assert!(!builder.is_full());
    }
}

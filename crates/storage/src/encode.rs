//! Column encodings for sealed main-tier chunks.
//!
//! When the compactor migrates a delta chunk into the immutable main tier
//! (see [`crate::delta`]), every column is re-encoded by a lightweight stats
//! pass: one walk over the chunk counts distinct values and adjacent runs,
//! estimates the resident size of each applicable encoding, and keeps the
//! smallest.
//!
//! * **Dictionary** — distinct values stored once in a *sorted* dictionary,
//!   rows as `u32` codes.  Because the dictionary is sorted by [`Value`]'s
//!   total order, codes are order-preserving: equality predicates compare a
//!   single probe code and range predicates compare a code interval, so
//!   sargable filters run on the codes without decoding a single value.
//! * **Run-length** — `(value, run_length)` pairs for sorted or clustered
//!   data.  Predicates evaluate once per run and accept or reject whole
//!   spans of the selection bitmap.
//! * **Plain** — the fallback when neither encoding would shrink the column.
//!
//! Encoded predicate evaluation ([`EncodedColumn::filter_range`]) follows
//! residual-filter semantics: NULLs never match any comparison, and the probe
//! literal is never NULL (see [`crate::zonemap::ColumnPredicate`]).  Decoding
//! ([`EncodedColumn::decode_range`]) materializes only positions that survived
//! filtering; everything else becomes a cheap [`Value::Null`] placeholder the
//! batch's selection bitmap already hides.

use crate::value::Value;
use crate::zonemap::PredicateOp;
use std::collections::BTreeMap;

/// Which physical encoding a sealed column uses (reporting / tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Uncompressed values.
    Plain,
    /// Sorted (order-preserving) dictionary + u32 codes.
    Dictionary,
    /// Run-length `(value, length)` pairs.
    Rle,
}

impl Encoding {
    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::Dictionary => "dict",
            Encoding::Rle => "rle",
        }
    }
}

/// Heap bytes owned by one value (the inline enum is counted separately).
fn heap_bytes(value: &Value) -> usize {
    match value {
        Value::Str(s) => s.len(),
        _ => 0,
    }
}

/// Approximate resident bytes of a plain `Vec<Value>` holding these values
/// (inline enum size plus owned heap payloads).  Also used by the column
/// store to account for the uncompressed delta tier.
pub fn plain_slice_bytes(values: &[Value]) -> usize {
    std::mem::size_of_val(values) + values.iter().map(heap_bytes).sum::<usize>()
}

/// One immutable, compressed column of a sealed main chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedColumn {
    /// Uncompressed values (the encoding of last resort).
    Plain(Vec<Value>),
    /// `dict` is sorted ascending by [`Value`]'s total order and deduplicated,
    /// so codes preserve the value order; `codes[i]` indexes `dict`.
    Dictionary {
        /// Distinct values, sorted ascending.
        dict: Vec<Value>,
        /// One dictionary code per row slot.
        codes: Vec<u32>,
    },
    /// Maximal runs of equal values; run lengths sum to the chunk length.
    Rle(Vec<(Value, u32)>),
}

impl EncodedColumn {
    /// Encode one sealed column: a stats pass sizes every applicable encoding
    /// and the smallest representation wins (ties go to plain).
    pub fn encode(values: &[Value]) -> EncodedColumn {
        let value_size = std::mem::size_of::<Value>();
        let mut distinct: BTreeMap<&Value, u32> = BTreeMap::new();
        let mut runs = 0usize;
        let mut run_heap = 0usize;
        for (i, v) in values.iter().enumerate() {
            distinct.entry(v).or_default();
            if i == 0 || values[i - 1] != *v {
                runs += 1;
                run_heap += heap_bytes(v);
            }
        }
        let plain = plain_slice_bytes(values);
        let dict_cost = distinct.len() * value_size
            + distinct.keys().map(|v| heap_bytes(v)).sum::<usize>()
            + values.len() * std::mem::size_of::<u32>();
        let rle_cost = runs * (value_size + std::mem::size_of::<u32>()) + run_heap;

        if rle_cost < plain && rle_cost <= dict_cost {
            let mut out: Vec<(Value, u32)> = Vec::with_capacity(runs);
            for v in values {
                match out.last_mut() {
                    Some((last, n)) if last == v => *n += 1,
                    _ => out.push((v.clone(), 1)),
                }
            }
            return EncodedColumn::Rle(out);
        }
        if dict_cost < plain && u32::try_from(distinct.len()).is_ok() {
            for (code, slot) in distinct.values_mut().enumerate() {
                *slot = code as u32;
            }
            let codes = values.iter().map(|v| distinct[v]).collect();
            let dict = distinct.keys().map(|&v| v.clone()).collect();
            return EncodedColumn::Dictionary { dict, codes };
        }
        EncodedColumn::Plain(values.to_vec())
    }

    /// The encoding in use.
    pub fn encoding(&self) -> Encoding {
        match self {
            EncodedColumn::Plain(_) => Encoding::Plain,
            EncodedColumn::Dictionary { .. } => Encoding::Dictionary,
            EncodedColumn::Rle(_) => Encoding::Rle,
        }
    }

    /// Number of row slots the column covers.
    pub fn len(&self) -> usize {
        match self {
            EncodedColumn::Plain(values) => values.len(),
            EncodedColumn::Dictionary { codes, .. } => codes.len(),
            EncodedColumn::Rle(runs) => runs.iter().map(|&(_, n)| n as usize).sum(),
        }
    }

    /// True when the column covers no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of the encoded representation.
    pub fn encoded_bytes(&self) -> usize {
        let value_size = std::mem::size_of::<Value>();
        match self {
            EncodedColumn::Plain(values) => plain_slice_bytes(values),
            EncodedColumn::Dictionary { dict, codes } => {
                dict.len() * value_size
                    + dict.iter().map(heap_bytes).sum::<usize>()
                    + codes.len() * std::mem::size_of::<u32>()
            }
            EncodedColumn::Rle(runs) => {
                runs.len() * (value_size + std::mem::size_of::<u32>())
                    + runs.iter().map(|(v, _)| heap_bytes(v)).sum::<usize>()
            }
        }
    }

    /// Approximate resident bytes the same column would occupy unencoded.
    pub fn plain_bytes(&self) -> usize {
        let value_size = std::mem::size_of::<Value>();
        match self {
            EncodedColumn::Plain(values) => plain_slice_bytes(values),
            EncodedColumn::Dictionary { dict, codes } => {
                codes.len() * value_size
                    + codes
                        .iter()
                        .map(|&c| heap_bytes(&dict[c as usize]))
                        .sum::<usize>()
            }
            EncodedColumn::Rle(runs) => runs
                .iter()
                .map(|(v, n)| *n as usize * (value_size + heap_bytes(v)))
                .sum(),
        }
    }

    /// Narrow `selection` (covering slots `[lo, lo + selection.len())` of the
    /// chunk) to the rows that can satisfy `<op> probe`, *without decoding*:
    /// dictionary columns compare codes against the probe's code interval,
    /// RLE columns evaluate once per run and reject whole spans, plain
    /// columns compare values directly.  NULL slots never match.
    pub fn filter_range(&self, op: PredicateOp, probe: &Value, lo: usize, selection: &mut [bool]) {
        match self {
            EncodedColumn::Plain(values) => {
                for (keep, v) in selection.iter_mut().zip(&values[lo..]) {
                    *keep = *keep && value_matches(v, op, probe);
                }
            }
            EncodedColumn::Dictionary { dict, codes } => {
                let (min_code, max_code) = match code_interval(dict, op, probe) {
                    Some(interval) => interval,
                    None => {
                        selection.fill(false);
                        return;
                    }
                };
                for (keep, &code) in selection.iter_mut().zip(&codes[lo..]) {
                    *keep = *keep && min_code <= code && code <= max_code;
                }
            }
            EncodedColumn::Rle(runs) => {
                let hi = lo + selection.len();
                let mut pos = 0usize;
                for (v, n) in runs {
                    let run_end = pos + *n as usize;
                    if run_end > lo && pos < hi && !value_matches(v, op, probe) {
                        let from = pos.max(lo) - lo;
                        let to = run_end.min(hi) - lo;
                        selection[from..to].fill(false);
                    }
                    pos = run_end;
                    if pos >= hi {
                        break;
                    }
                }
            }
        }
    }

    /// Materialize slots `[lo, lo + selection.len())`, cloning only positions
    /// still selected; deselected slots become [`Value::Null`] placeholders
    /// (the selection bitmap keeps them invisible downstream).
    pub fn decode_range(&self, lo: usize, selection: &[bool]) -> Vec<Value> {
        let mut out = Vec::with_capacity(selection.len());
        match self {
            EncodedColumn::Plain(values) => {
                for (&keep, v) in selection.iter().zip(&values[lo..]) {
                    out.push(if keep { v.clone() } else { Value::Null });
                }
            }
            EncodedColumn::Dictionary { dict, codes } => {
                for (&keep, &code) in selection.iter().zip(&codes[lo..]) {
                    out.push(if keep {
                        dict[code as usize].clone()
                    } else {
                        Value::Null
                    });
                }
            }
            EncodedColumn::Rle(runs) => {
                let hi = lo + selection.len();
                let mut pos = 0usize;
                for (v, n) in runs {
                    let run_end = pos + *n as usize;
                    if run_end > lo && pos < hi {
                        for slot in pos.max(lo)..run_end.min(hi) {
                            out.push(if selection[slot - lo] {
                                v.clone()
                            } else {
                                Value::Null
                            });
                        }
                    }
                    pos = run_end;
                    if pos >= hi {
                        break;
                    }
                }
            }
        }
        out
    }
}

/// Residual comparison semantics: NULL matches nothing, everything else uses
/// [`Value`]'s total order (mixed numeric variants compare by value).
fn value_matches(v: &Value, op: PredicateOp, probe: &Value) -> bool {
    !v.is_null()
        && match op {
            PredicateOp::Eq => v == probe,
            PredicateOp::Lt => v < probe,
            PredicateOp::Le => v <= probe,
            PredicateOp::Gt => v > probe,
            PredicateOp::Ge => v >= probe,
        }
}

/// The inclusive code interval of sorted-dictionary entries satisfying
/// `<op> probe`, or `None` when no entry can match.  The NULL entry, when
/// present, sorts first (Value's total order puts NULL below everything) and
/// is excluded by starting the interval after it.
fn code_interval(dict: &[Value], op: PredicateOp, probe: &Value) -> Option<(u32, u32)> {
    let first = dict.iter().take_while(|v| v.is_null()).count();
    let below = |v: &Value| v < probe;
    let at_or_below = |v: &Value| v <= probe;
    let (lo, hi) = match op {
        PredicateOp::Eq => {
            let code = dict[first..].binary_search(probe).ok()? + first;
            (code, code + 1)
        }
        PredicateOp::Lt => (first, dict.partition_point(below)),
        PredicateOp::Le => (first, dict.partition_point(at_or_below)),
        PredicateOp::Gt => (dict.partition_point(at_or_below).max(first), dict.len()),
        PredicateOp::Ge => (dict.partition_point(below).max(first), dict.len()),
    };
    if lo >= hi {
        return None;
    }
    Some((lo as u32, (hi - 1) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(values: &[i64]) -> Vec<Value> {
        values.iter().map(|&v| Value::Int(v)).collect()
    }

    fn decode_all(col: &EncodedColumn) -> Vec<Value> {
        col.decode_range(0, &vec![true; col.len()])
    }

    #[test]
    fn low_cardinality_column_picks_dictionary() {
        let values: Vec<Value> = (0..256)
            .map(|i| Value::Str(format!("status-{}", i % 4)))
            .collect();
        let col = EncodedColumn::encode(&values);
        assert_eq!(col.encoding(), Encoding::Dictionary);
        assert_eq!(col.len(), 256);
        assert!(col.encoded_bytes() < col.plain_bytes() / 3);
        assert_eq!(decode_all(&col), values);
    }

    #[test]
    fn sorted_runs_pick_rle() {
        let values: Vec<Value> = (0..256).map(|i| Value::Int(i / 64)).collect();
        let col = EncodedColumn::encode(&values);
        assert_eq!(col.encoding(), Encoding::Rle);
        assert!(col.encoded_bytes() < col.plain_bytes() / 10);
        assert_eq!(decode_all(&col), values);
    }

    #[test]
    fn high_cardinality_unclustered_column_stays_plain() {
        let values = ints(&(0..64).map(|i| i * 37 % 64).collect::<Vec<_>>());
        let col = EncodedColumn::encode(&values);
        assert_eq!(col.encoding(), Encoding::Plain);
        assert_eq!(col.encoded_bytes(), col.plain_bytes());
        assert_eq!(decode_all(&col), values);
    }

    #[test]
    fn dictionary_codes_preserve_value_order() {
        let values = ints(&[30, 10, 30, 20, 10, 20, 30, 10]);
        let col = EncodedColumn::encode(&values);
        let EncodedColumn::Dictionary { dict, codes } = &col else {
            panic!("expected dictionary, got {:?}", col.encoding());
        };
        assert_eq!(dict, &ints(&[10, 20, 30]));
        for (v, &code) in values.iter().zip(codes) {
            assert_eq!(&dict[code as usize], v);
        }
    }

    #[test]
    fn encoded_filters_agree_with_plain_evaluation() {
        // One clustered (RLE-friendly), one low-cardinality (dictionary) and
        // one incompressible layout, probed with every operator.
        let layouts: Vec<Vec<Value>> = vec![
            (0..60).map(|i| Value::Int(i / 10)).collect(),
            (0..60).map(|i| Value::Int(i * 31 % 7)).collect(),
            (0..60).map(|i| Value::Int(i * 37 % 61)).collect(),
        ];
        for values in layouts {
            let col = EncodedColumn::encode(&values);
            for op in [
                PredicateOp::Eq,
                PredicateOp::Lt,
                PredicateOp::Le,
                PredicateOp::Gt,
                PredicateOp::Ge,
            ] {
                for probe in [-1i64, 0, 3, 6, 40, 100] {
                    let probe = Value::Int(probe);
                    let mut selection = vec![true; values.len()];
                    col.filter_range(op, &probe, 0, &mut selection);
                    let expected: Vec<bool> = values
                        .iter()
                        .map(|v| value_matches(v, op, &probe))
                        .collect();
                    assert_eq!(selection, expected, "{op:?} {probe:?}");
                }
            }
        }
    }

    #[test]
    fn filters_and_decodes_respect_subranges() {
        let values: Vec<Value> = (0..40).map(|i| Value::Int(i / 8)).collect();
        for col in [
            EncodedColumn::encode(&values),
            EncodedColumn::Plain(values.clone()),
        ] {
            let (lo, hi) = (11, 29);
            let mut selection = vec![true; hi - lo];
            col.filter_range(PredicateOp::Ge, &Value::Int(2), lo, &mut selection);
            let expected: Vec<bool> = (lo..hi).map(|i| values[i] >= Value::Int(2)).collect();
            assert_eq!(selection, expected);
            let decoded = col.decode_range(lo, &selection);
            for (i, v) in decoded.iter().enumerate() {
                if selection[i] {
                    assert_eq!(v, &values[lo + i]);
                } else {
                    assert!(v.is_null(), "deselected slots decode as placeholders");
                }
            }
        }
    }

    #[test]
    fn null_slots_never_match_and_are_excluded_from_code_intervals() {
        // NULL sorts first in the dictionary; range predicates must not
        // resurrect it even though its code is inside the naive interval.
        let mut values = ints(&[5, 5, 7, 7, 9, 9]);
        values[1] = Value::Null;
        values[4] = Value::Null;
        for col in [
            EncodedColumn::encode(&values),
            EncodedColumn::Plain(values.clone()),
            EncodedColumn::Rle(values.iter().map(|v| (v.clone(), 1)).collect()),
        ] {
            for op in [
                PredicateOp::Eq,
                PredicateOp::Lt,
                PredicateOp::Le,
                PredicateOp::Gt,
                PredicateOp::Ge,
            ] {
                let mut selection = vec![true; values.len()];
                col.filter_range(op, &Value::Int(7), 0, &mut selection);
                assert!(!selection[1], "{op:?} matched a NULL slot");
                assert!(!selection[4], "{op:?} matched a NULL slot");
            }
        }
    }

    #[test]
    fn dictionary_probe_missing_from_dict_deselects_everything() {
        let values = ints(&[2, 4, 2, 4, 2, 4, 2, 4]);
        let col = EncodedColumn::encode(&values);
        assert_eq!(col.encoding(), Encoding::Dictionary);
        let mut selection = vec![true; values.len()];
        col.filter_range(PredicateOp::Eq, &Value::Int(3), 0, &mut selection);
        assert!(selection.iter().all(|&s| !s));
    }

    #[test]
    fn incoming_deselection_is_never_resurrected() {
        let values = ints(&[1, 1, 1, 1]);
        let col = EncodedColumn::encode(&values);
        let mut selection = vec![true, false, true, false];
        col.filter_range(PredicateOp::Eq, &Value::Int(1), 0, &mut selection);
        assert_eq!(selection, vec![true, false, true, false]);
    }
}

//! Column store.
//!
//! [`ColumnTable`] is the OLAP-facing storage structure: each column lives in
//! its own vector so analytical scans only touch the columns they project, the
//! way TiFlash (TiDB) or the MemSQL column store do.  The column store holds
//! the *latest committed* image of each row as of the replication watermark; it
//! is populated exclusively through the asynchronous replication log (see
//! [`crate::replication`]), never written directly by transactions.

use crate::batch::{ColumnBatch, DEFAULT_BATCH_SIZE};
use crate::error::{StorageError, StorageResult};
use crate::key::Key;
use crate::row::Row;
use crate::schema::TableSchema;
use crate::Timestamp;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters exposed by a [`ColumnTable`].
///
/// Physical and logical scan work are tracked separately: `slots_examined`
/// counts every row slot a scan walked over (including deleted slots, the
/// quantity that drives the cost model), while `rows_scanned` counts only the
/// *live* rows actually handed to the consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnTableStats {
    /// Number of scans performed (scans of an empty table are no-ops and are
    /// not counted).
    pub scans: u64,
    /// Total row slots examined by scans, including deleted slots.
    pub slots_examined: u64,
    /// Live rows produced by scans (excludes deleted slots).
    pub rows_scanned: u64,
    /// Number of replication mutations applied.
    pub mutations_applied: u64,
}

#[derive(Debug, Default)]
struct Counters {
    scans: AtomicU64,
    slots_examined: AtomicU64,
    rows_scanned: AtomicU64,
    mutations_applied: AtomicU64,
}

struct ColumnData {
    /// One vector per column, all the same length.
    columns: Vec<Vec<crate::Value>>,
    /// Deletion markers, same length as each column.
    deleted: Vec<bool>,
    /// Primary key -> slot position of the live row.
    pk_slots: HashMap<Key, usize>,
    /// Commit timestamp of the newest applied mutation (freshness watermark).
    applied_ts: Timestamp,
    /// Log sequence number of the newest applied mutation.
    applied_lsn: u64,
}

/// A table stored in columnar format, maintained by log replication.
pub struct ColumnTable {
    schema: Arc<TableSchema>,
    data: RwLock<ColumnData>,
    counters: Counters,
}

impl ColumnTable {
    /// Create an empty column table for the schema.
    pub fn new(schema: Arc<TableSchema>) -> ColumnTable {
        let columns = schema.columns().iter().map(|_| Vec::new()).collect();
        ColumnTable {
            schema,
            data: RwLock::new(ColumnData {
                columns,
                deleted: Vec::new(),
                pk_slots: HashMap::new(),
                applied_ts: 0,
                applied_lsn: 0,
            }),
            counters: Counters::default(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Arc<TableSchema> {
        &self.schema
    }

    /// Number of live (non-deleted) rows.
    pub fn live_row_count(&self) -> usize {
        self.data.read().pk_slots.len()
    }

    /// Number of slots (live + deleted) — the physical scan width.
    pub fn slot_count(&self) -> usize {
        self.data.read().deleted.len()
    }

    /// Commit timestamp of the newest applied mutation.
    pub fn applied_ts(&self) -> Timestamp {
        self.data.read().applied_ts
    }

    /// Log sequence number of the newest applied mutation.
    pub fn applied_lsn(&self) -> u64 {
        self.data.read().applied_lsn
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ColumnTableStats {
        ColumnTableStats {
            scans: self.counters.scans.load(Ordering::Relaxed),
            slots_examined: self.counters.slots_examined.load(Ordering::Relaxed),
            rows_scanned: self.counters.rows_scanned.load(Ordering::Relaxed),
            mutations_applied: self.counters.mutations_applied.load(Ordering::Relaxed),
        }
    }

    /// Apply an insert arriving from the replication log.
    pub fn apply_insert(
        &self,
        pk: &Key,
        row: &Row,
        commit_ts: Timestamp,
        lsn: u64,
    ) -> StorageResult<()> {
        self.schema.validate_row(row)?;
        let mut data = self.data.write();
        if let Some(&slot) = data.pk_slots.get(pk) {
            // Idempotent re-apply (e.g. replay after restart): overwrite.
            for (col_idx, value) in row.values().iter().enumerate() {
                data.columns[col_idx][slot] = value.clone();
            }
            data.deleted[slot] = false;
        } else {
            for (col_idx, value) in row.values().iter().enumerate() {
                data.columns[col_idx].push(value.clone());
            }
            data.deleted.push(false);
            let slot = data.deleted.len() - 1;
            data.pk_slots.insert(pk.clone(), slot);
        }
        data.applied_ts = data.applied_ts.max(commit_ts);
        data.applied_lsn = data.applied_lsn.max(lsn);
        self.counters
            .mutations_applied
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Apply an update arriving from the replication log.
    pub fn apply_update(
        &self,
        pk: &Key,
        row: &Row,
        commit_ts: Timestamp,
        lsn: u64,
    ) -> StorageResult<()> {
        self.schema.validate_row(row)?;
        let mut data = self.data.write();
        let slot = *data
            .pk_slots
            .get(pk)
            .ok_or_else(|| StorageError::KeyNotFound {
                table: self.schema.name().to_string(),
                key: pk.to_string(),
            })?;
        for (col_idx, value) in row.values().iter().enumerate() {
            data.columns[col_idx][slot] = value.clone();
        }
        data.applied_ts = data.applied_ts.max(commit_ts);
        data.applied_lsn = data.applied_lsn.max(lsn);
        self.counters
            .mutations_applied
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Apply a delete arriving from the replication log.
    pub fn apply_delete(&self, pk: &Key, commit_ts: Timestamp, lsn: u64) -> StorageResult<()> {
        let mut data = self.data.write();
        if let Some(slot) = data.pk_slots.remove(pk) {
            data.deleted[slot] = true;
        }
        data.applied_ts = data.applied_ts.max(commit_ts);
        data.applied_lsn = data.applied_lsn.max(lsn);
        self.counters
            .mutations_applied
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Vectorized scan: hand out one [`ColumnBatch`] per chunk of up to
    /// `batch_size` row slots.
    ///
    /// The batches borrow the column vectors directly (zero copy); deleted
    /// slots are deselected through the batch's selection bitmap rather than
    /// skipped, so the batch layout matches the physical slot layout.
    /// `projection` selects and orders the columns each batch exposes; `None`
    /// exposes every column in schema order.  Returns the number of slots
    /// examined.  Scanning an empty table is a no-op and touches no counters.
    pub fn scan_batches<F>(
        &self,
        projection: Option<&[usize]>,
        batch_size: usize,
        mut f: F,
    ) -> usize
    where
        F: FnMut(&ColumnBatch<'_>),
    {
        let data = self.data.read();
        let slots = data.deleted.len();
        if slots == 0 {
            return 0;
        }
        let batch_size = batch_size.max(1);
        let all: Vec<usize>;
        let projection = match projection {
            Some(p) => p,
            None => {
                all = (0..self.schema.column_count()).collect();
                &all
            }
        };
        let mut live_rows = 0u64;
        let mut start = 0usize;
        while start < slots {
            let end = (start + batch_size).min(slots);
            let columns: Vec<&[crate::Value]> = projection
                .iter()
                .map(|&col| &data.columns[col][start..end])
                .collect();
            let deleted = &data.deleted[start..end];
            let batch = if deleted.iter().any(|&d| d) {
                let selection: Vec<bool> = deleted.iter().map(|&d| !d).collect();
                let mut batch = ColumnBatch::borrowed_sized(columns, None, end - start);
                batch.set_selection(selection);
                batch
            } else {
                ColumnBatch::borrowed_sized(columns, None, end - start)
            };
            live_rows += batch.selected_count() as u64;
            f(&batch);
            start = end;
        }
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        self.counters
            .slots_examined
            .fetch_add(slots as u64, Ordering::Relaxed);
        self.counters
            .rows_scanned
            .fetch_add(live_rows, Ordering::Relaxed);
        slots
    }

    /// Scan live rows, materialising only the projected columns.
    ///
    /// `projection` holds column positions; the callback receives the projected
    /// values in projection order.  Returns the number of slots examined.
    pub fn scan_projected<F>(&self, projection: &[usize], mut f: F) -> usize
    where
        F: FnMut(&[crate::Value]),
    {
        let mut buf: Vec<crate::Value> = Vec::with_capacity(projection.len());
        self.scan_batches(Some(projection), DEFAULT_BATCH_SIZE, |batch| {
            for row in batch.selected_rows() {
                batch.gather_row_into(row, &mut buf);
                f(&buf);
            }
        })
    }

    /// Scan live rows materialising full rows (schema column order).
    pub fn scan_rows<F>(&self, mut f: F) -> usize
    where
        F: FnMut(&Row),
    {
        let mut buf: Vec<crate::Value> = Vec::with_capacity(self.schema.column_count());
        self.scan_batches(None, DEFAULT_BATCH_SIZE, |batch| {
            for row in batch.selected_rows() {
                batch.gather_row_into(row, &mut buf);
                f(&Row::new(std::mem::take(&mut buf)));
            }
        })
    }

    /// Aggregate one numeric column over live rows matching `filter`.
    ///
    /// Returns `(sum, count, min, max)` of the column interpreted as f64.
    /// Runs over the batch scan: only rows the filter accepts are gathered,
    /// and the aggregated column is read straight from the batch slice.
    pub fn aggregate_column<F>(&self, column: usize, filter: F) -> (f64, u64, f64, f64)
    where
        F: Fn(&[crate::Value]) -> bool,
    {
        let (mut sum, mut count) = (0.0f64, 0u64);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut rowbuf: Vec<crate::Value> = Vec::with_capacity(self.schema.column_count());
        self.scan_batches(None, DEFAULT_BATCH_SIZE, |batch| {
            let agg_column = batch.column(column);
            for row in batch.selected_rows() {
                batch.gather_row_into(row, &mut rowbuf);
                if !filter(&rowbuf) {
                    continue;
                }
                if let Some(v) = agg_column[row].as_f64() {
                    sum += v;
                    count += 1;
                    min = min.min(v);
                    max = max.max(v);
                }
            }
        });
        (sum, count, min, max)
    }
}

impl std::fmt::Debug for ColumnTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnTable")
            .field("table", &self.schema.name())
            .field("live_rows", &self.live_row_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};
    use crate::value::Value;

    fn table() -> ColumnTable {
        let schema = TableSchema::new(
            "ORDERS",
            vec![
                ColumnDef::new("o_id", DataType::Int, false),
                ColumnDef::new("o_amount", DataType::Decimal, false),
                ColumnDef::new("o_status", DataType::Str, false),
            ],
            vec!["o_id"],
        )
        .unwrap();
        ColumnTable::new(Arc::new(schema))
    }

    fn order(id: i64, amount: i64, status: &str) -> Row {
        Row::new(vec![
            Value::Int(id),
            Value::Decimal(amount),
            Value::Str(status.into()),
        ])
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let t = table();
        t.apply_insert(&Key::int(1), &order(1, 500, "new"), 10, 1)
            .unwrap();
        t.apply_insert(&Key::int(2), &order(2, 700, "new"), 11, 2)
            .unwrap();
        assert_eq!(t.live_row_count(), 2);
        t.apply_update(&Key::int(1), &order(1, 900, "paid"), 12, 3)
            .unwrap();
        t.apply_delete(&Key::int(2), 13, 4).unwrap();
        assert_eq!(t.live_row_count(), 1);
        assert_eq!(t.slot_count(), 2, "deleted slots remain physically present");
        assert_eq!(t.applied_ts(), 13);
        assert_eq!(t.applied_lsn(), 4);

        let mut rows = Vec::new();
        t.scan_rows(|r| rows.push(r.clone()));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Decimal(900));
    }

    #[test]
    fn update_of_unknown_key_errors() {
        let t = table();
        assert!(matches!(
            t.apply_update(&Key::int(9), &order(9, 1, "x"), 1, 1),
            Err(StorageError::KeyNotFound { .. })
        ));
    }

    #[test]
    fn reapplied_insert_is_idempotent() {
        let t = table();
        t.apply_insert(&Key::int(1), &order(1, 500, "new"), 10, 1)
            .unwrap();
        t.apply_insert(&Key::int(1), &order(1, 650, "new"), 10, 1)
            .unwrap();
        assert_eq!(t.live_row_count(), 1);
        let mut amounts = Vec::new();
        t.scan_projected(&[1], |v| amounts.push(v[0].clone()));
        assert_eq!(amounts, vec![Value::Decimal(650)]);
    }

    #[test]
    fn projected_scan_only_returns_requested_columns() {
        let t = table();
        for i in 0..4 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64)
                .unwrap();
        }
        let mut widths = Vec::new();
        t.scan_projected(&[2, 0], |vals| widths.push(vals.len()));
        assert!(widths.iter().all(|&w| w == 2));
        assert_eq!(widths.len(), 4);
    }

    #[test]
    fn aggregate_column_computes_sum_count_min_max() {
        let t = table();
        for i in 1..=5i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64)
                .unwrap();
        }
        let (sum, count, min, max) = t.aggregate_column(1, |row| row[0].as_int().unwrap() >= 2);
        assert_eq!(count, 4);
        assert!((sum - (2.0 + 3.0 + 4.0 + 5.0)).abs() < 1e-9);
        assert!((min - 2.0).abs() < 1e-9);
        assert!((max - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stats_are_tracked() {
        let t = table();
        t.apply_insert(&Key::int(1), &order(1, 500, "new"), 10, 1)
            .unwrap();
        t.scan_rows(|_| {});
        let s = t.stats();
        assert_eq!(s.mutations_applied, 1);
        assert_eq!(s.scans, 1);
        assert_eq!(s.slots_examined, 1);
        assert_eq!(s.rows_scanned, 1);
    }

    #[test]
    fn empty_scan_is_a_counterless_noop() {
        let t = table();
        let examined = t.scan_rows(|_| panic!("no rows to visit"));
        assert_eq!(examined, 0);
        let s = t.stats();
        assert_eq!(s.scans, 0, "scanning an empty table is a no-op");
        assert_eq!(s.slots_examined, 0);
        assert_eq!(s.rows_scanned, 0);
    }

    #[test]
    fn deleted_slots_count_as_examined_but_not_scanned() {
        let t = table();
        for i in 0..6i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        t.apply_delete(&Key::int(2), 6, 7).unwrap();
        t.apply_delete(&Key::int(4), 6, 8).unwrap();
        let mut seen = 0;
        let examined = t.scan_rows(|_| seen += 1);
        assert_eq!(examined, 6, "deleted slots are still walked");
        assert_eq!(seen, 4);
        let s = t.stats();
        assert_eq!(s.slots_examined, 6);
        assert_eq!(s.rows_scanned, 4, "only live rows count as scanned");
    }

    #[test]
    fn empty_projection_still_visits_every_live_row() {
        let t = table();
        for i in 0..3i64 {
            t.apply_insert(&Key::int(i), &order(i, i, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        let mut visits = 0;
        let examined = t.scan_projected(&[], |values| {
            assert!(values.is_empty());
            visits += 1;
        });
        assert_eq!(examined, 3);
        assert_eq!(visits, 3, "zero-width batches keep their row count");
    }

    #[test]
    fn scan_batches_chunks_with_selection_and_partial_tail() {
        let t = table();
        for i in 0..10i64 {
            t.apply_insert(&Key::int(i), &order(i, i, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        t.apply_delete(&Key::int(1), 6, 11).unwrap();
        let mut batch_sizes = Vec::new();
        let mut selected = 0usize;
        let mut amounts = Vec::new();
        let examined = t.scan_batches(Some(&[1]), 4, |batch| {
            assert_eq!(batch.width(), 1, "projection narrows the batch");
            batch_sizes.push(batch.num_rows());
            selected += batch.selected_count();
            for row in batch.selected_rows() {
                amounts.push(batch.column(0)[row].clone());
            }
        });
        assert_eq!(examined, 10);
        assert_eq!(batch_sizes, vec![4, 4, 2], "partial final batch");
        assert_eq!(selected, 9, "deleted slot is deselected, not compacted");
        assert!(!amounts.contains(&Value::Decimal(1)));
        let s = t.stats();
        assert_eq!(s.scans, 1);
        assert_eq!(s.slots_examined, 10);
        assert_eq!(s.rows_scanned, 9);
    }
}

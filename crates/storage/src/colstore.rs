//! Column store.
//!
//! [`ColumnTable`] is the OLAP-facing storage structure: each column lives in
//! its own vector so analytical scans only touch the columns they project, the
//! way TiFlash (TiDB) or the MemSQL column store do.  The column store holds
//! the *latest committed* image of each row as of the replication watermark; it
//! is populated exclusively through the asynchronous replication log (see
//! [`crate::replication`]), never written directly by transactions.
//!
//! Slots are grouped into fixed-size **chunks** (see
//! [`crate::zonemap::DEFAULT_CHUNK_SIZE`]) and kept in two tiers (see
//! [`crate::delta`]): a mutable **delta** tail of plain column vectors that
//! absorbs replicated writes, and an immutable **main** prefix of sealed
//! [`MainChunk`]s whose columns are compressed ([`crate::encode`]).  Global
//! slot indices are stable across compaction: sealing the oldest full delta
//! chunk moves its data, never its position.  Writes that would mutate a main
//! slot in place (updates, idempotent insert replays) instead delete the main
//! version and re-insert into delta, so main chunks never change after
//! sealing.
//!
//! Two pruning structures are consulted before touching column data:
//! per-column **zone maps** ([`ChunkZone`]: min/max + null and live counts;
//! in delta, appends tighten, updates widen, deletes keep their
//! contributions) and a per-chunk **fingerprint filter**
//! ([`FingerprintFilter`]) over the live `(column, value)` pairs of sealed
//! chunks, used for equality predicates (built lazily for sealed delta
//! chunks, pinned at seal time for main chunks).  Both are conservative
//! supersets of the chunk's contents, so pruning can skip non-matching chunks
//! but never loses a matching row; compaction rebuilds both *tight* from the
//! surviving data.  Inside surviving main chunks, sargable predicates
//! additionally run on the encoded columns themselves, so only rows that can
//! still match are ever decoded.

use crate::batch::{ColumnBatch, DEFAULT_BATCH_SIZE};
use crate::delta::{seal_chunk, MainChunk};
use crate::encode::{plain_slice_bytes, Encoding};
use crate::error::{StorageError, StorageResult};
use crate::filter::{fingerprint_hash, FingerprintFilter};
use crate::key::Key;
use crate::row::Row;
use crate::schema::TableSchema;
use crate::zonemap::{ChunkZone, PruningMode, ScanOutcome, ScanPredicate, DEFAULT_CHUNK_SIZE};
use crate::Timestamp;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters exposed by a [`ColumnTable`].
///
/// Physical and logical scan work are tracked separately: `slots_examined`
/// counts every row slot a scan walked over (including deleted slots, the
/// quantity that drives the cost model), while `rows_scanned` counts only the
/// *live* rows actually handed to the consumer.  Slots inside pruned chunks
/// are neither examined nor scanned; the chunk counters record how much work
/// pruning skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnTableStats {
    /// Number of scans performed (scans of an empty table are no-ops and are
    /// not counted).
    pub scans: u64,
    /// Total row slots examined by scans, including deleted slots but
    /// excluding slots inside pruned chunks.
    pub slots_examined: u64,
    /// Live rows produced by scans (excludes deleted slots and rows
    /// deselected by encoded-predicate evaluation).
    pub rows_scanned: u64,
    /// Number of replication mutations applied.
    pub mutations_applied: u64,
    /// Chunks whose column data was touched by scans.
    pub chunks_scanned: u64,
    /// Chunks skipped because a zone map (or empty live count) excluded them.
    pub chunks_pruned_zonemap: u64,
    /// Chunks skipped because a fingerprint filter excluded an equality probe.
    pub chunks_pruned_filter: u64,
    /// Delta chunks sealed into the compressed main tier.
    pub chunks_compacted: u64,
}

#[derive(Debug, Default)]
struct Counters {
    scans: AtomicU64,
    slots_examined: AtomicU64,
    rows_scanned: AtomicU64,
    mutations_applied: AtomicU64,
    chunks_scanned: AtomicU64,
    chunks_pruned_zonemap: AtomicU64,
    chunks_pruned_filter: AtomicU64,
    chunks_compacted: AtomicU64,
}

/// Approximate resident memory of one [`ColumnTable`], split by tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryFootprint {
    /// Bytes actually resident: encoded main chunks plus the plain delta tail.
    pub bytes_resident: usize,
    /// Bytes the same slots would occupy with every tier unencoded.
    pub bytes_plain: usize,
    /// Sealed main-tier chunks.
    pub main_chunks: usize,
    /// Slots still in the mutable delta tail.
    pub delta_slots: usize,
}

impl MemoryFootprint {
    /// Plain bytes per resident byte (1.0 when nothing is stored or nothing
    /// is compressed).
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_resident == 0 {
            return 1.0;
        }
        self.bytes_plain as f64 / self.bytes_resident as f64
    }

    /// Accumulate another footprint (used to aggregate across tables).
    pub fn merge(&mut self, other: &MemoryFootprint) {
        self.bytes_resident += other.bytes_resident;
        self.bytes_plain += other.bytes_plain;
        self.main_chunks += other.main_chunks;
        self.delta_slots += other.delta_slots;
    }
}

struct ColumnData {
    /// Immutable compressed chunks: a chunk-aligned prefix of the slot space.
    main: Vec<MainChunk>,
    /// Delta tier: one vector per column holding the slots past the main
    /// prefix (delta-local index = global slot - main slot count).
    columns: Vec<Vec<crate::Value>>,
    /// Deletion markers for *every* slot, main and delta (global indexing).
    deleted: Vec<bool>,
    /// Primary key -> global slot position of the live row.
    pk_slots: HashMap<Key, usize>,
    /// Per-chunk zone maps, one entry per started chunk (global indexing).
    zones: Vec<ChunkZone>,
    /// Commit timestamp of the newest applied mutation (freshness watermark).
    applied_ts: Timestamp,
    /// Log sequence number of the newest applied mutation.
    applied_lsn: u64,
}

impl ColumnData {
    /// Slots covered by the sealed main tier.
    fn main_slots(&self, chunk_size: usize) -> usize {
        self.main.len() * chunk_size
    }
}

/// A table stored in columnar format, maintained by log replication.
pub struct ColumnTable {
    schema: Arc<TableSchema>,
    chunk_size: usize,
    data: RwLock<ColumnData>,
    /// Lazily built per-chunk fingerprint filters for sealed *delta* chunks
    /// (main chunks carry their own, built at seal time).  Entries are
    /// populated by scans (which hold the data read lock, so no writer can
    /// race the build) and cleared by in-place mutations (which hold the data
    /// write lock, so no stale filter can survive a mutation).  Deletes do
    /// not clear: a filter over a superset of the live values stays correct.
    filters: Mutex<Vec<Option<Arc<FingerprintFilter>>>>,
    counters: Counters,
}

impl ColumnTable {
    /// Create an empty column table for the schema.
    pub fn new(schema: Arc<TableSchema>) -> ColumnTable {
        ColumnTable::with_chunk_size(schema, DEFAULT_CHUNK_SIZE)
    }

    /// Create an empty column table with an explicit pruning chunk size
    /// (tests use small chunks to exercise pruning on small tables).
    pub fn with_chunk_size(schema: Arc<TableSchema>, chunk_size: usize) -> ColumnTable {
        let columns = schema.columns().iter().map(|_| Vec::new()).collect();
        ColumnTable {
            schema,
            chunk_size: chunk_size.max(1),
            data: RwLock::new(ColumnData {
                main: Vec::new(),
                columns,
                deleted: Vec::new(),
                pk_slots: HashMap::new(),
                zones: Vec::new(),
                applied_ts: 0,
                applied_lsn: 0,
            }),
            filters: Mutex::new(Vec::new()),
            counters: Counters::default(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Arc<TableSchema> {
        &self.schema
    }

    /// Slots per pruning chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of live (non-deleted) rows.
    pub fn live_row_count(&self) -> usize {
        self.data.read().pk_slots.len()
    }

    /// Number of slots (live + deleted) — the physical scan width.
    pub fn slot_count(&self) -> usize {
        self.data.read().deleted.len()
    }

    /// Number of sealed main-tier chunks.
    pub fn main_chunk_count(&self) -> usize {
        self.data.read().main.len()
    }

    /// Number of slots still in the mutable delta tail.
    pub fn delta_slot_count(&self) -> usize {
        let data = self.data.read();
        data.deleted.len() - data.main_slots(self.chunk_size)
    }

    /// Commit timestamp of the newest applied mutation.
    pub fn applied_ts(&self) -> Timestamp {
        self.data.read().applied_ts
    }

    /// Log sequence number of the newest applied mutation.
    pub fn applied_lsn(&self) -> u64 {
        self.data.read().applied_lsn
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ColumnTableStats {
        ColumnTableStats {
            scans: self.counters.scans.load(Ordering::Relaxed),
            slots_examined: self.counters.slots_examined.load(Ordering::Relaxed),
            rows_scanned: self.counters.rows_scanned.load(Ordering::Relaxed),
            mutations_applied: self.counters.mutations_applied.load(Ordering::Relaxed),
            chunks_scanned: self.counters.chunks_scanned.load(Ordering::Relaxed),
            chunks_pruned_zonemap: self.counters.chunks_pruned_zonemap.load(Ordering::Relaxed),
            chunks_pruned_filter: self.counters.chunks_pruned_filter.load(Ordering::Relaxed),
            chunks_compacted: self.counters.chunks_compacted.load(Ordering::Relaxed),
        }
    }

    /// Approximate resident memory, split by tier.  Main-chunk sizes were
    /// cached at seal time; the delta tail is measured on demand.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let data = self.data.read();
        let delta_bytes: usize = data.columns.iter().map(|c| plain_slice_bytes(c)).sum();
        let mut footprint = MemoryFootprint {
            bytes_resident: delta_bytes,
            bytes_plain: delta_bytes,
            main_chunks: data.main.len(),
            delta_slots: data.deleted.len() - data.main_slots(self.chunk_size),
        };
        for chunk in &data.main {
            footprint.bytes_resident += chunk.encoded_bytes;
            footprint.bytes_plain += chunk.plain_bytes;
        }
        footprint
    }

    /// Per-column tally of how many sealed main chunks use each encoding,
    /// in `[plain, dictionary, rle]` order (reporting / tests).
    pub fn main_encoding_census(&self) -> Vec<[usize; 3]> {
        let data = self.data.read();
        let mut census = vec![[0usize; 3]; self.schema.columns().len()];
        for chunk in &data.main {
            for (col, encoded) in chunk.columns.iter().enumerate() {
                let slot = match encoded.encoding() {
                    Encoding::Plain => 0,
                    Encoding::Dictionary => 1,
                    Encoding::Rle => 2,
                };
                census[col][slot] += 1;
            }
        }
        census
    }

    /// The zone map for `slot`'s chunk, growing the zone vector as the slot
    /// space grows.
    fn zone_for_slot(
        zones: &mut Vec<ChunkZone>,
        columns: usize,
        chunk_size: usize,
        slot: usize,
    ) -> &mut ChunkZone {
        let chunk = slot / chunk_size;
        while zones.len() <= chunk {
            zones.push(ChunkZone::new(columns));
        }
        &mut zones[chunk]
    }

    /// Drop the cached fingerprint filter of `slot`'s chunk after an in-place
    /// overwrite.  Callers hold the data write lock, so no concurrent scan
    /// can re-cache a stale filter.
    fn invalidate_filter(&self, slot: usize) {
        let chunk = slot / self.chunk_size;
        let mut cache = self.filters.lock();
        if let Some(entry) = cache.get_mut(chunk) {
            *entry = None;
        }
    }

    /// Append one row to the delta tail.  Caller updates `applied_ts` / LSN
    /// and the mutation counter.
    fn append_row(&self, data: &mut ColumnData, pk: &Key, row: &Row) {
        let columns = self.schema.column_count();
        for (col_idx, value) in row.values().iter().enumerate() {
            data.columns[col_idx].push(value.clone());
        }
        data.deleted.push(false);
        let slot = data.deleted.len() - 1;
        data.pk_slots.insert(pk.clone(), slot);
        let zone = Self::zone_for_slot(&mut data.zones, columns, self.chunk_size, slot);
        for (col_idx, value) in row.values().iter().enumerate() {
            zone.zones[col_idx].include(value);
        }
        zone.live_count += 1;
    }

    /// Retire the live version at `slot` (which lives in the immutable main
    /// tier) and append `row` as its replacement in delta.  Main chunks are
    /// never rewritten: their zone map keeps its (tight) bounds and only
    /// loses live count, and their filter stays a valid superset.
    fn supersede_main_row(&self, data: &mut ColumnData, pk: &Key, row: &Row, slot: usize) {
        data.deleted[slot] = true;
        let chunk = slot / self.chunk_size;
        data.zones[chunk].live_count = data.zones[chunk].live_count.saturating_sub(1);
        self.append_row(data, pk, row);
    }

    /// Apply an insert arriving from the replication log.
    pub fn apply_insert(
        &self,
        pk: &Key,
        row: &Row,
        commit_ts: Timestamp,
        lsn: u64,
    ) -> StorageResult<()> {
        self.schema.validate_row(row)?;
        let columns = self.schema.column_count();
        let mut data = self.data.write();
        let main_slots = data.main_slots(self.chunk_size);
        if let Some(&slot) = data.pk_slots.get(pk) {
            if slot < main_slots {
                // Idempotent re-apply against a sealed slot: delete +
                // re-insert, since main chunks are immutable.
                self.supersede_main_row(&mut data, pk, row, slot);
            } else {
                // Idempotent re-apply (e.g. replay after restart): overwrite.
                let delta_slot = slot - main_slots;
                for (col_idx, value) in row.values().iter().enumerate() {
                    data.columns[col_idx][delta_slot] = value.clone();
                }
                let was_deleted = std::mem::replace(&mut data.deleted[slot], false);
                let zone = Self::zone_for_slot(&mut data.zones, columns, self.chunk_size, slot);
                for (col_idx, value) in row.values().iter().enumerate() {
                    zone.zones[col_idx].include(value);
                }
                if was_deleted {
                    zone.live_count += 1;
                }
                self.invalidate_filter(slot);
            }
        } else {
            self.append_row(&mut data, pk, row);
        }
        data.applied_ts = data.applied_ts.max(commit_ts);
        data.applied_lsn = data.applied_lsn.max(lsn);
        self.counters
            .mutations_applied
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Apply an update arriving from the replication log.
    ///
    /// For a row still in delta, the chunk's zone map *widens* to include the
    /// new values (the old values' contribution is never removed, keeping
    /// the zone a conservative superset) and the chunk's fingerprint filter
    /// is invalidated.  For a row in the immutable main tier, the update
    /// becomes delete + re-insert into delta, leaving the sealed chunk — and
    /// its tight pruning metadata — untouched.
    pub fn apply_update(
        &self,
        pk: &Key,
        row: &Row,
        commit_ts: Timestamp,
        lsn: u64,
    ) -> StorageResult<()> {
        self.schema.validate_row(row)?;
        let columns = self.schema.column_count();
        let mut data = self.data.write();
        let main_slots = data.main_slots(self.chunk_size);
        let slot = *data
            .pk_slots
            .get(pk)
            .ok_or_else(|| StorageError::KeyNotFound {
                table: self.schema.name().to_string(),
                key: pk.to_string(),
            })?;
        if slot < main_slots {
            self.supersede_main_row(&mut data, pk, row, slot);
        } else {
            let delta_slot = slot - main_slots;
            for (col_idx, value) in row.values().iter().enumerate() {
                data.columns[col_idx][delta_slot] = value.clone();
            }
            let zone = Self::zone_for_slot(&mut data.zones, columns, self.chunk_size, slot);
            for (col_idx, value) in row.values().iter().enumerate() {
                zone.zones[col_idx].include(value);
            }
            self.invalidate_filter(slot);
        }
        data.applied_ts = data.applied_ts.max(commit_ts);
        data.applied_lsn = data.applied_lsn.max(lsn);
        self.counters
            .mutations_applied
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Apply a delete arriving from the replication log.
    ///
    /// Deletes only decrement the chunk's live count; the zone map and the
    /// fingerprint filter keep the deleted values' contributions (a superset
    /// stays a superset).  A chunk whose live count reaches zero is pruned
    /// outright by the scan path.  Works identically for both tiers.
    pub fn apply_delete(&self, pk: &Key, commit_ts: Timestamp, lsn: u64) -> StorageResult<()> {
        let columns = self.schema.column_count();
        let mut data = self.data.write();
        if let Some(slot) = data.pk_slots.remove(pk) {
            data.deleted[slot] = true;
            let zone = Self::zone_for_slot(&mut data.zones, columns, self.chunk_size, slot);
            zone.live_count = zone.live_count.saturating_sub(1);
        }
        data.applied_ts = data.applied_ts.max(commit_ts);
        data.applied_lsn = data.applied_lsn.max(lsn);
        self.counters
            .mutations_applied
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Seal the oldest full delta chunk into the compressed main tier.
    ///
    /// Returns `false` when the delta tail holds less than one full chunk
    /// (partial tail chunks are never sealed — they are still growing).  The
    /// rewrite re-encodes every column, rebuilds the chunk's zone map and
    /// fingerprint filter tight from the surviving live rows, and drops
    /// deleted payloads; global slot indices are unchanged, so readers see
    /// the exact same rows before and after.
    pub fn compact_chunk(&self) -> bool {
        let trace_start = if olxp_trace::enabled() {
            Some(olxp_trace::now_nanos())
        } else {
            None
        };
        let mut data = self.data.write();
        let main_slots = data.main_slots(self.chunk_size);
        if data.deleted.len() - main_slots < self.chunk_size {
            return false;
        }
        let chunk = data.main.len();
        let (sealed, zone) = {
            let column_slices: Vec<&[crate::Value]> =
                data.columns.iter().map(|c| &c[..self.chunk_size]).collect();
            seal_chunk(
                &column_slices,
                &data.deleted[main_slots..main_slots + self.chunk_size],
            )
        };
        data.main.push(sealed);
        data.zones[chunk] = zone;
        for column in data.columns.iter_mut() {
            column.drain(..self.chunk_size);
        }
        // The sealed chunk carries its own filter now; drop any lazily built
        // delta-era one so it cannot shadow the rebuilt (tighter) version.
        let mut cache = self.filters.lock();
        if let Some(entry) = cache.get_mut(chunk) {
            *entry = None;
        }
        self.counters
            .chunks_compacted
            .fetch_add(1, Ordering::Relaxed);
        if let Some(start) = trace_start {
            // One span per sealed chunk; the span's shard field carries the
            // main-tier chunk index, its txn field the chunk's row capacity.
            olxp_trace::record_span(
                olxp_trace::SpanCategory::Compaction,
                chunk as u32,
                self.chunk_size as u64,
                start,
            );
        }
        true
    }

    /// Seal every full delta chunk, one write-lock acquisition per chunk so
    /// readers interleave.  Returns the number of chunks sealed.
    pub fn compact(&self) -> usize {
        let mut sealed = 0;
        while self.compact_chunk() {
            sealed += 1;
        }
        sealed
    }

    /// The fingerprint filter for `chunk`: main chunks return the filter
    /// pinned at seal time; sealed delta chunks build one lazily from their
    /// live values.  Callers hold the data read lock, which keeps writers
    /// (and therefore invalidation) out while a lazy filter is built and
    /// cached.  Returns `None` when construction fails (the chunk simply
    /// gets no filter pruning).
    fn chunk_filter(&self, data: &ColumnData, chunk: usize) -> Option<Arc<FingerprintFilter>> {
        if let Some(main) = data.main.get(chunk) {
            return main.filter.clone();
        }
        let mut cache = self.filters.lock();
        if cache.len() <= chunk {
            cache.resize(chunk + 1, None);
        }
        if let Some(filter) = &cache[chunk] {
            return Some(Arc::clone(filter));
        }
        let main_slots = data.main_slots(self.chunk_size);
        let start = chunk * self.chunk_size;
        let end = ((chunk + 1) * self.chunk_size).min(data.deleted.len());
        let mut keys = Vec::with_capacity((end - start) * data.columns.len());
        for slot in start..end {
            if data.deleted[slot] {
                continue;
            }
            for (col_idx, column) in data.columns.iter().enumerate() {
                if let Some(key) = fingerprint_hash(col_idx, &column[slot - main_slots]) {
                    keys.push(key);
                }
            }
        }
        let filter = FingerprintFilter::build(&keys).map(Arc::new)?;
        cache[chunk] = Some(Arc::clone(&filter));
        Some(filter)
    }

    /// Decide whether one chunk can be skipped, charging the outcome counters.
    fn chunk_survives(
        &self,
        data: &ColumnData,
        chunk: usize,
        slots: usize,
        predicate: Option<&ScanPredicate>,
        mode: PruningMode,
        outcome: &mut ScanOutcome,
    ) -> bool {
        if mode != PruningMode::Off {
            let zone = &data.zones[chunk];
            if mode.uses_zonemaps() {
                let excluded = match predicate {
                    Some(p) => !zone.may_match(p),
                    None => zone.live_count == 0,
                };
                if excluded {
                    outcome.chunks_pruned_zonemap += 1;
                    return false;
                }
            }
            if mode.uses_filters() {
                // Filters only exist for sealed (fully populated) chunks:
                // a growing tail chunk would invalidate on every append.
                let sealed = (chunk + 1) * self.chunk_size <= slots;
                let probes: Vec<u64> = predicate
                    .map(|p| {
                        p.equality_predicates()
                            .filter_map(|eq| fingerprint_hash(eq.column, &eq.value))
                            .collect()
                    })
                    .unwrap_or_default();
                if sealed && !probes.is_empty() {
                    if let Some(filter) = self.chunk_filter(data, chunk) {
                        if probes.iter().any(|&key| !filter.contains(key)) {
                            outcome.chunks_pruned_filter += 1;
                            return false;
                        }
                    }
                }
            }
        }
        outcome.chunks_scanned += 1;
        true
    }

    /// Vectorized scan: hand out one [`ColumnBatch`] per chunk of up to
    /// `batch_size` row slots.
    ///
    /// Delta-tier batches borrow the column vectors directly (zero copy);
    /// main-tier batches own freshly decoded values.  Deleted slots are
    /// deselected through the batch's selection bitmap rather than skipped,
    /// so the batch layout matches the physical slot layout.  `projection`
    /// selects and orders the columns each batch exposes; `None` exposes
    /// every column in schema order.  Returns the number of slots examined.
    /// Scanning an empty table is a no-op and touches no counters.
    pub fn scan_batches<F>(&self, projection: Option<&[usize]>, batch_size: usize, f: F) -> usize
    where
        F: FnMut(&ColumnBatch<'_>),
    {
        self.scan_batches_pruned(projection, batch_size, None, PruningMode::Off, f)
            .slots_examined
    }

    /// Vectorized scan with chunk pruning and encoded predicate execution.
    ///
    /// Like [`ColumnTable::scan_batches`], but before touching column data
    /// each chunk is tested against `predicate` (an AND-conjunction of
    /// sargable predicates that is *necessary* for a row to match the query):
    /// zone maps exclude chunks whose value ranges cannot satisfy a conjunct,
    /// and fingerprint filters exclude sealed chunks that (probably) do not
    /// contain an equality probe.  Slots inside pruned chunks are neither
    /// examined nor scanned.  `mode` selects which structures are consulted;
    /// [`PruningMode::Off`] (or `predicate = None` in zone-map modes, which
    /// still skips fully deleted chunks) reproduces the unpruned scan.
    ///
    /// Surviving *delta* chunks are handed out run-coalesced in `batch_size`
    /// windows of zero-copy borrowed slices, exactly as before compaction.
    /// Surviving *main* chunks evaluate the predicate's conjuncts directly on
    /// their encoded columns (dictionary-code comparison, RLE run skipping),
    /// then decode only the still-selected positions into owned batches;
    /// windows in which no row survives are skipped without decoding at all.
    /// Every deselection is sound because the predicate is a *necessary*
    /// condition — consumers re-apply their full residual filter either way.
    pub fn scan_batches_pruned<F>(
        &self,
        projection: Option<&[usize]>,
        batch_size: usize,
        predicate: Option<&ScanPredicate>,
        mode: PruningMode,
        mut f: F,
    ) -> ScanOutcome
    where
        F: FnMut(&ColumnBatch<'_>),
    {
        let data = self.data.read();
        let slots = data.deleted.len();
        let mut outcome = ScanOutcome::default();
        if slots == 0 {
            return outcome;
        }
        let batch_size = batch_size.max(1);
        let all: Vec<usize>;
        let projection = match projection {
            Some(p) => p,
            None => {
                all = (0..self.schema.column_count()).collect();
                &all
            }
        };

        let num_chunks = slots.div_ceil(self.chunk_size);
        let survivors: Vec<bool> = (0..num_chunks)
            .map(|chunk| self.chunk_survives(&data, chunk, slots, predicate, mode, &mut outcome))
            .collect();

        let mut live_rows = 0u64;

        // Main tier: per-chunk encoded filtering + selective decode.
        for (chunk, main) in data.main.iter().enumerate() {
            if !survivors[chunk] {
                continue;
            }
            let base = chunk * self.chunk_size;
            outcome.slots_examined += self.chunk_size;
            let mut start = 0usize;
            while start < self.chunk_size {
                let end = (start + batch_size).min(self.chunk_size);
                let window = &data.deleted[base + start..base + end];
                let mut selection: Vec<bool> = window.iter().map(|&d| !d).collect();
                let live_before = selection.iter().filter(|&&s| s).count();
                if let Some(p) = predicate {
                    for cp in &p.predicates {
                        if let Some(column) = main.columns.get(cp.column) {
                            column.filter_range(cp.op, &cp.value, start, &mut selection);
                        }
                    }
                }
                let kept = selection.iter().filter(|&&s| s).count();
                outcome.rows_pruned_encoded += (live_before - kept) as u64;
                if kept > 0 {
                    let columns: Vec<Vec<crate::Value>> = projection
                        .iter()
                        .map(|&col| main.columns[col].decode_range(start, &selection))
                        .collect();
                    let mut batch = ColumnBatch::owned_sized(columns, end - start);
                    batch.set_selection(selection);
                    live_rows += kept as u64;
                    f(&batch);
                }
                start = end;
            }
        }

        // Delta tier: run-coalesced zero-copy windows, as before compaction.
        let main_slots = data.main_slots(self.chunk_size);
        let mut chunk = data.main.len();
        while chunk < num_chunks {
            if !survivors[chunk] {
                chunk += 1;
                continue;
            }
            let run_first = chunk;
            while chunk < num_chunks && survivors[chunk] {
                chunk += 1;
            }
            let run_start = run_first * self.chunk_size;
            let run_end = (chunk * self.chunk_size).min(slots);
            outcome.slots_examined += run_end - run_start;
            let mut start = run_start;
            while start < run_end {
                let end = (start + batch_size).min(run_end);
                let columns: Vec<&[crate::Value]> = projection
                    .iter()
                    .map(|&col| &data.columns[col][start - main_slots..end - main_slots])
                    .collect();
                let deleted = &data.deleted[start..end];
                let batch = if deleted.iter().any(|&d| d) {
                    let selection: Vec<bool> = deleted.iter().map(|&d| !d).collect();
                    let mut batch = ColumnBatch::borrowed_sized(columns, None, end - start);
                    batch.set_selection(selection);
                    batch
                } else {
                    ColumnBatch::borrowed_sized(columns, None, end - start)
                };
                live_rows += batch.selected_count() as u64;
                f(&batch);
                start = end;
            }
        }
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        self.counters
            .slots_examined
            .fetch_add(outcome.slots_examined as u64, Ordering::Relaxed);
        self.counters
            .rows_scanned
            .fetch_add(live_rows, Ordering::Relaxed);
        self.counters
            .chunks_scanned
            .fetch_add(outcome.chunks_scanned, Ordering::Relaxed);
        self.counters
            .chunks_pruned_zonemap
            .fetch_add(outcome.chunks_pruned_zonemap, Ordering::Relaxed);
        self.counters
            .chunks_pruned_filter
            .fetch_add(outcome.chunks_pruned_filter, Ordering::Relaxed);
        outcome
    }

    /// Scan live rows, materialising only the projected columns.
    ///
    /// `projection` holds column positions; the callback receives the projected
    /// values in projection order.  Returns the number of slots examined.
    pub fn scan_projected<F>(&self, projection: &[usize], mut f: F) -> usize
    where
        F: FnMut(&[crate::Value]),
    {
        let mut buf: Vec<crate::Value> = Vec::with_capacity(projection.len());
        self.scan_batches(Some(projection), DEFAULT_BATCH_SIZE, |batch| {
            for row in batch.selected_rows() {
                batch.gather_row_into(row, &mut buf);
                f(&buf);
            }
        })
    }

    /// Scan live rows materialising full rows (schema column order).
    pub fn scan_rows<F>(&self, mut f: F) -> usize
    where
        F: FnMut(&Row),
    {
        let mut buf: Vec<crate::Value> = Vec::with_capacity(self.schema.column_count());
        self.scan_batches(None, DEFAULT_BATCH_SIZE, |batch| {
            for row in batch.selected_rows() {
                batch.gather_row_into(row, &mut buf);
                f(&Row::new(std::mem::take(&mut buf)));
            }
        })
    }

    /// Aggregate one numeric column over live rows matching `filter`.
    ///
    /// Returns `(sum, count, min, max)` of the column interpreted as f64.
    /// Runs over the batch scan: only rows the filter accepts are gathered,
    /// and the aggregated column is read straight from the batch slice.
    pub fn aggregate_column<F>(&self, column: usize, filter: F) -> (f64, u64, f64, f64)
    where
        F: Fn(&[crate::Value]) -> bool,
    {
        let (mut sum, mut count) = (0.0f64, 0u64);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut rowbuf: Vec<crate::Value> = Vec::with_capacity(self.schema.column_count());
        self.scan_batches(None, DEFAULT_BATCH_SIZE, |batch| {
            let agg_column = batch.column(column);
            for row in batch.selected_rows() {
                batch.gather_row_into(row, &mut rowbuf);
                if !filter(&rowbuf) {
                    continue;
                }
                if let Some(v) = agg_column[row].as_f64() {
                    sum += v;
                    count += 1;
                    min = min.min(v);
                    max = max.max(v);
                }
            }
        });
        (sum, count, min, max)
    }
}

impl std::fmt::Debug for ColumnTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnTable")
            .field("table", &self.schema.name())
            .field("live_rows", &self.live_row_count())
            .field("main_chunks", &self.main_chunk_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};
    use crate::value::Value;
    use crate::zonemap::{ColumnPredicate, PredicateOp};

    fn table() -> ColumnTable {
        ColumnTable::new(Arc::new(schema()))
    }

    fn schema() -> TableSchema {
        TableSchema::new(
            "ORDERS",
            vec![
                ColumnDef::new("o_id", DataType::Int, false),
                ColumnDef::new("o_amount", DataType::Decimal, false),
                ColumnDef::new("o_status", DataType::Str, false),
            ],
            vec!["o_id"],
        )
        .unwrap()
    }

    fn small_chunk_table() -> ColumnTable {
        ColumnTable::with_chunk_size(Arc::new(schema()), 4)
    }

    fn order(id: i64, amount: i64, status: &str) -> Row {
        Row::new(vec![
            Value::Int(id),
            Value::Decimal(amount),
            Value::Str(status.into()),
        ])
    }

    fn eq(column: usize, value: Value) -> ScanPredicate {
        ScanPredicate::new(vec![
            ColumnPredicate::new(column, PredicateOp::Eq, value).unwrap()
        ])
    }

    /// Matching row ids: the pruner only yields a *superset* of matching
    /// chunks, so the predicate is re-applied per row exactly like the query
    /// executor's residual filter would.
    fn collect_ids(
        t: &ColumnTable,
        predicate: Option<&ScanPredicate>,
        mode: PruningMode,
    ) -> Vec<i64> {
        let mut ids = Vec::new();
        t.scan_batches_pruned(None, 3, predicate, mode, |batch| {
            for row in batch.selected_rows() {
                let keep = predicate.map_or(true, |p| {
                    p.predicates.iter().all(|cp| {
                        let v = &batch.column(cp.column)[row];
                        !v.is_null()
                            && match cp.op {
                                PredicateOp::Eq => v == &cp.value,
                                PredicateOp::Lt => v < &cp.value,
                                PredicateOp::Le => v <= &cp.value,
                                PredicateOp::Gt => v > &cp.value,
                                PredicateOp::Ge => v >= &cp.value,
                            }
                    })
                });
                if keep {
                    ids.push(batch.column(0)[row].as_int().unwrap());
                }
            }
        });
        ids.sort_unstable();
        ids
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let t = table();
        t.apply_insert(&Key::int(1), &order(1, 500, "new"), 10, 1)
            .unwrap();
        t.apply_insert(&Key::int(2), &order(2, 700, "new"), 11, 2)
            .unwrap();
        assert_eq!(t.live_row_count(), 2);
        t.apply_update(&Key::int(1), &order(1, 900, "paid"), 12, 3)
            .unwrap();
        t.apply_delete(&Key::int(2), 13, 4).unwrap();
        assert_eq!(t.live_row_count(), 1);
        assert_eq!(t.slot_count(), 2, "deleted slots remain physically present");
        assert_eq!(t.applied_ts(), 13);
        assert_eq!(t.applied_lsn(), 4);

        let mut rows = Vec::new();
        t.scan_rows(|r| rows.push(r.clone()));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Decimal(900));
    }

    #[test]
    fn update_of_unknown_key_errors() {
        let t = table();
        assert!(matches!(
            t.apply_update(&Key::int(9), &order(9, 1, "x"), 1, 1),
            Err(StorageError::KeyNotFound { .. })
        ));
    }

    #[test]
    fn reapplied_insert_is_idempotent() {
        let t = table();
        t.apply_insert(&Key::int(1), &order(1, 500, "new"), 10, 1)
            .unwrap();
        t.apply_insert(&Key::int(1), &order(1, 650, "new"), 10, 1)
            .unwrap();
        assert_eq!(t.live_row_count(), 1);
        let mut amounts = Vec::new();
        t.scan_projected(&[1], |v| amounts.push(v[0].clone()));
        assert_eq!(amounts, vec![Value::Decimal(650)]);
    }

    #[test]
    fn projected_scan_only_returns_requested_columns() {
        let t = table();
        for i in 0..4 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64)
                .unwrap();
        }
        let mut widths = Vec::new();
        t.scan_projected(&[2, 0], |vals| widths.push(vals.len()));
        assert!(widths.iter().all(|&w| w == 2));
        assert_eq!(widths.len(), 4);
    }

    #[test]
    fn aggregate_column_computes_sum_count_min_max() {
        let t = table();
        for i in 1..=5i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64)
                .unwrap();
        }
        let (sum, count, min, max) = t.aggregate_column(1, |row| row[0].as_int().unwrap() >= 2);
        assert_eq!(count, 4);
        assert!((sum - (2.0 + 3.0 + 4.0 + 5.0)).abs() < 1e-9);
        assert!((min - 2.0).abs() < 1e-9);
        assert!((max - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stats_are_tracked() {
        let t = table();
        t.apply_insert(&Key::int(1), &order(1, 500, "new"), 10, 1)
            .unwrap();
        t.scan_rows(|_| {});
        let s = t.stats();
        assert_eq!(s.mutations_applied, 1);
        assert_eq!(s.scans, 1);
        assert_eq!(s.slots_examined, 1);
        assert_eq!(s.rows_scanned, 1);
        assert_eq!(s.chunks_scanned, 1);
    }

    #[test]
    fn empty_scan_is_a_counterless_noop() {
        let t = table();
        let examined = t.scan_rows(|_| panic!("no rows to visit"));
        assert_eq!(examined, 0);
        let s = t.stats();
        assert_eq!(s.scans, 0, "scanning an empty table is a no-op");
        assert_eq!(s.slots_examined, 0);
        assert_eq!(s.rows_scanned, 0);
        assert_eq!(s.chunks_scanned, 0);
    }

    #[test]
    fn deleted_slots_count_as_examined_but_not_scanned() {
        let t = table();
        for i in 0..6i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        t.apply_delete(&Key::int(2), 6, 7).unwrap();
        t.apply_delete(&Key::int(4), 6, 8).unwrap();
        let mut seen = 0;
        let examined = t.scan_rows(|_| seen += 1);
        assert_eq!(examined, 6, "deleted slots are still walked");
        assert_eq!(seen, 4);
        let s = t.stats();
        assert_eq!(s.slots_examined, 6);
        assert_eq!(s.rows_scanned, 4, "only live rows count as scanned");
    }

    #[test]
    fn empty_projection_still_visits_every_live_row() {
        let t = table();
        for i in 0..3i64 {
            t.apply_insert(&Key::int(i), &order(i, i, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        let mut visits = 0;
        let examined = t.scan_projected(&[], |values| {
            assert!(values.is_empty());
            visits += 1;
        });
        assert_eq!(examined, 3);
        assert_eq!(visits, 3, "zero-width batches keep their row count");
    }

    #[test]
    fn scan_batches_chunks_with_selection_and_partial_tail() {
        let t = table();
        for i in 0..10i64 {
            t.apply_insert(&Key::int(i), &order(i, i, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        t.apply_delete(&Key::int(1), 6, 11).unwrap();
        let mut batch_sizes = Vec::new();
        let mut selected = 0usize;
        let mut amounts = Vec::new();
        let examined = t.scan_batches(Some(&[1]), 4, |batch| {
            assert_eq!(batch.width(), 1, "projection narrows the batch");
            batch_sizes.push(batch.num_rows());
            selected += batch.selected_count();
            for row in batch.selected_rows() {
                amounts.push(batch.column(0)[row].clone());
            }
        });
        assert_eq!(examined, 10);
        assert_eq!(batch_sizes, vec![4, 4, 2], "partial final batch");
        assert_eq!(selected, 9, "deleted slot is deselected, not compacted");
        assert!(!amounts.contains(&Value::Decimal(1)));
        let s = t.stats();
        assert_eq!(s.scans, 1);
        assert_eq!(s.slots_examined, 10);
        assert_eq!(s.rows_scanned, 9);
    }

    // -- chunk pruning ------------------------------------------------------

    #[test]
    fn zone_maps_prune_nonmatching_chunks() {
        // 12 append-ordered rows with chunk size 4: chunk ranges are
        // [0..4), [4..8), [8..12) on o_id.
        let t = small_chunk_table();
        for i in 0..12i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        let pred = eq(0, Value::Int(9));
        let mut rows = Vec::new();
        let outcome = t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::Both, |batch| {
            for row in batch.selected_rows() {
                rows.push(batch.column(0)[row].clone());
            }
        });
        assert_eq!(outcome.chunks_pruned_zonemap, 2);
        assert_eq!(outcome.chunks_scanned, 1);
        assert_eq!(
            outcome.slots_examined, 4,
            "only the surviving chunk is walked"
        );
        assert!(rows.contains(&Value::Int(9)));

        // Range predicate: o_id >= 8 keeps only the last chunk.
        let range = ScanPredicate::new(vec![ColumnPredicate::new(
            0,
            PredicateOp::Ge,
            Value::Int(8),
        )
        .unwrap()]);
        let outcome =
            t.scan_batches_pruned(None, 64, Some(&range), PruningMode::ZoneMapOnly, |_| {});
        assert_eq!(outcome.chunks_pruned_zonemap, 2);
        assert_eq!(outcome.slots_examined, 4);
    }

    #[test]
    fn pruned_slots_are_neither_examined_nor_scanned() {
        // Satellite regression: pinned counters for a pruned scan.
        let t = small_chunk_table();
        for i in 0..12i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        t.apply_delete(&Key::int(5), 6, 20).unwrap();
        let pred = eq(0, Value::Int(6));
        let mut seen = 0usize;
        let outcome = t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::Both, |batch| {
            seen += batch.selected_count();
        });
        assert_eq!(outcome.slots_examined, 4, "pruned slots are not examined");
        assert_eq!(seen, 3, "deleted slot in the surviving chunk is deselected");
        let s = t.stats();
        assert_eq!(s.scans, 1);
        assert_eq!(s.slots_examined, 4);
        assert_eq!(s.rows_scanned, 3, "pruned slots are not scanned either");
        assert_eq!(s.chunks_scanned, 1);
        assert_eq!(s.chunks_pruned_zonemap, 2);
        assert_eq!(s.chunks_pruned_filter, 0);
    }

    #[test]
    fn updates_widen_zones_conservatively() {
        let t = small_chunk_table();
        for i in 0..8i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        // Move row 1's amount far outside its chunk's original [0, 300]
        // amount range.
        t.apply_update(&Key::int(1), &order(1, 99_000, "paid"), 6, 9)
            .unwrap();
        // The widened zone must admit the new value...
        assert_eq!(
            collect_ids(&t, Some(&eq(1, Value::Decimal(99_000))), PruningMode::Both),
            vec![1]
        );
        // ...and conservatively still admit the overwritten old value: the
        // chunk is scanned (zone kept the old contribution) but the full
        // filter downstream finds nothing.
        let pred = eq(1, Value::Decimal(100));
        let outcome =
            t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::ZoneMapOnly, |_| {});
        assert_eq!(
            outcome.chunks_pruned_zonemap, 1,
            "second chunk still prunes"
        );
        assert_eq!(outcome.chunks_scanned, 1, "widened chunk still scans");
    }

    #[test]
    fn fully_deleted_chunks_prune_even_without_predicate() {
        let t = small_chunk_table();
        for i in 0..8i64 {
            t.apply_insert(&Key::int(i), &order(i, i, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        for i in 0..4i64 {
            t.apply_delete(&Key::int(i), 6, 10 + i as u64).unwrap();
        }
        let outcome = t.scan_batches_pruned(None, 64, None, PruningMode::Both, |_| {});
        assert_eq!(outcome.chunks_pruned_zonemap, 1, "dead chunk skipped");
        assert_eq!(outcome.slots_examined, 4);
        // The unpruned scan still walks the dead slots.
        assert_eq!(t.scan_batches(None, 64, |_| {}), 8);
    }

    #[test]
    fn fingerprint_filter_prunes_sealed_chunks_zone_maps_cannot() {
        // Amounts interleave across chunks so both chunks' zones span the
        // whole range, but each value lives in exactly one chunk.
        let t = small_chunk_table();
        let amounts = [10i64, 30, 50, 70, 20, 40, 60, 80];
        for (i, amount) in amounts.iter().enumerate() {
            t.apply_insert(
                &Key::int(i as i64),
                &order(i as i64, *amount, "new"),
                5,
                i as u64 + 1,
            )
            .unwrap();
        }
        let pred = eq(1, Value::Decimal(40));
        let outcome =
            t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::ZoneMapOnly, |_| {});
        assert_eq!(outcome.chunks_scanned, 2, "overlapping zones cannot prune");

        let outcome = t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::Both, |_| {});
        assert_eq!(outcome.chunks_pruned_filter, 1, "filter excludes chunk 0");
        assert_eq!(outcome.chunks_scanned, 1);
        assert_eq!(
            collect_ids(&t, Some(&pred), PruningMode::Both),
            collect_ids(&t, Some(&pred), PruningMode::Off),
            "pruned and unpruned scans agree"
        );
    }

    #[test]
    fn unsealed_tail_chunk_gets_no_filter() {
        let t = small_chunk_table();
        for i in 0..6i64 {
            t.apply_insert(
                &Key::int(i),
                &order(i, (i % 2) * 10, "new"),
                5,
                i as u64 + 1,
            )
            .unwrap();
        }
        // Probe a value absent everywhere: chunk 0 is sealed (filter prunes),
        // the 2-slot tail is not sealed, so it has no filter and scans.
        let pred = eq(1, Value::Decimal(7));
        let outcome = t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::FilterOnly, |_| {});
        assert_eq!(outcome.chunks_pruned_filter, 1);
        assert_eq!(outcome.chunks_scanned, 1);
        assert_eq!(outcome.slots_examined, 2);
    }

    #[test]
    fn filter_invalidated_by_update_never_loses_rows() {
        let t = small_chunk_table();
        for i in 0..8i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 10, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        let probe = eq(1, Value::Decimal(555));
        // First scan builds the filters; 555 is nowhere.
        assert_eq!(
            collect_ids(&t, Some(&probe), PruningMode::FilterOnly),
            Vec::<i64>::new()
        );
        // Update writes 555 into a sealed chunk; the stale filter must go.
        t.apply_update(&Key::int(2), &order(2, 555, "paid"), 6, 9)
            .unwrap();
        assert_eq!(
            collect_ids(&t, Some(&probe), PruningMode::FilterOnly),
            vec![2]
        );
        // Same for the idempotent-insert overwrite path.
        t.apply_insert(&Key::int(3), &order(3, 777, "new"), 7, 10)
            .unwrap();
        assert_eq!(
            collect_ids(&t, Some(&eq(1, Value::Decimal(777))), PruningMode::Both),
            vec![3]
        );
    }

    #[test]
    fn all_pruning_modes_agree_on_results() {
        let t = small_chunk_table();
        for i in 0..20i64 {
            t.apply_insert(
                &Key::int(i),
                &order(i, (i * 37) % 11 * 100, "new"),
                5,
                i as u64 + 1,
            )
            .unwrap();
        }
        t.apply_delete(&Key::int(7), 6, 30).unwrap();
        t.apply_update(&Key::int(3), &order(3, 4_200, "paid"), 7, 31)
            .unwrap();
        for pred in [
            eq(1, Value::Decimal(300)),
            eq(1, Value::Decimal(4_200)),
            ScanPredicate::new(vec![
                ColumnPredicate::new(0, PredicateOp::Ge, Value::Int(5)).unwrap(),
                ColumnPredicate::new(0, PredicateOp::Lt, Value::Int(15)).unwrap(),
            ]),
        ] {
            let baseline = collect_ids(&t, Some(&pred), PruningMode::Off);
            for mode in [
                PruningMode::ZoneMapOnly,
                PruningMode::FilterOnly,
                PruningMode::Both,
            ] {
                assert_eq!(
                    collect_ids(&t, Some(&pred), mode),
                    baseline,
                    "mode {mode:?}"
                );
            }
        }
    }

    // -- delta/main compaction ----------------------------------------------

    #[test]
    fn compaction_preserves_slots_rows_and_results() {
        let t = small_chunk_table();
        for i in 0..10i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        t.apply_delete(&Key::int(2), 6, 20).unwrap();
        t.apply_update(&Key::int(5), &order(5, 9_999, "paid"), 7, 21)
            .unwrap();
        let before = collect_ids(&t, None, PruningMode::Off);

        // 10 slots, chunk size 4: two full chunks seal, the 2-slot tail stays.
        assert_eq!(t.compact(), 2);
        assert_eq!(t.main_chunk_count(), 2);
        assert_eq!(t.delta_slot_count(), 2);
        assert_eq!(t.slot_count(), 10, "global slot space is unchanged");
        assert_eq!(t.live_row_count(), 9);
        assert_eq!(t.stats().chunks_compacted, 2);

        assert_eq!(collect_ids(&t, None, PruningMode::Off), before);
        for pred in [
            eq(0, Value::Int(5)),
            eq(1, Value::Decimal(9_999)),
            ScanPredicate::new(vec![ColumnPredicate::new(
                0,
                PredicateOp::Ge,
                Value::Int(3),
            )
            .unwrap()]),
        ] {
            for mode in [PruningMode::Off, PruningMode::Both] {
                assert_eq!(
                    collect_ids(&t, Some(&pred), mode),
                    collect_ids(&t, Some(&pred), PruningMode::Off),
                    "mode {mode:?}"
                );
            }
        }
        // Re-compacting with only a partial tail is a no-op.
        assert_eq!(t.compact(), 0);
    }

    #[test]
    fn compaction_rebuilds_tight_zones_and_filters() {
        // Satellite regression: pre-compaction pruning metadata has drifted
        // (deletes left stale contributions); the rewrite must shed them.
        let t = small_chunk_table();
        for i in 0..4i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        for i in 4..8i64 {
            t.apply_insert(&Key::int(i), &order(i, 10_000 + i, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        // Warm the lazy filter cache while amount 300 is still live, then
        // kill the chunk-0 maximum.  Deletes never invalidate (a superset
        // stays correct), so both structures are now stale supersets.
        let pred = eq(1, Value::Decimal(300));
        t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::Both, |_| {});
        t.apply_delete(&Key::int(3), 6, 20).unwrap();

        // Before compaction the widened superset admits the dead value: the
        // zone still covers 300 and the cached filter still hashes it.
        let outcome = t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::Both, |_| {});
        assert_eq!(outcome.chunks_scanned, 1, "stale metadata cannot prune");

        assert_eq!(t.compact(), 2);

        // After the rewrite both structures are tight: zone max is 200, the
        // filter no longer contains 300, so the probe prunes everything.
        let outcome =
            t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::ZoneMapOnly, |_| {});
        assert_eq!(outcome.chunks_pruned_zonemap, 2, "tight zones prune");
        assert_eq!(outcome.chunks_scanned, 0);
        let outcome = t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::FilterOnly, |_| {});
        assert_eq!(outcome.chunks_pruned_filter, 2, "rebuilt filters prune");
        // The surviving chunk-0 rows are still fully readable.
        assert_eq!(
            collect_ids(&t, Some(&eq(1, Value::Decimal(200))), PruningMode::Both),
            vec![2]
        );
    }

    #[test]
    fn updates_to_main_rows_become_delete_plus_reinsert() {
        let t = small_chunk_table();
        for i in 0..8i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64 + 1)
                .unwrap();
        }
        assert_eq!(t.compact(), 2);
        t.apply_update(&Key::int(1), &order(1, 7_777, "paid"), 6, 9)
            .unwrap();
        assert_eq!(t.live_row_count(), 8, "logical row count is unchanged");
        assert_eq!(t.slot_count(), 9, "the new version appends to delta");
        assert_eq!(t.main_chunk_count(), 2, "main chunks are never rewritten");
        assert_eq!(
            collect_ids(&t, Some(&eq(1, Value::Decimal(7_777))), PruningMode::Both),
            vec![1]
        );
        assert_eq!(
            collect_ids(&t, Some(&eq(1, Value::Decimal(100))), PruningMode::Both),
            Vec::<i64>::new(),
            "the superseded main version is invisible"
        );
        // The idempotent-insert overwrite path takes the same route.
        t.apply_insert(&Key::int(2), &order(2, 8_888, "new"), 7, 10)
            .unwrap();
        assert_eq!(t.live_row_count(), 8);
        assert_eq!(
            collect_ids(&t, Some(&eq(1, Value::Decimal(8_888))), PruningMode::Both),
            vec![2]
        );
        // Deleting a main-resident row works unchanged.
        t.apply_delete(&Key::int(0), 8, 11).unwrap();
        assert_eq!(t.live_row_count(), 7);
        assert_eq!(
            collect_ids(&t, None, PruningMode::Off),
            vec![1, 2, 3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn encoded_predicates_deselect_before_decode() {
        // Low-cardinality status strings dictionary-encode; the equality
        // probe then runs on codes and rows of other statuses never decode.
        let t = small_chunk_table();
        for i in 0..8i64 {
            let status = if i % 4 == 0 { "paid" } else { "new" };
            t.apply_insert(&Key::int(i), &order(i, i, status), 5, i as u64 + 1)
                .unwrap();
        }
        assert_eq!(t.compact(), 2);
        let pred = eq(2, Value::Str("paid".into()));
        let mut seen = 0usize;
        let outcome = t.scan_batches_pruned(None, 64, Some(&pred), PruningMode::Off, |batch| {
            seen += batch.selected_count();
        });
        assert_eq!(seen, 2, "only matching rows stay selected");
        assert_eq!(
            outcome.rows_pruned_encoded, 6,
            "non-matching rows skipped decode"
        );
        assert_eq!(collect_ids(&t, Some(&pred), PruningMode::Off), vec![0, 4]);
    }

    #[test]
    fn compaction_shrinks_resident_bytes() {
        let t = ColumnTable::with_chunk_size(Arc::new(schema()), 64);
        for i in 0..256i64 {
            // Low-cardinality status + clustered amounts: both compress.
            let status = format!("status-{}", i % 3);
            t.apply_insert(&Key::int(i), &order(i, i / 64, &status), 5, i as u64 + 1)
                .unwrap();
        }
        let before = t.memory_footprint();
        assert_eq!(before.main_chunks, 0);
        assert_eq!(before.bytes_resident, before.bytes_plain);
        assert_eq!(t.compact(), 4);
        let after = t.memory_footprint();
        assert_eq!(after.main_chunks, 4);
        assert_eq!(after.delta_slots, 0);
        assert!(
            after.bytes_resident < before.bytes_resident / 2,
            "encoded main is less than half the plain footprint \
             ({} vs {})",
            after.bytes_resident,
            before.bytes_resident
        );
        assert!(after.compression_ratio() > 2.0);
        assert_eq!(
            after.bytes_plain, before.bytes_plain,
            "plain size is layout-stable"
        );
    }

    #[test]
    fn mid_compaction_interleaving_never_loses_rows() {
        // Compact one chunk at a time, scanning between steps: every mix of
        // main and delta must return the same rows.
        let t = small_chunk_table();
        for i in 0..16i64 {
            t.apply_insert(
                &Key::int(i),
                &order(i, (i * 31) % 5 * 100, "new"),
                5,
                i as u64 + 1,
            )
            .unwrap();
        }
        t.apply_delete(&Key::int(6), 6, 30).unwrap();
        let baseline = collect_ids(&t, None, PruningMode::Off);
        let pred = eq(1, Value::Decimal(300));
        let pred_baseline = collect_ids(&t, Some(&pred), PruningMode::Off);
        while t.compact_chunk() {
            assert_eq!(collect_ids(&t, None, PruningMode::Off), baseline);
            for mode in [PruningMode::Off, PruningMode::Both] {
                assert_eq!(collect_ids(&t, Some(&pred), mode), pred_baseline);
            }
        }
        assert_eq!(t.main_chunk_count(), 4);
    }
}

//! Column store.
//!
//! [`ColumnTable`] is the OLAP-facing storage structure: each column lives in
//! its own vector so analytical scans only touch the columns they project, the
//! way TiFlash (TiDB) or the MemSQL column store do.  The column store holds
//! the *latest committed* image of each row as of the replication watermark; it
//! is populated exclusively through the asynchronous replication log (see
//! [`crate::replication`]), never written directly by transactions.

use crate::error::{StorageError, StorageResult};
use crate::key::Key;
use crate::row::Row;
use crate::schema::TableSchema;
use crate::Timestamp;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters exposed by a [`ColumnTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnTableStats {
    /// Number of scans performed.
    pub scans: u64,
    /// Total row-slots examined by scans (including deleted slots).
    pub rows_scanned: u64,
    /// Number of replication mutations applied.
    pub mutations_applied: u64,
}

#[derive(Debug, Default)]
struct Counters {
    scans: AtomicU64,
    rows_scanned: AtomicU64,
    mutations_applied: AtomicU64,
}

struct ColumnData {
    /// One vector per column, all the same length.
    columns: Vec<Vec<crate::Value>>,
    /// Deletion markers, same length as each column.
    deleted: Vec<bool>,
    /// Primary key -> slot position of the live row.
    pk_slots: HashMap<Key, usize>,
    /// Commit timestamp of the newest applied mutation (freshness watermark).
    applied_ts: Timestamp,
    /// Log sequence number of the newest applied mutation.
    applied_lsn: u64,
}

/// A table stored in columnar format, maintained by log replication.
pub struct ColumnTable {
    schema: Arc<TableSchema>,
    data: RwLock<ColumnData>,
    counters: Counters,
}

impl ColumnTable {
    /// Create an empty column table for the schema.
    pub fn new(schema: Arc<TableSchema>) -> ColumnTable {
        let columns = schema.columns().iter().map(|_| Vec::new()).collect();
        ColumnTable {
            schema,
            data: RwLock::new(ColumnData {
                columns,
                deleted: Vec::new(),
                pk_slots: HashMap::new(),
                applied_ts: 0,
                applied_lsn: 0,
            }),
            counters: Counters::default(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Arc<TableSchema> {
        &self.schema
    }

    /// Number of live (non-deleted) rows.
    pub fn live_row_count(&self) -> usize {
        self.data.read().pk_slots.len()
    }

    /// Number of slots (live + deleted) — the physical scan width.
    pub fn slot_count(&self) -> usize {
        self.data.read().deleted.len()
    }

    /// Commit timestamp of the newest applied mutation.
    pub fn applied_ts(&self) -> Timestamp {
        self.data.read().applied_ts
    }

    /// Log sequence number of the newest applied mutation.
    pub fn applied_lsn(&self) -> u64 {
        self.data.read().applied_lsn
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ColumnTableStats {
        ColumnTableStats {
            scans: self.counters.scans.load(Ordering::Relaxed),
            rows_scanned: self.counters.rows_scanned.load(Ordering::Relaxed),
            mutations_applied: self.counters.mutations_applied.load(Ordering::Relaxed),
        }
    }

    /// Apply an insert arriving from the replication log.
    pub fn apply_insert(
        &self,
        pk: &Key,
        row: &Row,
        commit_ts: Timestamp,
        lsn: u64,
    ) -> StorageResult<()> {
        self.schema.validate_row(row)?;
        let mut data = self.data.write();
        if let Some(&slot) = data.pk_slots.get(pk) {
            // Idempotent re-apply (e.g. replay after restart): overwrite.
            for (col_idx, value) in row.values().iter().enumerate() {
                data.columns[col_idx][slot] = value.clone();
            }
            data.deleted[slot] = false;
        } else {
            for (col_idx, value) in row.values().iter().enumerate() {
                data.columns[col_idx].push(value.clone());
            }
            data.deleted.push(false);
            let slot = data.deleted.len() - 1;
            data.pk_slots.insert(pk.clone(), slot);
        }
        data.applied_ts = data.applied_ts.max(commit_ts);
        data.applied_lsn = data.applied_lsn.max(lsn);
        self.counters.mutations_applied.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Apply an update arriving from the replication log.
    pub fn apply_update(
        &self,
        pk: &Key,
        row: &Row,
        commit_ts: Timestamp,
        lsn: u64,
    ) -> StorageResult<()> {
        self.schema.validate_row(row)?;
        let mut data = self.data.write();
        let slot = *data
            .pk_slots
            .get(pk)
            .ok_or_else(|| StorageError::KeyNotFound {
                table: self.schema.name().to_string(),
                key: pk.to_string(),
            })?;
        for (col_idx, value) in row.values().iter().enumerate() {
            data.columns[col_idx][slot] = value.clone();
        }
        data.applied_ts = data.applied_ts.max(commit_ts);
        data.applied_lsn = data.applied_lsn.max(lsn);
        self.counters.mutations_applied.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Apply a delete arriving from the replication log.
    pub fn apply_delete(&self, pk: &Key, commit_ts: Timestamp, lsn: u64) -> StorageResult<()> {
        let mut data = self.data.write();
        if let Some(slot) = data.pk_slots.remove(pk) {
            data.deleted[slot] = true;
        }
        data.applied_ts = data.applied_ts.max(commit_ts);
        data.applied_lsn = data.applied_lsn.max(lsn);
        self.counters.mutations_applied.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Scan live rows, materialising only the projected columns.
    ///
    /// `projection` holds column positions; the callback receives the projected
    /// values in projection order.  Returns the number of slots examined.
    pub fn scan_projected<F>(&self, projection: &[usize], mut f: F) -> usize
    where
        F: FnMut(&[crate::Value]),
    {
        let data = self.data.read();
        let slots = data.deleted.len();
        let mut buf: Vec<crate::Value> = Vec::with_capacity(projection.len());
        for slot in 0..slots {
            if data.deleted[slot] {
                continue;
            }
            buf.clear();
            for &col in projection {
                buf.push(data.columns[col][slot].clone());
            }
            f(&buf);
        }
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        self.counters
            .rows_scanned
            .fetch_add(slots as u64, Ordering::Relaxed);
        slots
    }

    /// Scan live rows materialising full rows (schema column order).
    pub fn scan_rows<F>(&self, mut f: F) -> usize
    where
        F: FnMut(&Row),
    {
        let all: Vec<usize> = (0..self.schema.column_count()).collect();
        self.scan_projected(&all, |values| {
            f(&Row::new(values.to_vec()));
        })
    }

    /// Aggregate one numeric column over live rows matching `filter`.
    ///
    /// Returns `(sum, count, min, max)` of the column interpreted as f64.
    pub fn aggregate_column<F>(&self, column: usize, filter: F) -> (f64, u64, f64, f64)
    where
        F: Fn(&[crate::Value]) -> bool,
    {
        let data = self.data.read();
        let slots = data.deleted.len();
        let (mut sum, mut count) = (0.0f64, 0u64);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        let width = self.schema.column_count();
        let mut rowbuf: Vec<crate::Value> = Vec::with_capacity(width);
        for slot in 0..slots {
            if data.deleted[slot] {
                continue;
            }
            rowbuf.clear();
            for col in 0..width {
                rowbuf.push(data.columns[col][slot].clone());
            }
            if !filter(&rowbuf) {
                continue;
            }
            if let Some(v) = data.columns[column][slot].as_f64() {
                sum += v;
                count += 1;
                min = min.min(v);
                max = max.max(v);
            }
        }
        self.counters.scans.fetch_add(1, Ordering::Relaxed);
        self.counters
            .rows_scanned
            .fetch_add(slots as u64, Ordering::Relaxed);
        (sum, count, min, max)
    }
}

impl std::fmt::Debug for ColumnTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnTable")
            .field("table", &self.schema.name())
            .field("live_rows", &self.live_row_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};
    use crate::value::Value;

    fn table() -> ColumnTable {
        let schema = TableSchema::new(
            "ORDERS",
            vec![
                ColumnDef::new("o_id", DataType::Int, false),
                ColumnDef::new("o_amount", DataType::Decimal, false),
                ColumnDef::new("o_status", DataType::Str, false),
            ],
            vec!["o_id"],
        )
        .unwrap();
        ColumnTable::new(Arc::new(schema))
    }

    fn order(id: i64, amount: i64, status: &str) -> Row {
        Row::new(vec![
            Value::Int(id),
            Value::Decimal(amount),
            Value::Str(status.into()),
        ])
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let t = table();
        t.apply_insert(&Key::int(1), &order(1, 500, "new"), 10, 1).unwrap();
        t.apply_insert(&Key::int(2), &order(2, 700, "new"), 11, 2).unwrap();
        assert_eq!(t.live_row_count(), 2);
        t.apply_update(&Key::int(1), &order(1, 900, "paid"), 12, 3).unwrap();
        t.apply_delete(&Key::int(2), 13, 4).unwrap();
        assert_eq!(t.live_row_count(), 1);
        assert_eq!(t.slot_count(), 2, "deleted slots remain physically present");
        assert_eq!(t.applied_ts(), 13);
        assert_eq!(t.applied_lsn(), 4);

        let mut rows = Vec::new();
        t.scan_rows(|r| rows.push(r.clone()));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Decimal(900));
    }

    #[test]
    fn update_of_unknown_key_errors() {
        let t = table();
        assert!(matches!(
            t.apply_update(&Key::int(9), &order(9, 1, "x"), 1, 1),
            Err(StorageError::KeyNotFound { .. })
        ));
    }

    #[test]
    fn reapplied_insert_is_idempotent() {
        let t = table();
        t.apply_insert(&Key::int(1), &order(1, 500, "new"), 10, 1).unwrap();
        t.apply_insert(&Key::int(1), &order(1, 650, "new"), 10, 1).unwrap();
        assert_eq!(t.live_row_count(), 1);
        let mut amounts = Vec::new();
        t.scan_projected(&[1], |v| amounts.push(v[0].clone()));
        assert_eq!(amounts, vec![Value::Decimal(650)]);
    }

    #[test]
    fn projected_scan_only_returns_requested_columns() {
        let t = table();
        for i in 0..4 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64)
                .unwrap();
        }
        let mut widths = Vec::new();
        t.scan_projected(&[2, 0], |vals| widths.push(vals.len()));
        assert!(widths.iter().all(|&w| w == 2));
        assert_eq!(widths.len(), 4);
    }

    #[test]
    fn aggregate_column_computes_sum_count_min_max() {
        let t = table();
        for i in 1..=5i64 {
            t.apply_insert(&Key::int(i), &order(i, i * 100, "new"), 5, i as u64)
                .unwrap();
        }
        let (sum, count, min, max) = t.aggregate_column(1, |row| row[0].as_int().unwrap() >= 2);
        assert_eq!(count, 4);
        assert!((sum - (2.0 + 3.0 + 4.0 + 5.0)).abs() < 1e-9);
        assert!((min - 2.0).abs() < 1e-9);
        assert!((max - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stats_are_tracked() {
        let t = table();
        t.apply_insert(&Key::int(1), &order(1, 500, "new"), 10, 1).unwrap();
        t.scan_rows(|_| {});
        let s = t.stats();
        assert_eq!(s.mutations_applied, 1);
        assert_eq!(s.scans, 1);
        assert!(s.rows_scanned >= 1);
    }
}

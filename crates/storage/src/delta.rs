//! Delta/main tiering for the column store.
//!
//! [`crate::ColumnTable`] keeps its slots in two tiers, the log-structured
//! HTAP layout of TiFlash-style stores:
//!
//! * the **delta** tier — the mutable tail of plain column vectors that
//!   absorbs replicated writes (appends, in-place overwrites);
//! * the **main** tier — an immutable, chunk-aligned prefix of
//!   [`MainChunk`]s whose columns are compressed with the encodings of
//!   [`crate::encode`].
//!
//! Compaction ([`seal_chunk`]) migrates the oldest *full* delta chunk into
//! main.  The rewrite is also when pruning metadata stops drifting: the
//! chunk's zone map is rebuilt *tight* from the surviving live values
//! (updates widened it, deletes left stale contributions) and the fingerprint
//! filter is rebuilt from the live `(column, value)` pairs and pinned to the
//! chunk — main chunks never mutate in place, so neither structure can go
//! stale again.  Deleted slots are encoded as [`Value::Null`] placeholders:
//! they stay physically present (global slot indices never change) but carry
//! no payload.

use crate::encode::EncodedColumn;
use crate::filter::{fingerprint_hash, FingerprintFilter};
use crate::value::Value;
use crate::zonemap::ChunkZone;
use std::sync::Arc;

/// One sealed, immutable chunk of the main tier.
#[derive(Debug)]
pub struct MainChunk {
    /// One encoded column per schema column, all covering `chunk_size` slots.
    pub columns: Vec<EncodedColumn>,
    /// Fingerprint filter over the live `(column, value)` pairs at seal time,
    /// or `None` when construction failed or the chunk was empty.  Built
    /// eagerly: main chunks are immutable, so the filter never invalidates
    /// (later deletes only shrink the live set, which keeps it a superset).
    pub filter: Option<Arc<FingerprintFilter>>,
    /// Approximate resident bytes of the encoded columns.
    pub encoded_bytes: usize,
    /// Approximate resident bytes the same slots would occupy unencoded.
    pub plain_bytes: usize,
}

impl MainChunk {
    /// Number of row slots the chunk covers.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, EncodedColumn::len)
    }

    /// True when the chunk covers no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Seal one full delta chunk into a [`MainChunk`], rebuilding its pruning
/// metadata from the actual surviving data.
///
/// `columns` are the chunk's slots of every schema column (all the same
/// length) and `deleted` the matching deletion markers.  Deleted slots are
/// masked to [`Value::Null`] before encoding — their payloads are dropped,
/// their positions preserved — and contribute to neither the rebuilt zone map
/// nor the rebuilt filter, which is what makes post-compaction bounds tight.
pub fn seal_chunk(columns: &[&[Value]], deleted: &[bool]) -> (MainChunk, ChunkZone) {
    let mut zone = ChunkZone::new(columns.len());
    zone.live_count = deleted.iter().filter(|&&d| !d).count() as u64;

    let mut filter_keys = Vec::new();
    let mut encoded = Vec::with_capacity(columns.len());
    let mut masked: Vec<Value> = Vec::with_capacity(deleted.len());
    let (mut encoded_bytes, mut plain_bytes) = (0usize, 0usize);
    for (col_idx, column) in columns.iter().enumerate() {
        masked.clear();
        for (value, &dead) in column.iter().zip(deleted) {
            if dead {
                masked.push(Value::Null);
            } else {
                zone.zones[col_idx].include(value);
                if let Some(key) = fingerprint_hash(col_idx, value) {
                    filter_keys.push(key);
                }
                masked.push(value.clone());
            }
        }
        let col = EncodedColumn::encode(&masked);
        encoded_bytes += col.encoded_bytes();
        plain_bytes += col.plain_bytes();
        encoded.push(col);
    }

    // A fully dead chunk needs no filter: the zero live count already prunes
    // it, and an empty filter would only answer spurious maybes.
    let filter = if filter_keys.is_empty() {
        None
    } else {
        FingerprintFilter::build(&filter_keys).map(Arc::new)
    };
    let chunk = MainChunk {
        columns: encoded,
        filter,
        encoded_bytes,
        plain_bytes,
    };
    (chunk, zone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoding;
    use crate::zonemap::{ColumnPredicate, PredicateOp, ScanPredicate};

    #[test]
    fn seal_rebuilds_tight_zones_and_live_counts() {
        let ids: Vec<Value> = (0..8).map(Value::Int).collect();
        let amounts: Vec<Value> = (0..8).map(|i| Value::Int(i * 100)).collect();
        let mut deleted = vec![false; 8];
        deleted[0] = true;
        deleted[7] = true;
        let (chunk, zone) = seal_chunk(&[&ids, &amounts], &deleted);
        assert_eq!(chunk.len(), 8);
        assert_eq!(zone.live_count, 6);
        // Bounds cover only the surviving rows 1..=6.
        assert_eq!(zone.zones[0].min, Some(Value::Int(1)));
        assert_eq!(zone.zones[0].max, Some(Value::Int(6)));
        assert_eq!(zone.zones[1].max, Some(Value::Int(600)));
        assert_eq!(zone.zones[0].null_count, 0, "masked slots are not NULLs");
    }

    #[test]
    fn sealed_filter_covers_live_values_only() {
        let ids: Vec<Value> = (0..64).map(Value::Int).collect();
        let mut deleted = vec![false; 64];
        deleted[10] = true;
        let (chunk, _) = seal_chunk(&[&ids], &deleted);
        let filter = chunk.filter.expect("filter builds");
        assert!(filter.contains(fingerprint_hash(0, &Value::Int(20)).unwrap()));
        // No false negatives is the only guarantee, but a single dropped key
        // on a 64-key build is overwhelmingly likely to probe negative.
        let zone_probe = ScanPredicate::new(vec![ColumnPredicate::new(
            0,
            PredicateOp::Eq,
            Value::Int(10),
        )
        .unwrap()]);
        assert!(!zone_probe.is_empty());
    }

    #[test]
    fn deleted_payloads_are_dropped_by_the_rewrite() {
        // A chunk of fat strings where half the rows died: the masked
        // encoding must not retain the dead payloads.
        let values: Vec<Value> = (0..32)
            .map(|i| Value::Str(format!("payload-{i:0>60}")))
            .collect();
        let deleted: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        let (chunk, zone) = seal_chunk(&[&values], &deleted);
        assert_eq!(zone.live_count, 16);
        let full_plain: usize = values.len() * std::mem::size_of::<Value>()
            + values
                .iter()
                .map(|v| match v {
                    Value::Str(s) => s.len(),
                    _ => 0,
                })
                .sum::<usize>();
        assert!(
            chunk.plain_bytes < full_plain,
            "dead payloads no longer count"
        );
        assert_eq!(
            chunk.columns[0].decode_range(0, &[true; 32])[0],
            Value::Null
        );
        assert_eq!(chunk.columns[0].decode_range(0, &[true; 32])[1], values[1]);
    }

    #[test]
    fn empty_live_set_still_seals() {
        let ids: Vec<Value> = (0..4).map(Value::Int).collect();
        let (chunk, zone) = seal_chunk(&[&ids], &[true; 4]);
        assert_eq!(zone.live_count, 0);
        assert_eq!(zone.zones[0].min, None);
        assert!(chunk.filter.is_none(), "no live keys, no filter");
        // All-placeholder columns compress to a single NULL run.
        assert_eq!(chunk.columns[0].encoding(), Encoding::Rle);
    }
}

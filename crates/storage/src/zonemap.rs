//! Per-chunk zone maps and the sargable-predicate vocabulary for chunk
//! pruning on the analytical scan path.
//!
//! A [`ChunkZone`] summarises one fixed-size slot range ("chunk") of a
//! [`ColumnTable`](crate::ColumnTable): per column the min/max of every
//! non-null value ever written to the chunk plus a null count, and per chunk
//! a live-row count.  The summaries are maintained incrementally:
//!
//! - **append tightens** — a freshly appended value expands min/max to
//!   include exactly that value, so a chunk filled by appends has tight
//!   bounds;
//! - **update widens** — an in-place overwrite expands the bounds to include
//!   the *new* value but never removes the old value's contribution, so the
//!   zone stays a conservative superset of the chunk's history;
//! - **delete keeps contributions** — deleting a row only decrements the
//!   live count; the zone still covers the deleted values.  A chunk whose
//!   live count reaches zero is pruned outright.
//!
//! The superset property is what makes pruning safe: a zone check may say
//! "might match" for a chunk that no longer matches, but never "cannot
//! match" for one that does.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Number of slots per pruning chunk in a [`ColumnTable`](crate::ColumnTable).
pub const DEFAULT_CHUNK_SIZE: usize = 1024;

/// Which pruning structures a scan consults before touching column data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PruningMode {
    /// No pruning: every chunk is scanned (the pre-pruning behaviour).
    Off,
    /// Zone maps only (min/max + live counts).
    ZoneMapOnly,
    /// Fingerprint filters only (equality predicates on sealed chunks).
    FilterOnly,
    /// Zone maps first, then fingerprint filters.
    #[default]
    Both,
}

impl PruningMode {
    /// Whether zone maps are consulted in this mode.
    pub fn uses_zonemaps(self) -> bool {
        matches!(self, PruningMode::ZoneMapOnly | PruningMode::Both)
    }

    /// Whether fingerprint filters are consulted in this mode.
    pub fn uses_filters(self) -> bool {
        matches!(self, PruningMode::FilterOnly | PruningMode::Both)
    }

    /// Parse an environment-variable / CLI spelling of the mode.
    pub fn parse(value: &str) -> Option<PruningMode> {
        match value.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" | "false" => Some(PruningMode::Off),
            "zonemap" | "zonemaps" | "zone" => Some(PruningMode::ZoneMapOnly),
            "filter" | "filters" | "fingerprint" => Some(PruningMode::FilterOnly),
            "both" | "on" | "1" | "true" => Some(PruningMode::Both),
            _ => None,
        }
    }

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PruningMode::Off => "off",
            PruningMode::ZoneMapOnly => "zonemap",
            PruningMode::FilterOnly => "filter",
            PruningMode::Both => "both",
        }
    }
}

/// Comparison operator of a sargable predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateOp {
    /// `column = value`
    Eq,
    /// `column < value`
    Lt,
    /// `column <= value`
    Le,
    /// `column > value`
    Gt,
    /// `column >= value`
    Ge,
}

/// One sargable conjunct: `column <op> value`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPredicate {
    /// Column position in the table schema.
    pub column: usize,
    /// Comparison operator.
    pub op: PredicateOp,
    /// Literal to compare against (never `Value::Null`).
    pub value: Value,
}

impl ColumnPredicate {
    /// Build a predicate; returns `None` for a NULL literal (NULL comparisons
    /// match nothing, but the full filter downstream already handles that —
    /// the pruner simply has nothing useful to say).
    pub fn new(column: usize, op: PredicateOp, value: Value) -> Option<ColumnPredicate> {
        if matches!(value, Value::Null) {
            return None;
        }
        Some(ColumnPredicate { column, op, value })
    }
}

/// An AND-conjunction of sargable predicates, extracted from a query filter.
///
/// The conjunction is a *necessary* condition on matching rows, not a
/// sufficient one: non-sargable parts of the original filter are simply
/// dropped, and the full filter is still applied to every surviving row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanPredicate {
    /// Conjuncts; a row can only match the query if it satisfies all of them.
    pub predicates: Vec<ColumnPredicate>,
}

impl ScanPredicate {
    /// A predicate with no conjuncts (prunes nothing beyond empty chunks).
    pub fn new(predicates: Vec<ColumnPredicate>) -> ScanPredicate {
        ScanPredicate { predicates }
    }

    /// Whether the predicate constrains anything.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The equality conjuncts, the shape fingerprint filters can test.
    pub fn equality_predicates(&self) -> impl Iterator<Item = &ColumnPredicate> {
        self.predicates.iter().filter(|p| p.op == PredicateOp::Eq)
    }
}

/// Zone summary of one `(chunk, column)` pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnZone {
    /// Smallest non-null value ever written to the chunk's column, if any.
    pub min: Option<Value>,
    /// Largest non-null value ever written to the chunk's column, if any.
    pub max: Option<Value>,
    /// Number of NULLs ever written to the chunk's column.
    pub null_count: u64,
}

impl ColumnZone {
    /// Fold one written value into the zone (append or update path).
    pub fn include(&mut self, value: &Value) {
        if matches!(value, Value::Null) {
            self.null_count += 1;
            return;
        }
        match &self.min {
            Some(min) if value >= min => {}
            _ => self.min = Some(value.clone()),
        }
        match &self.max {
            Some(max) if value <= max => {}
            _ => self.max = Some(value.clone()),
        }
    }

    /// Can any value covered by this zone satisfy `<op> probe`?
    ///
    /// `false` means *provably not* — the chunk can be skipped.  A zone that
    /// never saw a non-null value cannot satisfy any comparison (NULL
    /// comparisons are false).
    pub fn may_match(&self, op: PredicateOp, probe: &Value) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            return false;
        };
        match op {
            PredicateOp::Eq => min <= probe && probe <= max,
            PredicateOp::Lt => min < probe,
            PredicateOp::Le => min <= probe,
            PredicateOp::Gt => max > probe,
            PredicateOp::Ge => max >= probe,
        }
    }
}

/// Zone summary of one chunk: per-column zones plus a live-row count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkZone {
    /// One zone per schema column.
    pub zones: Vec<ColumnZone>,
    /// Number of live (non-deleted) rows currently in the chunk.
    pub live_count: u64,
}

impl ChunkZone {
    /// An empty zone for a table with `columns` columns.
    pub fn new(columns: usize) -> ChunkZone {
        ChunkZone {
            zones: vec![ColumnZone::default(); columns],
            live_count: 0,
        }
    }

    /// Can any live row in this chunk satisfy every conjunct of `predicate`?
    pub fn may_match(&self, predicate: &ScanPredicate) -> bool {
        if self.live_count == 0 {
            return false;
        }
        predicate
            .predicates
            .iter()
            .all(|p| match self.zones.get(p.column) {
                Some(zone) => zone.may_match(p.op, &p.value),
                None => true,
            })
    }
}

/// Outcome of one (possibly pruned) chunked scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Physical slots actually visited (live or deleted) in surviving chunks.
    pub slots_examined: usize,
    /// Chunks whose column data was touched.
    pub chunks_scanned: u64,
    /// Chunks skipped because a zone map (or empty live count) excluded them.
    pub chunks_pruned_zonemap: u64,
    /// Chunks skipped because a fingerprint filter excluded an equality probe.
    pub chunks_pruned_filter: u64,
    /// Live rows in surviving *main-tier* chunks that encoded-predicate
    /// evaluation (dictionary-code comparison, RLE run skipping) deselected
    /// before any value was decoded.
    pub rows_pruned_encoded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn include_tracks_min_max_and_nulls() {
        let mut zone = ColumnZone::default();
        zone.include(&Value::Int(5));
        zone.include(&Value::Int(2));
        zone.include(&Value::Int(9));
        zone.include(&Value::Null);
        assert_eq!(zone.min, Some(Value::Int(2)));
        assert_eq!(zone.max, Some(Value::Int(9)));
        assert_eq!(zone.null_count, 1);
    }

    #[test]
    fn may_match_brackets_each_operator() {
        let mut zone = ColumnZone::default();
        zone.include(&Value::Int(10));
        zone.include(&Value::Int(20));

        assert!(zone.may_match(PredicateOp::Eq, &Value::Int(10)));
        assert!(zone.may_match(PredicateOp::Eq, &Value::Int(15)));
        assert!(!zone.may_match(PredicateOp::Eq, &Value::Int(9)));
        assert!(!zone.may_match(PredicateOp::Eq, &Value::Int(21)));

        assert!(zone.may_match(PredicateOp::Lt, &Value::Int(11)));
        assert!(!zone.may_match(PredicateOp::Lt, &Value::Int(10)));
        assert!(zone.may_match(PredicateOp::Le, &Value::Int(10)));
        assert!(!zone.may_match(PredicateOp::Le, &Value::Int(9)));

        assert!(zone.may_match(PredicateOp::Gt, &Value::Int(19)));
        assert!(!zone.may_match(PredicateOp::Gt, &Value::Int(20)));
        assert!(zone.may_match(PredicateOp::Ge, &Value::Int(20)));
        assert!(!zone.may_match(PredicateOp::Ge, &Value::Int(21)));
    }

    #[test]
    fn all_null_zone_matches_nothing() {
        let mut zone = ColumnZone::default();
        zone.include(&Value::Null);
        for op in [
            PredicateOp::Eq,
            PredicateOp::Lt,
            PredicateOp::Le,
            PredicateOp::Gt,
            PredicateOp::Ge,
        ] {
            assert!(!zone.may_match(op, &Value::Int(0)));
        }
    }

    #[test]
    fn mixed_numeric_types_compare_by_value() {
        // Value's Ord compares numerics cross-variant (Decimal stores cents).
        let mut zone = ColumnZone::default();
        zone.include(&Value::Decimal(1000)); // 10.00
        zone.include(&Value::Decimal(2000)); // 20.00
        assert!(zone.may_match(PredicateOp::Eq, &Value::Int(15)));
        assert!(!zone.may_match(PredicateOp::Eq, &Value::Int(25)));
    }

    #[test]
    fn chunk_zone_requires_every_conjunct() {
        let mut chunk = ChunkZone::new(2);
        chunk.live_count = 4;
        chunk.zones[0].include(&Value::Int(1));
        chunk.zones[0].include(&Value::Int(100));
        chunk.zones[1].include(&Value::Int(5));

        let p0 = ColumnPredicate::new(0, PredicateOp::Eq, Value::Int(50)).unwrap();
        let p1 = ColumnPredicate::new(1, PredicateOp::Gt, Value::Int(10)).unwrap();
        assert!(chunk.may_match(&ScanPredicate::new(vec![p0.clone()])));
        assert!(!chunk.may_match(&ScanPredicate::new(vec![p1.clone()])));
        assert!(!chunk.may_match(&ScanPredicate::new(vec![p0, p1])));
    }

    #[test]
    fn empty_chunk_never_matches() {
        let chunk = ChunkZone::new(1);
        assert!(!chunk.may_match(&ScanPredicate::default()));
    }

    #[test]
    fn null_literals_are_rejected() {
        assert!(ColumnPredicate::new(0, PredicateOp::Eq, Value::Null).is_none());
    }

    #[test]
    fn pruning_mode_parse_and_flags() {
        assert_eq!(PruningMode::parse("off"), Some(PruningMode::Off));
        assert_eq!(
            PruningMode::parse("ZoneMap"),
            Some(PruningMode::ZoneMapOnly)
        );
        assert_eq!(PruningMode::parse("filter"), Some(PruningMode::FilterOnly));
        assert_eq!(PruningMode::parse("both"), Some(PruningMode::Both));
        assert_eq!(PruningMode::parse("bogus"), None);
        assert!(PruningMode::Both.uses_zonemaps() && PruningMode::Both.uses_filters());
        assert!(!PruningMode::Off.uses_zonemaps() && !PruningMode::Off.uses_filters());
        assert!(
            PruningMode::ZoneMapOnly.uses_zonemaps() && !PruningMode::ZoneMapOnly.uses_filters()
        );
        assert!(!PruningMode::FilterOnly.uses_zonemaps() && PruningMode::FilterOnly.uses_filters());
    }
}

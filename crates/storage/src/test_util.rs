//! Helpers shared by this crate's unit tests.

use std::path::PathBuf;

/// A unique, created-on-demand temp directory for durability tests.
pub(crate) fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("olxp-{tag}-{}-{nanos}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}
